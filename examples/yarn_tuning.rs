//! Application 1 end-to-end: YARN `max_num_running_containers` tuning via
//! Observational Tuning (§5.2) — observe, model, optimize, deploy,
//! evaluate with treatment effects, and check the Figure 11 benchmarks.
//!
//! ```text
//! cargo run --release --example yarn_tuning
//! ```

use kea_core::apps::yarn_config::{pooled_benchmark_test, run_yarn_tuning, YarnTuningParams};
use kea_core::{optimize_sweep, OperatingPoint};
use kea_sim::ClusterSpec;

fn main() {
    let cluster = ClusterSpec::small();
    let params = YarnTuningParams::quick(cluster.clone(), 2021);
    println!(
        "running the full observational-tuning pipeline on {} machines \
         ({}h observe + {}h evaluate)...",
        cluster.n_machines(),
        params.observe_hours,
        params.eval_hours
    );
    let outcome = run_yarn_tuning(&params).expect("pipeline runs");

    println!("\ncalibrated groups (Figure 9): {}", outcome.engine.len());
    println!("\nsuggested steps (Figure 10):");
    for s in &outcome.optimization.suggestions {
        println!(
            "  {:<8} {:+}  (m' = {:.1}, gradient {:+.2})",
            cluster.sku(s.group.sku).name,
            s.delta_step,
            s.current_containers,
            s.latency_gradient
        );
    }
    println!(
        "\npredicted: {:+.2}% capacity at unchanged latency",
        outcome.optimization.predicted_capacity_gain * 100.0
    );

    // Figure 10 sensitivity: re-linearize at progressively heavier
    // operating points and check the suggested directions still agree
    // with the median run. The sweep warm-starts each LP from the
    // previous percentile's optimal basis — one cold solve, then cheap
    // re-solves.
    let sweep = optimize_sweep(
        &outcome.engine,
        &outcome.machine_counts,
        1.0,
        &[
            OperatingPoint::Percentile(75.0),
            OperatingPoint::Percentile(90.0),
            OperatingPoint::Percentile(95.0),
        ],
    )
    .expect("sensitivity sweep solvable");
    for (label, run) in ["p75", "p90", "p95"].iter().zip(&sweep) {
        let agree = outcome
            .optimization
            .suggestions
            .iter()
            .zip(&run.suggestions)
            .filter(|(m, h)| m.delta_step.signum() == h.delta_step.signum())
            .count();
        println!(
            "{label} sensitivity: {}/{} groups keep their direction under heavy load",
            agree,
            run.suggestions.len()
        );
    }
    println!("\nmeasured after fleet-wide deployment (§5.2.2):");
    println!(
        "  Total Data Read   {:+.2}%  (t = {:.2}; paper: +9%, t = 4.45)",
        outcome.throughput_change_pct, outcome.throughput_t
    );
    println!(
        "  task latency      {:+.2}%  (paper: unchanged)",
        outcome.latency_change_pct
    );
    println!(
        "  capacity          {:+.2}%  (paper: +2%)",
        outcome.capacity_change_pct
    );
    println!(
        "  latency guardrail: {}",
        if outcome.deployment.approved { "PASSED" } else { "FAILED" }
    );

    println!("\nbenchmark jobs before → after (Figure 11):");
    for b in &outcome.benchmarks {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "  {:<16} {:6.0}s → {:6.0}s  ({:+.1}%, n = {}/{})",
            b.name,
            mean(&b.before_runtimes_s),
            mean(&b.after_runtimes_s),
            b.mean_change_pct,
            b.before_runtimes_s.len(),
            b.after_runtimes_s.len()
        );
    }
    if let Ok(test) = pooled_benchmark_test(&outcome.benchmarks) {
        println!("  pooled (after < before): t = {:.2}, p = {:.3}", test.t, test.p_value);
    }
}
