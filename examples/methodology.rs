//! The Figure-3 methodology, end to end: a tuning project walking through
//! Phase I (fact finding + conceptualization, validated on data), Phase
//! II (modeling + optimization), and Phase III (flighting → roll-out) —
//! with the phase gates the paper's process implies enforced in code.
//!
//! ```text
//! cargo run --release --example methodology
//! ```

use kea_core::conceptualization::{validate_critical_path, validate_uniformity};
use kea_core::methodology::{Approach, Phase, TuningProject};
use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::{optimize_max_containers, FlightingTool, OperatingPoint, PerformanceMonitor};
use kea_sim::{run, ClusterSpec, ConfigPatch, ConfigPlan, SimConfig, WorkloadSpec, SC1};
use kea_telemetry::Metric;
use std::collections::BTreeMap;

/// The cluster under study runs at realistic pressure: queues exist at
/// peaks (Figure 12), which is also what makes container-cap pilots
/// measurable at all.
fn world(cluster: &ClusterSpec, hours: u64, seed: u64) -> SimConfig {
    SimConfig {
        cluster: cluster.clone(),
        workload: WorkloadSpec::default_for(cluster, 1.02),
        plan: ConfigPlan::baseline(&cluster.skus, SC1),
        duration_hours: hours,
        seed,
        task_log_every: 10,
        adhoc_job_log_every: 8,
    }
}

fn main() {
    let cluster = ClusterSpec::small();
    let mut project = TuningProject::new(
        "yarn-max-containers",
        Approach::Observational,
        "maximize sellable capacity at unchanged task latency",
    );

    // ---- Phase I: fact finding & system conceptualization -------------
    project
        .add_constraint("cluster-average task latency must not regress")
        .expect("phase I");
    project
        .add_tunable("max_num_running_containers per SC-SKU group")
        .expect("phase I");
    println!("Phase I: validating the abstraction ladder on observed data...");
    let observed = run(&world(&cluster, 30, 3));
    let critical = validate_critical_path(&cluster, &observed).expect("tasks ran");
    let uniform = validate_uniformity(&cluster, &observed, 300, 0.10).expect("tasks ran");
    println!(
        "  critical-path skew: {} | placement uniformity: {} (max dev {:.3})",
        critical.skew_confirmed, uniform.uniform, uniform.max_sku_deviation
    );
    project
        .complete_conceptualization(critical.skew_confirmed && uniform.uniform)
        .expect("checks passed");
    assert_eq!(project.phase(), Phase::Modeling);

    // ---- Phase II: modeling & optimization -----------------------------
    println!("Phase II: calibrating models and solving the LP...");
    let monitor = PerformanceMonitor::new(&observed.telemetry);
    let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
        .expect("telemetry suffices");
    let counts: BTreeMap<_, _> = monitor
        .group_utilization()
        .into_iter()
        .map(|g| (g.group, g.machines))
        .collect();
    let plan = optimize_max_containers(&engine, &counts, 1.0, OperatingPoint::Median)
        .expect("solvable");
    let proposal = plan
        .suggestions
        .iter()
        .map(|s| format!("sku{}:{:+}", s.group.sku.0, s.delta_step))
        .collect::<Vec<_>>()
        .join(" ");
    println!("  proposal: {proposal}");
    project
        .record_proposal("Huber g/h/f per group", &proposal)
        .expect("phase II");
    assert_eq!(project.phase(), Phase::Deployment);

    // ---- Phase III: flighting, then roll-out ---------------------------
    println!("Phase III: flighting the proposal on a machine subset...");
    let pilot_machines = cluster
        .machines_of_sku(kea_telemetry::SkuId(5))
        .map(|m| m.id)
        .collect();
    let flight = FlightingTool::flight(
        "pilot: Gen 4.1 +4",
        pilot_machines,
        24,
        48,
        ConfigPatch {
            max_running_containers: Some(26),
            ..Default::default()
        },
    )
    .expect("valid flight");
    // The before-window and the flight window are diurnally aligned
    // (hours 0–24 vs 24–48) so the comparison is not confounded by the
    // daily load wave.
    let mut world_cfg = world(&cluster, 48, 3);
    world_cfg.plan.add_flight(flight.clone());
    let world = run(&world_cfg);
    let effect = FlightingTool::before_after(
        &world.telemetry,
        &flight,
        2,
        Metric::AverageRunningContainers,
    )
    .expect("measurable");
    let passed = effect.effect >= 0.0;
    println!(
        "  pilot effect on running containers: {:+.2}% (t = {:.2}) → {}",
        effect.percent_change(),
        effect.test.t,
        if passed { "passed" } else { "failed" }
    );
    project.record_flight("gen4.1 +4", passed).expect("phase III");
    match project.approve_rollout(1) {
        Ok(()) => println!("rolled out; project log:"),
        Err(e) => println!("roll-out blocked ({e}); project log:"),
    }
    for line in project.log() {
        println!("  · {line}");
    }
}
