//! Application 2: machine configuration design via Hypothetical Tuning
//! (§6.1) — how much SSD and RAM should the future 128-core generation
//! carry? No flighting, no deployment: the machines don't exist yet.
//!
//! ```text
//! cargo run --release --example sku_design
//! ```

use kea_core::apps::sku_design::{run_sku_design, CostModel, SkuDesignParams};
use kea_core::PerformanceMonitor;
use kea_sim::{run, ClusterSpec, SimConfig, SC1};
use kea_telemetry::{GroupKey, SkuId};

fn main() {
    // Observe a current-generation SKU running production workloads.
    let cluster = ClusterSpec::small();
    println!("observing current fleet for usage models...");
    let observed = run(&SimConfig::baseline(cluster.clone(), 72, 77));
    let monitor = PerformanceMonitor::new(&observed.telemetry);

    let params = SkuDesignParams {
        source_group: GroupKey::new(SkuId(4), SC1), // Gen 3.2
        future_cores: 128,
        candidate_ssd_gb: vec![768.0, 1024.0, 1280.0, 1536.0, 2048.0],
        candidate_ram_gb: vec![384.0, 448.0, 512.0, 576.0, 640.0],
        cost: CostModel::default(),
        draws: 1000,
        seed: 78,
    };
    let outcome = run_sku_design(&monitor, &params).expect("study runs");

    println!(
        "\nusage models from {} observations (Figure 13):",
        outcome.n_observations
    );
    println!(
        "  SSD = p(c) = {:6.1} + {:4.2}·cores   → {:5.0} GB at 128 cores",
        outcome.ssd_model.intercept(),
        outcome.ssd_model.slope(),
        outcome.ssd_model.predict(128.0)
    );
    println!(
        "  RAM = q(c) = {:6.1} + {:4.2}·cores   → {:5.0} GB at 128 cores",
        outcome.ram_model.intercept(),
        outcome.ram_model.slope(),
        outcome.ram_model.predict(128.0)
    );

    println!("\nexpected cost surface, normalized to the winner (Figure 14):");
    print!("{:>10}", "SSD\\RAM");
    for ram in &params.candidate_ram_gb {
        print!("{:>9.0}", ram);
    }
    println!();
    for ssd in &params.candidate_ssd_gb {
        print!("{ssd:>10.0}");
        for ram in &params.candidate_ram_gb {
            let cost = outcome
                .surface
                .iter()
                .find(|d| d.ssd_gb == *ssd && d.ram_gb == *ram)
                .map(|d| d.expected_cost / outcome.best.expected_cost)
                .expect("full grid");
            print!("{cost:>9.2}");
        }
        println!();
    }
    println!(
        "\nsweet spot: {:.0} GB SSD + {:.0} GB RAM \
         (under-provisioning strands the machine; over-provisioning wastes capex)",
        outcome.best.ssd_gb, outcome.best.ram_gb
    );
}
