//! Application 4: selecting software configurations via Experimental
//! Tuning (§7.1) — the ideal setting: every other machine in the same
//! racks runs SC2 (temp store on SSD), the rest stay on SC1 (HDD).
//!
//! ```text
//! cargo run --release --example sc_selection
//! ```

use kea_core::apps::sc_selection::{run_sc_selection, ScSelectionParams};
use kea_sim::ClusterSpec;
use kea_telemetry::SkuId;

fn main() {
    let params = ScSelectionParams {
        cluster: ClusterSpec::medium(),
        sku: SkuId(0),
        n_racks: 4,
        duration_hours: 60, // "five consecutive workdays" scaled down
        warmup_hours: 4,
        seed: 99,
    };
    println!(
        "ideal-setting A/B: alternating machines of {} Gen 1.1 racks, {}h window...",
        params.n_racks, params.duration_hours
    );
    let outcome = run_sc_selection(&params).expect("experiment runs");

    println!(
        "\n{} machines per group — Table 4:",
        outcome.machines_per_group
    );
    println!(
        "{:<28}{:>12}{:>12}{:>11}{:>9}",
        "metric", "SC1", "SC2", "change %", "t"
    );
    for row in &outcome.table4 {
        println!(
            "{:<28}{:>12.2}{:>12.2}{:>11.2}{:>9.2}",
            row.metric.name(),
            row.sc1_mean,
            row.sc2_mean,
            row.change_pct,
            row.t_value
        );
    }
    println!(
        "\nrecommendation: {} (paper: SC2 dominated with +10.9% data read, −5.2% task time)",
        outcome.recommendation
    );
}
