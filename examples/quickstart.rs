//! Quickstart: observe a cluster, calibrate the What-if Engine, ask
//! what-if questions, and get a tuning suggestion — the core KEA loop in
//! ~60 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::{optimize_max_containers, OperatingPoint, PerformanceMonitor};
use kea_sim::{run, ClusterSpec, SimConfig};
use std::collections::BTreeMap;

fn main() {
    // 1. Observe: run the simulated cluster under its manual-tuning
    //    baseline for two days. In production this step is "read the
    //    telemetry that already exists" — no experiments.
    let cluster = ClusterSpec::small();
    println!("observing {} machines for 48 hours...", cluster.n_machines());
    let mut observed = run(&SimConfig::baseline(cluster.clone(), 48, 42));
    println!(
        "  collected {} machine-hour records, {} completed tasks",
        observed.telemetry.len(),
        observed.counters.total
    );

    // 2. Model: the Performance Monitor prepares group-level views and
    //    the What-if Engine calibrates per-group Huber regressions.
    //    Sealing compacts any pending delta into the sealed columnar run
    //    (sorted rows, dense ids, metric columns) up front; queries
    //    would otherwise merge run + delta on the fly.
    observed.telemetry.seal();
    let monitor = PerformanceMonitor::new(&observed.telemetry);
    let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
        .expect("enough telemetry to calibrate");
    println!("\ncalibrated models for {} machine groups:", engine.len());
    for models in engine.groups() {
        let sku = cluster.sku(models.group.sku);
        println!(
            "  {:<8} util = {:5.2} + {:4.2}·containers  (R² {:.2}, {} rows)",
            sku.name,
            models.g_containers_to_util.intercept(),
            models.g_containers_to_util.slope(),
            models.r2.0,
            models.n_rows,
        );
    }

    // 3. Ask a what-if question: what happens to the newest generation
    //    at 25 running containers — without deploying anything?
    let newest = engine.groups().last().expect("groups calibrated").group;
    let (util, tasks, latency) = engine.predict(newest, 25.0).expect("calibrated group");
    println!(
        "\nwhat-if: Gen 4.1 at 25 containers → {util:.0}% CPU, {tasks:.0} tasks/h, {latency:.0}s task latency"
    );

    // 4. Optimize: the LP of Equations (7)-(10) — maximize containers
    //    subject to unchanged cluster-average latency, stepping at most
    //    ±1 per group (the paper's conservative roll-out).
    let counts: BTreeMap<_, _> = monitor
        .group_utilization()
        .into_iter()
        .map(|g| (g.group, g.machines))
        .collect();
    let plan = optimize_max_containers(&engine, &counts, 1.0, OperatingPoint::Median)
        .expect("solvable LP");
    println!("\nsuggested max-container steps (Figure 10):");
    for s in &plan.suggestions {
        println!(
            "  {:<8} {:+} (latency gradient {:+.2} s/container, {} machines)",
            cluster.sku(s.group.sku).name,
            s.delta_step,
            s.latency_gradient,
            s.n_machines
        );
    }
    println!(
        "predicted: {:+.2}% capacity at unchanged latency ({:.0}s)",
        plan.predicted_capacity_gain * 100.0,
        plan.baseline_latency
    );
}
