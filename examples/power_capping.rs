//! Application 3: power capping via Experimental Tuning (§7.2) — the
//! hybrid setting with four arms (capping × Feature), normalized metrics,
//! and a sweep over capping levels (Figure 15).
//!
//! ```text
//! cargo run --release --example power_capping
//! ```

use kea_core::apps::power_capping::{run_power_capping, Arm, PowerCappingParams};
use kea_sim::ClusterSpec;
use kea_telemetry::SkuId;

fn main() {
    let params = PowerCappingParams {
        cluster: ClusterSpec::medium(),
        sku: SkuId(0), // the hottest generation — where capping bites
        cap_levels: vec![0.10, 0.20, 0.30],
        group_size: 16,
        hours_per_round: 24,
        warmup_hours: 3,
        seed: 88,
    };
    println!(
        "hybrid-setting experiment: 4 arms × {} machines of Gen 1.1, one 24h round per capping level...",
        params.group_size
    );
    let outcome = run_power_capping(&params).expect("study runs");

    println!("\nperformance vs arm A (no cap, Feature off) — Figure 15:");
    println!(
        "{:<24}{:>12}{:>12}{:>10}{:>10}",
        "", "B/CPU-t %", "B/s %", "t", "power W"
    );
    for cell in &outcome.cells {
        let arm = match cell.arm {
            Arm::B => "Feature only",
            Arm::C => "cap only",
            Arm::D => "cap + Feature",
            Arm::A => "baseline",
        };
        println!(
            "cap {:>2.0}%  {:<14}{:>12.2}{:>12.2}{:>10.2}{:>10.0}",
            cell.cap_level * 100.0,
            arm,
            cell.bytes_per_cpu_change_pct,
            cell.bytes_per_sec_change_pct,
            cell.t_bytes_per_cpu,
            cell.mean_power_w
        );
    }
    println!(
        "\nreading: the Feature alone buys ~5%; a 10% cap is free (provision was \
         conservative); deep caps degrade, and the Feature softens them — \
         the paper harvested ~10 MW this way."
    );
}
