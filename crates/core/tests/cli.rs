//! End-to-end tests of the `kea` binary: the CLI is an API surface too.

use std::process::Command;

fn kea(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_kea"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_lists_all_commands() {
    let out = kea(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "observe", "models", "optimize", "yarn", "sku-design", "power", "sc", "queues", "value",
    ] {
        assert!(text.contains(cmd), "help missing '{cmd}'");
    }
}

#[test]
fn observe_models_optimize_round_trip() {
    let dir = std::env::temp_dir().join(format!("kea-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv = dir.join("telemetry.csv");
    let csv_str = csv.to_str().expect("utf-8 path");

    let out = kea(&[
        "observe", "--cluster", "tiny", "--hours", "26", "--seed", "5", "--out", csv_str,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(csv.exists());

    let out = kea(&["models", "--telemetry", csv_str]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sku0"), "models table present: {text}");

    let out = kea(&["optimize", "--telemetry", csv_str, "--max-step", "1"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("predicted capacity gain"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn value_reproduces_the_headline_arithmetic() {
    let out = kea(&["value", "--machines", "300000", "--gain-pct", "2"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // "tens of millions of dollars per year" — extract the final $M figure.
    let value: f64 = text
        .rsplit_once('$')
        .and_then(|(_, rest)| rest.split('M').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no $M figure in: {text}"));
    assert!((10.0..100.0).contains(&value), "got ${value}M");
}

#[test]
fn unknown_commands_and_flags_fail_loudly() {
    let out = kea(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = kea(&["observe", "--no-such-flag", "1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));

    let out = kea(&["models", "--telemetry", "/nonexistent/file.csv"]);
    assert!(!out.status.success());
}
