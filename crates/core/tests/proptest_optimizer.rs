//! Property tests for the YARN optimizer: for *any* plausible set of
//! group dynamics, the returned plan must respect the latency budget
//! (checked through the full nonlinear models), the step bounds, and
//! never lose capacity.

use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::{optimize_max_containers, OperatingPoint, PerformanceMonitor};
use kea_telemetry::{
    GroupKey, MachineHourRecord, MachineId, MetricValues, ScId, SkuId, TelemetryStore,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Synthetic telemetry for `k` groups with randomized (but physical)
/// dynamics: util slope per container, latency slope per util, tasks
/// slope per util, machine counts.
#[allow(clippy::type_complexity)]
fn build_store(
    params: &[(f64, f64, f64, usize)],
) -> (TelemetryStore, BTreeMap<GroupKey, usize>) {
    let mut store = TelemetryStore::new();
    let mut counts = BTreeMap::new();
    let mut machine_id = 0u32;
    for (sku, &(g_slope, f_slope, h_slope, n_machines)) in params.iter().enumerate() {
        let group = GroupKey::new(SkuId(sku as u16), ScId(1));
        counts.insert(group, n_machines);
        for m in 0..6u32 {
            for h in 0..60u64 {
                // Operating-point spread across machines and hours.
                let containers = 5.0 + (m % 4) as f64 + (h % 8) as f64 * 0.5;
                let util = (2.0 + g_slope * containers).min(100.0);
                store.push(MachineHourRecord {
                    machine: MachineId(machine_id + m),
                    group,
                    hour: h,
                    metrics: MetricValues {
                        avg_running_containers: containers,
                        cpu_utilization: util,
                        tasks_finished: (5.0 + h_slope * util).max(0.5),
                        avg_task_latency_s: 80.0 + f_slope * util,
                        ..Default::default()
                    },
                });
            }
        }
        machine_id += 6;
    }
    (store, counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimizer_plans_are_always_feasible(
        g1 in 2.0..8.0f64, f1 in 0.5..6.0f64, h1 in 0.5..3.0f64, n1 in 5usize..200,
        g2 in 2.0..8.0f64, f2 in 0.5..6.0f64, h2 in 0.5..3.0f64, n2 in 5usize..200,
        g3 in 2.0..8.0f64, f3 in 0.5..6.0f64, h3 in 0.5..3.0f64, n3 in 5usize..200,
        max_step in 1.0..3.0f64,
        high_load in prop::bool::ANY,
    ) {
        let (store, counts) = build_store(&[
            (g1, f1, h1, n1),
            (g2, f2, h2, n2),
            (g3, f3, h3, n3),
        ]);
        let monitor = PerformanceMonitor::new(&store);
        let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
            .expect("synthetic data always fits");
        let at = if high_load {
            OperatingPoint::Percentile(90.0)
        } else {
            OperatingPoint::Median
        };
        let plan = optimize_max_containers(&engine, &counts, max_step, at)
            .expect("three healthy groups are always solvable");

        // Latency budget holds through the full nonlinear composition.
        prop_assert!(
            plan.predicted_latency <= plan.baseline_latency * (1.0 + 1e-9),
            "latency leak: {} > {}",
            plan.predicted_latency,
            plan.baseline_latency
        );
        // Steps bounded by the conservative roll-out limit.
        let bound = max_step.floor() as i32 + 1;
        for s in &plan.suggestions {
            prop_assert!(s.delta_step.abs() <= bound, "step {} vs δ {}", s.delta_step, max_step);
        }
        // d = 0 is feasible, so the LP (and its rounding) must never
        // report a capacity loss.
        prop_assert!(plan.predicted_capacity_gain >= -1e-9);
        // One suggestion per calibrated group.
        prop_assert_eq!(plan.suggestions.len(), 3);
    }

    /// The O(G) incrementally-cached gradient must equal the O(G²)
    /// full-recompute gradient — they evaluate the same central
    /// difference of the same nonlinear W̄, so any drift means the cache
    /// is updating the wrong term.
    #[test]
    fn incremental_gradients_match_full_recompute(
        g1 in 2.0..8.0f64, f1 in 0.5..6.0f64, h1 in 0.5..3.0f64, n1 in 5usize..200,
        g2 in 2.0..8.0f64, f2 in 0.5..6.0f64, h2 in 0.5..3.0f64, n2 in 5usize..200,
        g3 in 2.0..8.0f64, f3 in 0.5..6.0f64, h3 in 0.5..3.0f64, n3 in 5usize..200,
        max_step in 1.0..3.0f64,
        high_load in prop::bool::ANY,
    ) {
        let (store, counts) = build_store(&[
            (g1, f1, h1, n1),
            (g2, f2, h2, n2),
            (g3, f3, h3, n3),
        ]);
        let monitor = PerformanceMonitor::new(&store);
        let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
            .expect("synthetic data always fits");
        let at = if high_load {
            OperatingPoint::Percentile(95.0)
        } else {
            OperatingPoint::Median
        };

        let fast = optimize_max_containers(&engine, &counts, max_step, at)
            .expect("incremental path solvable");
        let reference_gradients =
            kea_core::optimizer::reference::latency_gradients(&engine, &counts, at)
                .expect("reference gradients computable");

        prop_assert_eq!(fast.suggestions.len(), reference_gradients.len());
        for (s, &g_ref) in fast.suggestions.iter().zip(&reference_gradients) {
            prop_assert!(
                (s.latency_gradient - g_ref).abs() < 1e-9,
                "gradient drift for {:?}: incremental {} vs reference {}",
                s.group,
                s.latency_gradient,
                g_ref
            );
        }

        // And the whole plan agrees with the reference optimizer, not
        // just the gradients.
        let slow = kea_core::optimizer::reference::optimize_max_containers(
            &engine, &counts, max_step, at,
        )
        .expect("reference path solvable");
        prop_assert_eq!(fast.steps(), slow.steps());
        prop_assert!((fast.baseline_latency - slow.baseline_latency).abs() < 1e-9);
        prop_assert!((fast.predicted_latency - slow.predicted_latency).abs() < 1e-9);
    }
}
