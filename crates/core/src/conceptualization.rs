//! Phase I: system conceptualization checks (§3.2, Figures 4–6).
//!
//! The abstraction ladder Level I → Level V is only sound if three
//! empirical facts hold; the data scientists "validate" each before any
//! model is built. This module runs those validations on simulator ground
//! truth:
//!
//! * **Critical-path skew** (Level III, Figure 5): tasks landing on
//!   slower machines are disproportionately likely to be on a job's
//!   critical path.
//! * **Placement uniformity** (Levels IV–V, Figure 6): the task-type mix
//!   each rack/SKU receives matches the cluster-wide mix.

use crate::error::KeaError;
use kea_sim::{ClusterSpec, SimOutput, TaskType};
use kea_telemetry::SkuId;

/// Per-SKU critical-path statistics (the Figure 5 panel).
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathStat {
    /// The SKU.
    pub sku: SkuId,
    /// SKU display name.
    pub sku_name: String,
    /// Completed tasks observed.
    pub tasks: u64,
    /// Probability a task on this SKU was its stage's slowest.
    pub critical_probability: f64,
    /// Mean sampled task duration on this SKU, seconds.
    pub mean_duration_s: f64,
}

/// Outcome of the Level-III validation.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathReport {
    /// Per-SKU statistics, oldest generation first.
    pub by_sku: Vec<CriticalPathStat>,
    /// Spearman-style direction check: true when critical-path
    /// probability decreases as machines get faster.
    pub skew_confirmed: bool,
}

/// Validates the critical-path abstraction on a simulation output.
///
/// # Errors
/// Every SKU in the cluster must have completed tasks (run the
/// observation window longer otherwise).
pub fn validate_critical_path(
    cluster: &ClusterSpec,
    out: &SimOutput,
) -> Result<CriticalPathReport, KeaError> {
    let mut by_sku = Vec::with_capacity(cluster.skus.len());
    for sku in &cluster.skus {
        let tasks = out.counters.by_sku.get(&sku.id).copied().unwrap_or(0);
        let p = out
            .counters
            .critical_path_probability(sku.id)
            .ok_or_else(|| KeaError::NoObservations {
                what: format!("no completed tasks on {}", sku.name),
            })?;
        let durations: Vec<f64> = out
            .tasks
            .iter()
            .filter(|t| t.sku == sku.id)
            .map(|t| t.duration_s)
            .collect();
        let mean_duration_s = if durations.is_empty() {
            f64::NAN
        } else {
            durations.iter().sum::<f64>() / durations.len() as f64
        };
        by_sku.push(CriticalPathStat {
            sku: sku.id,
            sku_name: sku.name.clone(),
            tasks,
            critical_probability: p,
            mean_duration_s,
        });
    }
    // The catalog orders SKUs oldest→newest (slow→fast); confirm the
    // critical-path probability is non-increasing along that order,
    // allowing small inversions between adjacent near-identical SKUs.
    let probs: Vec<f64> = by_sku.iter().map(|s| s.critical_probability).collect();
    let skew_confirmed = probs.first() > probs.last()
        && probs.windows(2).filter(|w| w[0] < w[1]).count() <= 1; // kea-lint: allow(index-in-library) — windows(2) yields exactly 2 elements
    Ok(CriticalPathReport {
        by_sku,
        skew_confirmed,
    })
}

/// Outcome of the placement-uniformity validation (Figure 6).
#[derive(Debug, Clone, PartialEq)]
pub struct UniformityReport {
    /// Cluster-wide task-type shares, in [`TaskType::ALL`] order.
    pub global_shares: [f64; 4],
    /// Maximum absolute deviation of any rack's share from the global.
    pub max_rack_deviation: f64,
    /// Maximum absolute deviation of any SKU's share from the global.
    pub max_sku_deviation: f64,
    /// Racks with enough tasks to be compared.
    pub racks_checked: usize,
    /// SKUs compared.
    pub skus_checked: usize,
    /// True when both deviations are below the tolerance.
    pub uniform: bool,
}

/// Validates that tasks spread uniformly (in type mix) across racks and
/// SKUs. Racks with fewer than `min_tasks` completed tasks are skipped —
/// small-sample shares are meaningless.
///
/// # Errors
/// The output must contain completed tasks.
pub fn validate_uniformity(
    cluster: &ClusterSpec,
    out: &SimOutput,
    min_tasks: u64,
    tolerance: f64,
) -> Result<UniformityReport, KeaError> {
    if out.counters.total == 0 {
        return Err(KeaError::NoObservations {
            what: "no completed tasks".to_string(),
        });
    }
    // Global mix.
    let mut global = [0u64; 4];
    for ((_, t), n) in &out.counters.by_sku_type {
        let Some(idx) = TaskType::ALL.iter().position(|x| x == t) else {
            continue; // ALL holds every TaskType variant
        };
        global[idx] += n; // kea-lint: allow(index-in-library) — idx is a position into ALL; global has ALL.len() slots
    }
    let total: u64 = global.iter().sum();
    let mut global_shares = [0.0; 4];
    for (s, g) in global_shares.iter_mut().zip(&global) {
        *s = *g as f64 / total as f64;
    }

    let mut max_rack_deviation = 0.0_f64;
    let mut racks_checked = 0;
    for rack in 0..cluster.n_racks() {
        let rack_id = kea_sim::RackId(rack);
        let rack_total: u64 = TaskType::ALL
            .iter()
            .filter_map(|t| out.counters.by_rack_type.get(&(rack_id, *t)))
            .sum();
        if rack_total < min_tasks {
            continue;
        }
        if let Some(shares) = out.counters.type_shares_by_rack(rack_id) {
            racks_checked += 1;
            for (s, g) in shares.iter().zip(&global_shares) {
                max_rack_deviation = max_rack_deviation.max((s - g).abs());
            }
        }
    }

    let mut max_sku_deviation = 0.0_f64;
    let mut skus_checked = 0;
    for sku in &cluster.skus {
        if let Some(shares) = out.counters.type_shares_by_sku(sku.id) {
            skus_checked += 1;
            for (s, g) in shares.iter().zip(&global_shares) {
                max_sku_deviation = max_sku_deviation.max((s - g).abs());
            }
        }
    }

    Ok(UniformityReport {
        global_shares,
        max_rack_deviation,
        max_sku_deviation,
        racks_checked,
        skus_checked,
        uniform: max_rack_deviation < tolerance && max_sku_deviation < tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kea_sim::{run, SimConfig};

    fn sim() -> (ClusterSpec, SimOutput) {
        let cluster = ClusterSpec::tiny();
        let out = run(&SimConfig::baseline(cluster.clone(), 24, 31));
        (cluster, out)
    }

    #[test]
    fn critical_path_skew_holds_in_simulation() {
        let (cluster, out) = sim();
        let report = validate_critical_path(&cluster, &out).unwrap();
        assert_eq!(report.by_sku.len(), 6);
        assert!(report.skew_confirmed, "report: {report:#?}");
        // Oldest SKU carries the highest critical-path probability.
        let first = report.by_sku.first().unwrap();
        let last = report.by_sku.last().unwrap();
        assert!(first.critical_probability > last.critical_probability);
        assert!(first.mean_duration_s > last.mean_duration_s);
    }

    #[test]
    fn uniformity_holds_in_simulation() {
        let (cluster, out) = sim();
        let report = validate_uniformity(&cluster, &out, 200, 0.10).unwrap();
        assert!(report.uniform, "report: {report:#?}");
        assert!(report.racks_checked > 0);
        assert_eq!(report.skus_checked, 6);
        assert!((report.global_shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_output_errors() {
        let cluster = ClusterSpec::tiny();
        let empty = SimOutput::default();
        assert!(validate_critical_path(&cluster, &empty).is_err());
        assert!(validate_uniformity(&cluster, &empty, 10, 0.1).is_err());
    }
}
