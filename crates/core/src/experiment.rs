//! The Experiment Module: designs and statistical analysis (§7).
//!
//! Three experiment settings from the paper:
//!
//! * **Ideal** — control and treatment interleaved *within racks*
//!   ("choosing every other machine in the same rack"), guaranteeing both
//!   groups see near-identical workloads. Used for SC selection (§7.1).
//! * **Time-slicing** — one machine set, alternating configuration
//!   windows (with its acknowledged pitfalls: redeployment cost and
//!   workload drift between intervals).
//! * **Hybrid** — distinct machine groups compared over the same period
//!   on normalized metrics. Used for power capping (§7.2), where capping
//!   applies per chassis and the ideal setting is impossible.
//!
//! Analysis reduces machine-hour telemetry to per-group samples and runs
//! the treatment-effect machinery of `kea-stats`.

use crate::error::KeaError;
use kea_sim::{ClusterSpec, RackId};
use kea_stats::{treatment_effect, TreatmentEffect};
use kea_telemetry::{MachineId, Metric, SkuId, TelemetryStore};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// A control/treatment machine split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSplit {
    /// Machines keeping the old configuration.
    pub control: BTreeSet<MachineId>,
    /// Machines receiving the new configuration.
    pub treatment: BTreeSet<MachineId>,
}

/// The ideal setting: within each given rack, alternate machines between
/// control (even positions) and treatment (odd positions).
///
/// # Errors
/// Every rack must contain at least two machines.
pub fn ideal_setting(cluster: &ClusterSpec, racks: &[RackId]) -> Result<MachineSplit, KeaError> {
    let mut control = BTreeSet::new();
    let mut treatment = BTreeSet::new();
    for &rack in racks {
        let members: Vec<MachineId> = cluster.machines_of_rack(rack).map(|m| m.id).collect();
        if members.len() < 2 {
            return Err(KeaError::Design(format!(
                "rack {rack:?} has {} machines; ideal setting needs ≥ 2",
                members.len()
            )));
        }
        for (i, id) in members.into_iter().enumerate() {
            if i % 2 == 0 {
                control.insert(id);
            } else {
                treatment.insert(id);
            }
        }
    }
    if control.is_empty() {
        return Err(KeaError::Design("no racks given".to_string()));
    }
    Ok(MachineSplit { control, treatment })
}

/// The hybrid setting: `n_groups` disjoint random machine groups of
/// `group_size`, all drawn from one SKU so hardware is controlled.
///
/// # Errors
/// The SKU must have at least `n_groups × group_size` machines.
pub fn hybrid_groups<R: Rng + ?Sized>(
    cluster: &ClusterSpec,
    sku: SkuId,
    n_groups: usize,
    group_size: usize,
    rng: &mut R,
) -> Result<Vec<BTreeSet<MachineId>>, KeaError> {
    let mut pool: Vec<MachineId> = cluster.machines_of_sku(sku).map(|m| m.id).collect();
    let needed = n_groups * group_size;
    if pool.len() < needed {
        return Err(KeaError::Design(format!(
            "SKU {sku:?} has {} machines, need {needed}",
            pool.len()
        )));
    }
    pool.shuffle(rng);
    Ok(pool
        .chunks(group_size)
        .take(n_groups)
        .map(|chunk| chunk.iter().copied().collect())
        .collect())
}

/// One window of a time-slicing schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeSlice {
    /// First hour (inclusive).
    pub start_hour: u64,
    /// End hour (exclusive).
    pub end_hour: u64,
    /// Whether the new configuration is live in this slice.
    pub treatment: bool,
}

/// Builds an alternating time-slicing schedule over `[0, duration)`.
/// The paper warns against 24-hour slices (day-of-week confounds); the
/// default interval it mentions is five hours.
///
/// # Errors
/// `interval_hours` must be positive and shorter than the duration.
pub fn time_slices(duration_hours: u64, interval_hours: u64) -> Result<Vec<TimeSlice>, KeaError> {
    if interval_hours == 0 || interval_hours >= duration_hours {
        return Err(KeaError::Design(
            "interval must be positive and shorter than the experiment".to_string(),
        ));
    }
    let mut slices = Vec::new();
    let mut start = 0;
    let mut treatment = false;
    while start < duration_hours {
        let end = (start + interval_hours).min(duration_hours);
        slices.push(TimeSlice {
            start_hour: start,
            end_hour: end,
            treatment,
        });
        start = end;
        treatment = !treatment;
    }
    Ok(slices)
}

/// Analyzes a time-slicing experiment: the same machines alternate
/// between configurations on a fixed schedule; treatment-slice
/// machine-hours are compared against control-slice machine-hours.
/// Slices that start before `skip_hours` are discarded (warm-up).
///
/// This is the §7 "time-slicing setting" — popular but fragile: the
/// comparison inherits whatever workload drift falls between slices,
/// which is why the paper prefers the ideal setting when racks allow it
/// (quantified by the `designs` ablation).
///
/// # Errors
/// Both slice classes must contribute observations with variance.
pub fn analyze_time_slices(
    store: &TelemetryStore,
    machines: &BTreeSet<MachineId>,
    slices: &[TimeSlice],
    skip_hours: u64,
    metric: Metric,
) -> Result<ExperimentResult, KeaError> {
    let mut control = Vec::new();
    let mut treatment = Vec::new();
    for slice in slices {
        if slice.start_hour < skip_hours {
            continue;
        }
        let samples =
            machine_hour_samples(store, machines, slice.start_hour, slice.end_hour, metric);
        if slice.treatment {
            treatment.extend(samples);
        } else {
            control.extend(samples);
        }
    }
    if control.is_empty() || treatment.is_empty() {
        return Err(KeaError::NoObservations {
            what: format!("time-slicing windows for {metric}"),
        });
    }
    let effect = treatment_effect(&control, &treatment)?;
    Ok(ExperimentResult {
        metric,
        n_control: control.len(),
        n_treatment: treatment.len(),
        effect,
    })
}

/// Sizes an experiment from observed telemetry: the machine-hours per
/// group needed to detect a `relative_effect` (e.g. 0.05 = 5%) change in
/// `metric`, using the metric's fleet-wide mean and standard deviation
/// over `[start_hour, end_hour)` as the noise model.
///
/// This is how the Experiment Module answers "how many machines × how
/// many hours do we need?" before committing production capacity to an
/// experiment (§7's sample-size concern).
///
/// # Errors
/// The window must contain observations with variance, and the effect,
/// `alpha`, and `power` must be in their domains.
pub fn required_machine_hours(
    store: &TelemetryStore,
    metric: Metric,
    start_hour: u64,
    end_hour: u64,
    relative_effect: f64,
    alpha: f64,
    power: f64,
) -> Result<usize, KeaError> {
    let samples: Vec<f64> = store
        .by_hours(start_hour, end_hour)
        .map(|r| metric.value(&r.metrics))
        .collect();
    if samples.len() < 2 {
        return Err(KeaError::NoObservations {
            what: format!("sizing window for {metric}"),
        });
    }
    let mean = kea_stats::mean(&samples)?;
    let sd = kea_stats::stddev(&samples)?;
    if mean == 0.0 {
        return Err(KeaError::Design(
            "metric mean is zero; relative effect undefined".to_string(),
        ));
    }
    Ok(kea_stats::required_n_two_sample(
        (mean * relative_effect).abs(),
        sd,
        alpha,
        power,
    )?)
}

/// Extracts per-machine-hour samples of `metric` for a machine set in a
/// window — the unit of analysis for all experiment comparisons.
///
/// Served by the store's hour index: the window is a binary-searched
/// contiguous run of hour-ordered rows, with membership tested against a
/// dense-id bitmap, so cost scales with the window rather than the store.
pub fn machine_hour_samples(
    store: &TelemetryStore,
    machines: &BTreeSet<MachineId>,
    start_hour: u64,
    end_hour: u64,
    metric: Metric,
) -> Vec<f64> {
    store
        .by_machines_and_hours(machines, start_hour, end_hour)
        .map(|r| metric.value(&r.metrics))
        .collect()
}

/// Result of comparing treatment vs control on one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// The compared metric.
    pub metric: Metric,
    /// Control sample size (machine-hours).
    pub n_control: usize,
    /// Treatment sample size (machine-hours).
    pub n_treatment: usize,
    /// Treatment effect with Welch t-test.
    pub effect: TreatmentEffect,
}

/// Compares a split on one metric over a window.
///
/// # Errors
/// Both groups need machine-hour observations in the window, and the
/// metric must have variance.
pub fn analyze(
    store: &TelemetryStore,
    split: &MachineSplit,
    start_hour: u64,
    end_hour: u64,
    metric: Metric,
) -> Result<ExperimentResult, KeaError> {
    let control = machine_hour_samples(store, &split.control, start_hour, end_hour, metric);
    let treatment = machine_hour_samples(store, &split.treatment, start_hour, end_hour, metric);
    if control.is_empty() || treatment.is_empty() {
        return Err(KeaError::NoObservations {
            what: format!("experiment window [{start_hour}, {end_hour}) for {metric}"),
        });
    }
    let effect = treatment_effect(&control, &treatment)?;
    Ok(ExperimentResult {
        metric,
        n_control: control.len(),
        n_treatment: treatment.len(),
        effect,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kea_telemetry::{GroupKey, MachineHourRecord, MetricValues, ScId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_setting_alternates_within_racks() {
        let cluster = ClusterSpec::small();
        let split = ideal_setting(&cluster, &[RackId(0), RackId(1)]).unwrap();
        // Balanced within one machine.
        let diff = split.control.len() as i64 - split.treatment.len() as i64;
        assert!(diff.abs() <= 2);
        // Disjoint.
        assert!(split.control.is_disjoint(&split.treatment));
        // Adjacent ids land in different groups.
        let c0 = split.control.iter().next().unwrap();
        assert!(split.treatment.contains(&MachineId(c0.0 + 1)));
    }

    #[test]
    fn ideal_setting_rejects_empty() {
        let cluster = ClusterSpec::small();
        assert!(matches!(
            ideal_setting(&cluster, &[]),
            Err(KeaError::Design(_))
        ));
    }

    #[test]
    fn hybrid_groups_are_disjoint_same_sku() {
        let cluster = ClusterSpec::default_cluster();
        let mut rng = StdRng::seed_from_u64(1);
        let groups = hybrid_groups(&cluster, SkuId(3), 4, 30, &mut rng).unwrap();
        assert_eq!(groups.len(), 4);
        let mut all = BTreeSet::new();
        for g in &groups {
            assert_eq!(g.len(), 30);
            for id in g {
                assert!(all.insert(*id), "machine in two groups");
                assert_eq!(cluster.machine(*id).sku, SkuId(3));
            }
        }
    }

    #[test]
    fn hybrid_groups_insufficient_machines() {
        let cluster = ClusterSpec::tiny();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            hybrid_groups(&cluster, SkuId(0), 4, 120, &mut rng),
            Err(KeaError::Design(_))
        ));
    }

    #[test]
    fn time_slices_alternate_and_cover() {
        let slices = time_slices(24, 5).unwrap();
        assert_eq!(slices[0].start_hour, 0);
        assert_eq!(slices.last().unwrap().end_hour, 24);
        for pair in slices.windows(2) {
            assert_eq!(pair[0].end_hour, pair[1].start_hour);
            assert_ne!(pair[0].treatment, pair[1].treatment);
        }
        assert!(!slices[0].treatment, "start with control");
        assert!(time_slices(10, 0).is_err());
        assert!(time_slices(10, 10).is_err());
    }

    fn synthetic_split_store(effect: f64) -> (TelemetryStore, MachineSplit) {
        let mut store = TelemetryStore::new();
        let mut control = BTreeSet::new();
        let mut treatment = BTreeSet::new();
        for m in 0..40u32 {
            let treated = m % 2 == 1;
            if treated {
                treatment.insert(MachineId(m));
            } else {
                control.insert(MachineId(m));
            }
            for h in 0..48u64 {
                let base = 100.0 + (h % 5) as f64 + (m % 7) as f64;
                store.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: GroupKey::new(SkuId(0), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        total_data_read_gb: if treated { base + effect } else { base },
                        ..Default::default()
                    },
                });
            }
        }
        (store, MachineSplit { control, treatment })
    }

    #[test]
    fn analyze_detects_planted_effect() {
        let (store, split) = synthetic_split_store(11.0);
        let res = analyze(&store, &split, 0, 48, Metric::TotalDataRead).unwrap();
        assert_eq!(res.n_control, 20 * 48);
        assert_eq!(res.n_treatment, 20 * 48);
        assert!((res.effect.percent_change() - 10.6).abs() < 1.0);
        assert!(res.effect.significant_at(0.001));
        assert!(res.effect.test.t > 10.0);
    }

    #[test]
    fn analyze_null_effect_not_significant() {
        let (store, split) = synthetic_split_store(0.0);
        let res = analyze(&store, &split, 0, 48, Metric::TotalDataRead).unwrap();
        assert!(!res.effect.significant_at(0.05));
    }

    #[test]
    fn experiment_sizing_matches_observed_noise() {
        let (store, _) = synthetic_split_store(0.0);
        // Total Data Read here has mean ≈ 105, sd ≈ 2.6 → a 5% effect
        // (≈5.25) is big relative to noise: tiny n required.
        let n_easy =
            required_machine_hours(&store, Metric::TotalDataRead, 0, 48, 0.05, 0.05, 0.8)
                .unwrap();
        // A 0.5% effect needs ~100× the samples (n ∝ 1/δ²).
        let n_hard =
            required_machine_hours(&store, Metric::TotalDataRead, 0, 48, 0.005, 0.05, 0.8)
                .unwrap();
        assert!(n_easy >= 2);
        let ratio = n_hard as f64 / n_easy as f64;
        assert!(
            (50.0..200.0).contains(&ratio),
            "inverse-square law: {n_easy} vs {n_hard}"
        );
        // Empty windows error.
        assert!(matches!(
            required_machine_hours(&store, Metric::TotalDataRead, 900, 901, 0.05, 0.05, 0.8),
            Err(KeaError::NoObservations { .. })
        ));
    }

    #[test]
    fn time_slicing_analysis_detects_planted_effect() {
        // The same machines carry +8 GB/h during treatment slices.
        let mut store = TelemetryStore::new();
        let machines: BTreeSet<MachineId> = (0..10).map(MachineId).collect();
        let slices = time_slices(40, 5).unwrap();
        for m in 0..10u32 {
            for h in 0..40u64 {
                let slice = slices
                    .iter()
                    .find(|s| h >= s.start_hour && h < s.end_hour)
                    .expect("hour covered");
                let base = 100.0 + (h % 5) as f64 + (m % 3) as f64;
                store.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: GroupKey::new(SkuId(0), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        total_data_read_gb: base + if slice.treatment { 8.0 } else { 0.0 },
                        ..Default::default()
                    },
                });
            }
        }
        let res =
            analyze_time_slices(&store, &machines, &slices, 5, Metric::TotalDataRead).unwrap();
        assert!((res.effect.percent_change() - 7.8).abs() < 0.8, "{res:?}");
        assert!(res.effect.significant_at(0.001));
        // All-control schedules error.
        let controls_only: Vec<TimeSlice> = slices
            .iter()
            .filter(|s| !s.treatment)
            .copied()
            .collect();
        assert!(matches!(
            analyze_time_slices(&store, &machines, &controls_only, 0, Metric::TotalDataRead),
            Err(KeaError::NoObservations { .. })
        ));
    }

    #[test]
    fn analyze_empty_window_errors() {
        let (store, split) = synthetic_split_store(1.0);
        assert!(matches!(
            analyze(&store, &split, 100, 200, Metric::TotalDataRead),
            Err(KeaError::NoObservations { .. })
        ));
    }
}
