//! `kea` — the command-line front door to the KEA reproduction.
//!
//! ```text
//! kea observe  --hours 48 --out telemetry.csv     # simulate + export telemetry
//! kea models   --telemetry telemetry.csv          # calibrate the What-if Engine
//! kea optimize --telemetry telemetry.csv          # solve the YARN LP on it
//! kea yarn                                        # full observational pipeline
//! kea sku-design                                  # hypothetical tuning (§6.1)
//! kea power                                       # power-capping study (§7.2)
//! kea sc                                          # SC1-vs-SC2 experiment (§7.1)
//! kea queues                                      # queue-length tuning (§5.3)
//! kea value --machines 300000 --gain-pct 2        # capacity gain → $/year
//! ```
//!
//! Run `kea <command> --help` (or no args) for per-command flags. Every
//! command is deterministic given `--seed`.

use kea_core::apps::power_capping::{run_power_capping, Arm, PowerCappingParams};
use kea_core::apps::queue_tuning::{run_queue_tuning, QueueTuningParams};
use kea_core::apps::sc_selection::{run_sc_selection, ScSelectionParams};
use kea_core::apps::sku_design::{run_sku_design, CostModel, SkuDesignParams};
use kea_core::apps::yarn_config::{run_yarn_tuning, YarnTuningParams};
use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::{
    capacity_gain_value, optimize_max_containers, FleetCostModel, OperatingPoint,
    PerformanceMonitor,
};
use kea_sim::{run, ClusterSpec, SimConfig, WorkloadSpec, SC1};
use kea_telemetry::{read_csv, write_csv, GroupKey, SkuId, TelemetryStore};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::process::ExitCode;

/// Minimal `--flag value` parser: flags may appear in any order; unknown
/// flags are an error (typos must not be silently ignored).
struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    fn parse(raw: &[String], allowed: &[&str]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}' (flags start with --)"));
            };
            if !allowed.contains(&name) {
                return Err(format!(
                    "unknown flag --{name}; allowed: {}",
                    allowed
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("--{name} '{v}': {e}")),
        }
    }

    fn get_str(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn require(&self, name: &str) -> Result<&String, String> {
        self.flags
            .get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }
}

fn cluster_by_name(name: &str) -> Result<ClusterSpec, String> {
    match name {
        "tiny" => Ok(ClusterSpec::tiny()),
        "small" => Ok(ClusterSpec::small()),
        "medium" => Ok(ClusterSpec::medium()),
        "full" => Ok(ClusterSpec::default_cluster()),
        other => Err(format!(
            "unknown cluster '{other}' (tiny | small | medium | full)"
        )),
    }
}

/// Loads telemetry from either a CSV file or a durable store directory
/// (WAL + segments); a directory path selects crash recovery via
/// `TelemetryStore::open`, anything else is parsed as CSV. Segment
/// bodies decode lazily, so a one-shot CLI run verifies them up front:
/// a corrupt segment must fail here with the typed error, not surface
/// as silently missing rows mid-analysis.
fn load_telemetry(path: &str) -> Result<TelemetryStore, String> {
    if std::path::Path::new(path).is_dir() {
        let store =
            TelemetryStore::open(path).map_err(|e| format!("recover {path}: {e}"))?;
        store.verify().map_err(|e| format!("recover {path}: {e}"))?;
        return Ok(store);
    }
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_csv(BufReader::new(file)).map_err(|e| format!("read {path}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match argv.split_first() {
        Some((c, r)) => (c.as_str(), r.to_vec()),
        None => ("help", Vec::new()),
    };
    let result = match cmd {
        "observe" => cmd_observe(&rest),
        "models" => cmd_models(&rest),
        "optimize" => cmd_optimize(&rest),
        "yarn" => cmd_yarn(&rest),
        "sku-design" => cmd_sku_design(&rest),
        "power" => cmd_power(&rest),
        "sc" => cmd_sc(&rest),
        "queues" => cmd_queues(&rest),
        "value" => cmd_value(&rest),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'; run `kea help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn print_help() {
    println!(
        "kea — data-driven cluster tuning (SIGMOD'21 reproduction)\n\
         \n\
         commands:\n\
         \x20 observe     simulate a cluster and export telemetry CSV\n\
         \x20 models      calibrate the What-if Engine from telemetry CSV\n\
         \x20 optimize    solve the YARN container-rebalancing LP\n\
         \x20 yarn        full observational-tuning pipeline (§5.2)\n\
         \x20 sku-design  SSD/RAM sizing for a future SKU (§6.1)\n\
         \x20 power       power-capping study (§7.2)\n\
         \x20 sc          SC1-vs-SC2 ideal-setting experiment (§7.1)\n\
         \x20 queues      queue-length tuning (§5.3 extension)\n\
         \x20 value       convert a capacity gain into $/year (§5.3)\n\
         \n\
         common flags: --cluster tiny|small|medium|full, --seed N, --hours N\n\
         \n\
         --telemetry accepts a CSV file or a durable store directory\n\
         (WAL + segment files, recovered via TelemetryStore::open)"
    );
}

fn cmd_observe(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["cluster", "hours", "occupancy", "seed", "out"])?;
    let cluster = cluster_by_name(&args.get_str("cluster", "small"))?;
    let hours: u64 = args.get("hours", 48)?;
    let occupancy: f64 = args.get("occupancy", 0.95)?;
    let seed: u64 = args.get("seed", 1)?;
    let out_path = args.get_str("out", "telemetry.csv");
    let sim = run(&SimConfig {
        cluster: cluster.clone(),
        workload: WorkloadSpec::default_for(&cluster, occupancy),
        plan: kea_sim::ConfigPlan::baseline(&cluster.skus, SC1),
        duration_hours: hours,
        seed,
        task_log_every: 0,
        adhoc_job_log_every: 0,
    });
    let file = std::fs::File::create(&out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    write_csv(&sim.telemetry, std::io::BufWriter::new(file))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!(
        "observed {} machines for {hours}h (occupancy {occupancy}, seed {seed}); \
         {} machine-hour records → {out_path}",
        cluster.n_machines(),
        sim.telemetry.len()
    );
    Ok(())
}

fn fit_engine(args: &Args) -> Result<(TelemetryStore, FitMethod, Granularity), String> {
    let store = load_telemetry(args.require("telemetry")?)?;
    let method = match args.get_str("method", "huber").as_str() {
        "huber" => FitMethod::Huber,
        "ols" => FitMethod::Ols,
        other => return Err(format!("unknown method '{other}' (huber | ols)")),
    };
    let granularity = match args.get_str("granularity", "hourly").as_str() {
        "hourly" => Granularity::Hourly,
        "daily" => Granularity::Daily,
        other => return Err(format!("unknown granularity '{other}' (hourly | daily)")),
    };
    Ok((store, method, granularity))
}

fn cmd_models(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["telemetry", "method", "granularity", "min-rows"])?;
    let (store, method, granularity) = fit_engine(&args)?;
    let min_rows: usize = args.get("min-rows", 24)?;
    let monitor = PerformanceMonitor::new(&store);
    let engine = WhatIfEngine::fit_at(&monitor, method, granularity, min_rows)
        .map_err(|e| e.to_string())?;
    println!(
        "{:<14}{:>9}{:>10}{:>8}{:>10}{:>10}{:>8}{:>10}{:>10}",
        "group", "rows", "g slope", "g R2", "h slope", "f slope", "f R2", "median m", "median u"
    );
    for g in engine.groups() {
        println!(
            "sku{:<3} sc{:<5}{:>9}{:>10.3}{:>8.2}{:>10.3}{:>10.3}{:>8.2}{:>10.2}{:>10.1}",
            g.group.sku.0,
            g.group.sc.0,
            g.n_rows,
            g.g_containers_to_util.slope(),
            g.r2.0,
            g.h_util_to_tasks.slope(),
            g.f_util_to_latency.slope(),
            g.r2.2,
            g.current_containers,
            g.current_util,
        );
    }
    Ok(())
}

fn cmd_optimize(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["telemetry", "method", "granularity", "max-step", "percentile"])?;
    let (store, method, granularity) = fit_engine(&args)?;
    let max_step: f64 = args.get("max-step", 1.0)?;
    let monitor = PerformanceMonitor::new(&store);
    let engine =
        WhatIfEngine::fit_at(&monitor, method, granularity, 24).map_err(|e| e.to_string())?;
    let counts: BTreeMap<_, _> = monitor
        .group_utilization()
        .into_iter()
        .map(|g| (g.group, g.machines))
        .collect();
    let at = match args.flags.get("percentile") {
        None => OperatingPoint::Median,
        Some(p) => {
            let p: f64 = p.parse().map_err(|e| format!("--percentile '{p}': {e}"))?;
            if !(0.0..=100.0).contains(&p) {
                eprintln!(
                    "warning: --percentile {p} is outside 0–100; \
                     clamping to the nearest observed extreme"
                );
            }
            OperatingPoint::Percentile(p)
        }
    };
    let opt =
        optimize_max_containers(&engine, &counts, max_step, at).map_err(|e| e.to_string())?;
    println!("{:<14}{:>8}{:>10}{:>12}{:>10}", "group", "step", "m'", "gradient", "machines");
    for s in &opt.suggestions {
        println!(
            "sku{:<3} sc{:<5}{:>+8}{:>10.2}{:>12.3}{:>10}",
            s.group.sku.0,
            s.group.sc.0,
            s.delta_step,
            s.current_containers,
            s.latency_gradient,
            s.n_machines
        );
    }
    println!(
        "predicted capacity gain {:+.2}% at latency {:.1}s → {:.1}s",
        opt.predicted_capacity_gain * 100.0,
        opt.baseline_latency,
        opt.predicted_latency
    );
    Ok(())
}

fn cmd_yarn(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["cluster", "seed", "observe-hours", "eval-hours"])?;
    let cluster = cluster_by_name(&args.get_str("cluster", "small"))?;
    let mut params = YarnTuningParams::quick(cluster, args.get("seed", 30)?);
    params.observe_hours = args.get("observe-hours", params.observe_hours)?;
    params.eval_hours = args.get("eval-hours", params.eval_hours)?;
    let o = run_yarn_tuning(&params).map_err(|e| e.to_string())?;
    for s in &o.optimization.suggestions {
        println!(
            "sku{:<3} step {:+}  (m' = {:.1})",
            s.group.sku.0, s.delta_step, s.current_containers
        );
    }
    println!(
        "measured: throughput {:+.2}% (t={:.2}), latency {:+.2}%, capacity {:+.2}%; \
         guardrail {}; implicit SLOs {}",
        o.throughput_change_pct,
        o.throughput_t,
        o.latency_change_pct,
        o.capacity_change_pct,
        if o.deployment.approved { "PASSED" } else { "FAILED" },
        if o.slo.all_hold { "hold" } else { "VIOLATED" },
    );
    Ok(())
}

fn cmd_sku_design(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["telemetry", "cluster", "seed", "cores", "sku", "draws"])?;
    // Either analyze provided telemetry or observe a fresh window.
    let store = match args.flags.get("telemetry") {
        Some(path) => load_telemetry(path)?,
        None => {
            let cluster = cluster_by_name(&args.get_str("cluster", "small"))?;
            run(&SimConfig::baseline(cluster, 72, args.get("seed", 77)?)).telemetry
        }
    };
    let monitor = PerformanceMonitor::new(&store);
    let sku: u16 = args.get("sku", 4)?;
    let cores: u32 = args.get("cores", 128)?;
    // Project demand, then bracket it with candidates.
    let params_probe = SkuDesignParams {
        source_group: GroupKey::new(SkuId(sku), SC1),
        future_cores: cores,
        candidate_ssd_gb: vec![1.0],
        candidate_ram_gb: vec![1.0],
        cost: CostModel::default(),
        draws: 1,
        seed: args.get("seed", 78)?,
    };
    let probe = run_sku_design(&monitor, &params_probe).map_err(|e| e.to_string())?;
    let ssd_demand = probe.ssd_model.predict(cores as f64).max(1.0);
    let ram_demand = probe.ram_model.predict(cores as f64).max(1.0);
    let grid = |d: f64| (3..=9).map(|i| (d * 0.25 * i as f64).round()).collect::<Vec<_>>();
    let params = SkuDesignParams {
        candidate_ssd_gb: grid(ssd_demand),
        candidate_ram_gb: grid(ram_demand),
        draws: args.get("draws", 1000)?,
        ..params_probe
    };
    let o = run_sku_design(&monitor, &params).map_err(|e| e.to_string())?;
    println!(
        "usage models ({} obs): SSD = {:.1} + {:.2}·c; RAM = {:.1} + {:.2}·c",
        o.n_observations,
        o.ssd_model.intercept(),
        o.ssd_model.slope(),
        o.ram_model.intercept(),
        o.ram_model.slope()
    );
    println!(
        "projected demand at {cores} cores: SSD {ssd_demand:.0} GB, RAM {ram_demand:.0} GB"
    );
    println!(
        "sweet spot: {:.0} GB SSD + {:.0} GB RAM (expected cost {:.2} ± {:.2}); \
suggested NIC ≥ {:.0} Gbit/s",
        o.best.ssd_gb, o.best.ram_gb, o.best.expected_cost, o.best.std_err,
        o.suggested_nic_gbps
    );
    Ok(())
}

fn cmd_power(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["cluster", "sku", "caps", "group-size", "hours", "seed"])?;
    let caps: Vec<f64> = args
        .get_str("caps", "0.10,0.20,0.30")
        .split(',')
        .map(|c| c.trim().parse().map_err(|e| format!("--caps '{c}': {e}")))
        .collect::<Result<_, _>>()?;
    let params = PowerCappingParams {
        cluster: cluster_by_name(&args.get_str("cluster", "medium"))?,
        sku: SkuId(args.get("sku", 0)?),
        cap_levels: caps,
        group_size: args.get("group-size", 16)?,
        hours_per_round: args.get("hours", 24)?,
        warmup_hours: 3,
        seed: args.get("seed", 88)?,
    };
    let o = run_power_capping(&params).map_err(|e| e.to_string())?;
    println!("{:<26}{:>12}{:>12}{:>8}", "arm", "B/CPU-t %", "B/s %", "t");
    for c in &o.cells {
        println!(
            "cap {:>2.0}% {:<18}{:>12.2}{:>12.2}{:>8.2}",
            c.cap_level * 100.0,
            format!("{:?}", c.arm),
            c.bytes_per_cpu_change_pct,
            c.bytes_per_sec_change_pct,
            c.t_bytes_per_cpu
        );
    }
    Ok(())
}

fn cmd_sc(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["cluster", "sku", "racks", "hours", "seed"])?;
    let params = ScSelectionParams {
        cluster: cluster_by_name(&args.get_str("cluster", "medium"))?,
        sku: SkuId(args.get("sku", 0)?),
        n_racks: args.get("racks", 4)?,
        duration_hours: args.get("hours", 60)?,
        warmup_hours: 4,
        seed: args.get("seed", 99)?,
    };
    let o = run_sc_selection(&params).map_err(|e| e.to_string())?;
    for row in &o.table4 {
        println!(
            "{:<28} SC1 {:>10.2}  SC2 {:>10.2}  change {:>+7.2}%  t {:>7.2}",
            row.metric.name(),
            row.sc1_mean,
            row.sc2_mean,
            row.change_pct,
            row.t_value
        );
    }
    println!(
        "recommendation: {} ({} machines per group)",
        o.recommendation, o.machines_per_group
    );
    Ok(())
}

fn cmd_queues(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["cluster", "occupancy", "hours", "seed"])?;
    let mut params = QueueTuningParams::quick(
        cluster_by_name(&args.get_str("cluster", "small"))?,
        args.get("seed", 808)?,
    );
    params.target_occupancy = args.get("occupancy", params.target_occupancy)?;
    params.window_hours = args.get("hours", params.window_hours)?;
    let o = run_queue_tuning(&params).map_err(|e| e.to_string())?;
    for (m, r) in o.models.iter().zip(&o.rows) {
        println!(
            "sku{:<3} cap {:>4}   p99 wait {:>10.0} → {:>10.0} ms",
            m.group.sku.0, m.suggested_cap, r.before_wait_ms, r.after_wait_ms
        );
    }
    println!(
        "across-group spread {:.0} → {:.0} ms; task latency {:+.2}%",
        o.wait_spread_before, o.wait_spread_after, o.task_latency_change_pct
    );
    Ok(())
}

fn cmd_value(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["machines", "gain-pct", "power-w"])?;
    let machines: u32 = args.get("machines", 300_000)?;
    let gain_pct: f64 = args.get("gain-pct", 2.0)?;
    let power_w: f64 = args.get("power-w", 260.0)?;
    // Scale the default catalog to the requested fleet size.
    let base: u32 = kea_sim::default_skus(1).iter().map(|s| s.machine_count).sum();
    let mut skus = kea_sim::default_skus(1);
    for s in &mut skus {
        s.machine_count =
            ((s.machine_count as u64 * machines as u64) / base as u64).max(1) as u32;
    }
    let fleet = ClusterSpec::build(skus, 3);
    let v = capacity_gain_value(
        &fleet,
        &FleetCostModel::default(),
        gain_pct / 100.0,
        power_w,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "{} machines: fleet cost ${:.1}M/year; a {:+.2}% capacity gain is worth ${:.2}M/year",
        v.machines,
        v.fleet_cost_per_year / 1e6,
        gain_pct,
        v.total_per_year / 1e6
    );
    let _ = Arm::A; // silence unused-import lint in minimal builds
    Ok(())
}
