//! # KEA: data-driven tuning of an exabyte-scale data infrastructure
//!
//! A from-scratch Rust reproduction of *"KEA: Tuning an Exabyte-Scale
//! Data Infrastructure"* (SIGMOD 2021). KEA replaces manual cluster
//! tuning with models learned from passively observed telemetry,
//! escalating to production experiments only as a last resort.
//!
//! ## Architecture (Figure 7 of the paper)
//!
//! * [`monitor`] — the **Performance Monitor**: joins telemetry and
//!   computes the machine-group metrics of Table 2.
//! * [`whatif`] — the **Modeling Module**'s What-if Engine: per-group
//!   Huber regressions `g_k`, `h_k`, `f_k` (Equations 1–6).
//! * [`optimizer`] — the **Optimizer**: the container-rebalancing LP
//!   (Equations 7–10) solved with a from-scratch simplex.
//! * [`experiment`] — the **Experiment Module**: ideal / time-slicing /
//!   hybrid designs and treatment-effect analysis (§7).
//! * [`flighting`] — the **Flighting Tool** and **Deployment Module**:
//!   windowed config overrides, before/after evaluation, guardrails.
//! * [`conceptualization`] — Phase I validations of the abstraction
//!   ladder (Figures 4–6).
//! * [`methodology`] — the Phase I→II→III project state machine of
//!   Figure 3, with the gates the paper's process implies.
//! * [`slo`] — implicit-SLO validation at the job level (§3.2 Level II).
//! * [`anomaly`] — model-based screening of machines that drift off
//!   their group's calibrated line (the Griffon-adjacent hygiene the
//!   Huber choice of §5.2.1 implies).
//! * [`economics`] — converting capacity and power gains into dollars
//!   (§5.3's "monetary values").
//! * [`apps`] — the four production applications of Table 3, plus the
//!   §5.3 queue-length extension.
//!
//! The proprietary Cosmos fleet is replaced by the [`kea_sim`] simulator
//! (see `DESIGN.md` for the substitution argument); everything else —
//! models, optimizer, statistics, experiment designs — is exactly the
//! paper's machinery.
//!
//! ## Quickstart
//!
//! ```
//! use kea_core::monitor::PerformanceMonitor;
//! use kea_core::whatif::{FitMethod, WhatIfEngine};
//! use kea_sim::{run, ClusterSpec, SimConfig};
//!
//! // Observe a (simulated) cluster for two days.
//! let out = run(&SimConfig::baseline(ClusterSpec::tiny(), 48, 7));
//! // Calibrate the What-if Engine from telemetry alone.
//! let monitor = PerformanceMonitor::new(&out.telemetry);
//! let engine = WhatIfEngine::fit(&monitor, FitMethod::Huber, 4).unwrap();
//! // Ask a what-if question: utilization at 10 containers per machine.
//! let group = engine.groups().next().unwrap().group;
//! let (util, tasks_per_hour, latency) = engine.predict(group, 10.0).unwrap();
//! assert!(util > 0.0 && tasks_per_hour > 0.0 && latency > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod anomaly;
pub mod apps;
pub mod conceptualization;
pub mod economics;
pub mod error;
pub mod experiment;
pub mod flighting;
pub mod methodology;
pub mod monitor;
pub mod optimizer;
pub mod slo;
pub mod whatif;

pub use anomaly::{screen_machines, MachineAnomaly};
pub use apps::TuningApproach;
pub use economics::{capacity_gain_value, harvested_power_value, AnnualValue, FleetCostModel};
pub use error::KeaError;
pub use methodology::{Approach, Phase, TuningProject};
pub use slo::{check_implicit_slos, SloReport};
pub use experiment::{
    analyze, analyze_time_slices, hybrid_groups, ideal_setting, required_machine_hours,
    time_slices, MachineSplit,
};
pub use flighting::{evaluate_deployment, DeploymentReport, FlightingTool, Guardrail};
pub use monitor::PerformanceMonitor;
pub use optimizer::{
    optimize_max_containers, optimize_max_containers_warm, optimize_sweep, OperatingPoint,
    YarnOptimization,
};
pub use whatif::{FitMethod, GroupModels, WhatIfEngine};
