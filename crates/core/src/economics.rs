//! Converting performance into money (§5.3).
//!
//! "Based on the ML models proposed in Equations (1)–(6), KEA can also be
//! used to convert any performance improvement into capacity gain (given
//! the same task latency), allowing detailed quantitative evaluation for
//! all engineering changes in monetary values." The paper's headline —
//! "tens of millions of dollars per year" from a 2% capacity gain on a
//! fleet worth over $1B — is exactly this arithmetic. This module makes
//! it a typed, testable calculation instead of a slide.

use crate::error::KeaError;
use kea_sim::ClusterSpec;

/// Cost structure of a machine fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetCostModel {
    /// Amortized capital cost per machine per year (purchase price /
    /// depreciation years).
    pub capex_per_machine_year: f64,
    /// Datacenter overhead per machine per year (rack, cooling, space —
    /// the fixed costs §4.2's power-capping application amortizes).
    pub facility_per_machine_year: f64,
    /// Electricity price per kWh.
    pub price_per_kwh: f64,
}

impl Default for FleetCostModel {
    fn default() -> Self {
        // Public warehouse-scale ballparks (Barroso et al., the paper's
        // reference [7]): ~$6k server amortized over 4 years, facility
        // overhead of similar order, industrial electricity ~$0.07/kWh.
        FleetCostModel {
            capex_per_machine_year: 1_500.0,
            facility_per_machine_year: 1_200.0,
            price_per_kwh: 0.07,
        }
    }
}

/// The annual value of a tuning outcome on a given fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnualValue {
    /// Fleet size the estimate is for.
    pub machines: usize,
    /// Total annual cost of owning the fleet (capex + facility + power).
    pub fleet_cost_per_year: f64,
    /// Value of the capacity gain: the machines you no longer have to
    /// buy to serve the same (grown) demand.
    pub capacity_value_per_year: f64,
    /// Value of harvested power headroom (power-capping): extra machines
    /// the same provisioned megawatts can host, priced at facility cost.
    pub power_value_per_year: f64,
    /// Sum of the above.
    pub total_per_year: f64,
}

/// Prices a capacity gain (e.g. the +2% of §5.2.2) on a fleet: a `g`%
/// capacity gain is worth `g`% of the fleet's annual ownership cost —
/// the machines that gain substitutes for.
///
/// `mean_power_w` is the fleet-average electrical draw per machine (from
/// telemetry), used for the power component of ownership cost.
///
/// # Errors
/// The gain must be a finite fraction > −1 and the power non-negative.
pub fn capacity_gain_value(
    cluster: &ClusterSpec,
    cost: &FleetCostModel,
    capacity_gain_fraction: f64,
    mean_power_w: f64,
) -> Result<AnnualValue, KeaError> {
    if !capacity_gain_fraction.is_finite() || capacity_gain_fraction <= -1.0 {
        return Err(KeaError::Design(
            "capacity gain must be a finite fraction above -1".to_string(),
        ));
    }
    if !mean_power_w.is_finite() || mean_power_w < 0.0 {
        return Err(KeaError::Design("mean power must be non-negative".to_string()));
    }
    let machines = cluster.n_machines();
    let power_cost_per_machine = mean_power_w / 1000.0 * 24.0 * 365.0 * cost.price_per_kwh;
    let per_machine_year =
        cost.capex_per_machine_year + cost.facility_per_machine_year + power_cost_per_machine;
    let fleet_cost_per_year = per_machine_year * machines as f64;
    let capacity_value_per_year = fleet_cost_per_year * capacity_gain_fraction;
    Ok(AnnualValue {
        machines,
        fleet_cost_per_year,
        capacity_value_per_year,
        power_value_per_year: 0.0,
        total_per_year: capacity_value_per_year,
    })
}

/// Prices harvested provisioned power (the power-capping application):
/// capping every machine by `harvested_w_per_machine` frees megawatts
/// that host `freed / per_machine_provisioned` additional machines in the
/// same datacenter, each saving the *facility* cost that would otherwise
/// be spent building new capacity.
///
/// # Errors
/// The harvested power must be non-negative and below the provisioned
/// level of every SKU.
pub fn harvested_power_value(
    cluster: &ClusterSpec,
    cost: &FleetCostModel,
    harvested_w_per_machine: f64,
) -> Result<AnnualValue, KeaError> {
    if !harvested_w_per_machine.is_finite() || harvested_w_per_machine < 0.0 {
        return Err(KeaError::Design(
            "harvested power must be non-negative".to_string(),
        ));
    }
    let mean_provisioned: f64 = cluster
        .skus
        .iter()
        .map(|s| s.provisioned_power_w * s.machine_count as f64)
        .sum::<f64>()
        / cluster.n_machines() as f64;
    if harvested_w_per_machine >= mean_provisioned {
        return Err(KeaError::Design(
            "cannot harvest more than the provisioned level".to_string(),
        ));
    }
    let machines = cluster.n_machines();
    let freed_w = harvested_w_per_machine * machines as f64;
    let new_provision_per_machine = mean_provisioned - harvested_w_per_machine;
    let extra_machines = freed_w / new_provision_per_machine;
    let power_value_per_year = extra_machines * cost.facility_per_machine_year;
    Ok(AnnualValue {
        machines,
        fleet_cost_per_year: 0.0,
        capacity_value_per_year: 0.0,
        power_value_per_year,
        total_per_year: power_value_per_year,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_percent_on_a_large_fleet_is_tens_of_millions() {
        // Scale the paper's arithmetic: 300k machines, +2% capacity.
        let mut skus = kea_sim::default_skus(1);
        for s in &mut skus {
            s.machine_count *= 200; // 1.5k → 300k
        }
        let fleet = ClusterSpec::build(skus, 3);
        let value = capacity_gain_value(&fleet, &FleetCostModel::default(), 0.02, 250.0)
            .expect("valid inputs");
        assert!(
            value.total_per_year > 10_000_000.0,
            "paper: tens of millions; got ${:.0}",
            value.total_per_year
        );
        assert!(value.total_per_year < 100_000_000.0, "sanity upper bound");
        assert_eq!(value.capacity_value_per_year, value.total_per_year);
    }

    #[test]
    fn value_scales_linearly_in_the_gain() {
        let cluster = ClusterSpec::small();
        let cost = FleetCostModel::default();
        let one = capacity_gain_value(&cluster, &cost, 0.01, 250.0).unwrap();
        let three = capacity_gain_value(&cluster, &cost, 0.03, 250.0).unwrap();
        assert!((three.total_per_year / one.total_per_year - 3.0).abs() < 1e-9);
    }

    #[test]
    fn negative_gains_price_as_losses() {
        let cluster = ClusterSpec::small();
        let v = capacity_gain_value(&cluster, &FleetCostModel::default(), -0.01, 250.0)
            .unwrap();
        assert!(v.total_per_year < 0.0);
    }

    #[test]
    fn harvested_power_hosts_more_machines() {
        let cluster = ClusterSpec::default_cluster();
        let cost = FleetCostModel::default();
        // Cap ~15% below a ~450W mean provision: ~67W per machine.
        let v = harvested_power_value(&cluster, &cost, 67.0).unwrap();
        assert!(v.power_value_per_year > 0.0);
        // More harvest, more value; super-linear because the denominator
        // shrinks too.
        let v2 = harvested_power_value(&cluster, &cost, 134.0).unwrap();
        assert!(v2.power_value_per_year > 2.0 * v.power_value_per_year);
    }

    #[test]
    fn input_validation() {
        let cluster = ClusterSpec::tiny();
        let cost = FleetCostModel::default();
        assert!(capacity_gain_value(&cluster, &cost, f64::NAN, 250.0).is_err());
        assert!(capacity_gain_value(&cluster, &cost, -1.5, 250.0).is_err());
        assert!(capacity_gain_value(&cluster, &cost, 0.02, -1.0).is_err());
        assert!(harvested_power_value(&cluster, &cost, -5.0).is_err());
        assert!(harvested_power_value(&cluster, &cost, 10_000.0).is_err());
    }
}
