//! Model-based anomaly screening for the Performance Monitor.
//!
//! The calibrated group models describe how a *healthy* machine of a
//! group behaves; a machine whose hours systematically sit far from the
//! group line is draining, mis-configured, or sick. The paper's ecosystem
//! has a dedicated system for job-level anomaly reasoning (Griffon,
//! the paper's reference 45); at the machine level the same idea is a residual
//! screen over the What-if models — and it doubles as input hygiene:
//! §5.2.1 chose Huber precisely because such machines exist in the
//! training data.

use crate::error::KeaError;
use crate::whatif::WhatIfEngine;
use kea_telemetry::{GroupKey, MachineId, TelemetryStore};
use std::collections::BTreeMap;

/// One flagged machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineAnomaly {
    /// The machine.
    pub machine: MachineId,
    /// Its group.
    pub group: GroupKey,
    /// Hours with tasks that contributed to the score.
    pub hours_observed: usize,
    /// Mean standardized latency residual against the group model
    /// (positive = slower than the group line predicts).
    pub mean_z: f64,
}

/// Screens every machine against its group's latency model
/// (`f_k(g_k(containers))`): hours with completed tasks produce residuals
/// `observed_latency − predicted_latency`, standardized by the group's
/// residual spread; machines whose *mean* standardized residual exceeds
/// `z_threshold` (in absolute value) over at least `min_hours` busy hours
/// are flagged, most anomalous first.
///
/// # Errors
/// Every telemetry group must have calibrated models in the engine
/// (fit the engine on the same window).
pub fn screen_machines(
    engine: &WhatIfEngine,
    store: &TelemetryStore,
    z_threshold: f64,
    min_hours: usize,
) -> Result<Vec<MachineAnomaly>, KeaError> {
    if !(z_threshold > 0.0 && z_threshold.is_finite()) {
        return Err(KeaError::Design("z_threshold must be positive".to_string()));
    }
    // Pass 1: residuals per machine and pooled spread per group.
    struct Acc {
        sum: f64,
        count: usize,
        group: GroupKey,
    }
    let mut per_machine: BTreeMap<MachineId, Acc> = BTreeMap::new();
    let mut group_sq: BTreeMap<GroupKey, (f64, usize)> = BTreeMap::new();
    for rec in store.iter() {
        if rec.metrics.tasks_finished <= 0.0 {
            continue;
        }
        let models = engine
            .group(rec.group)
            .ok_or_else(|| KeaError::NoObservations {
                what: format!("no calibrated models for {:?}", rec.group),
            })?;
        let predicted =
            models.predict_latency(models.predict_util(rec.metrics.avg_running_containers));
        let residual = rec.metrics.avg_task_latency_s - predicted;
        let acc = per_machine.entry(rec.machine).or_insert(Acc {
            sum: 0.0,
            count: 0,
            group: rec.group,
        });
        acc.sum += residual;
        acc.count += 1;
        let g = group_sq.entry(rec.group).or_insert((0.0, 0));
        g.0 += residual * residual;
        g.1 += 1;
    }
    let spread: BTreeMap<GroupKey, f64> = group_sq
        .into_iter()
        .map(|(g, (sq, n))| (g, (sq / n.max(1) as f64).sqrt().max(1e-9)))
        .collect();

    // Pass 2: standardized per-machine means.
    let mut flagged: Vec<MachineAnomaly> = per_machine
        .into_iter()
        .filter(|(_, acc)| acc.count >= min_hours)
        .filter_map(|(machine, acc)| {
            let sd = spread.get(&acc.group)?;
            let mean_resid = acc.sum / acc.count as f64;
            // Standard error of the machine's mean under the group noise.
            let z = mean_resid / (sd / (acc.count as f64).sqrt());
            (z.abs() >= z_threshold).then_some(MachineAnomaly {
                machine,
                group: acc.group,
                hours_observed: acc.count,
                mean_z: z,
            })
        })
        .collect();
    flagged.sort_by(|a, b| b.mean_z.abs().total_cmp(&a.mean_z.abs()));
    Ok(flagged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::PerformanceMonitor;
    use crate::whatif::{FitMethod, Granularity};
    use kea_telemetry::{MachineHourRecord, MetricValues, ScId, SkuId};

    /// Healthy machines follow latency = 100 + 3·util exactly (plus tiny
    /// per-machine jitter); machine 13 runs 40% slower every hour.
    fn store_with_sick_machine() -> TelemetryStore {
        let mut s = TelemetryStore::new();
        for m in 0..20u32 {
            for h in 0..48u64 {
                let containers = 5.0 + (m % 4) as f64 + (h % 6) as f64 * 0.5;
                let util = 4.0 * containers;
                let mut latency = 100.0 + 3.0 * util + ((m as u64 + h) % 5) as f64 * 0.4;
                if m == 13 {
                    latency *= 1.4;
                }
                s.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: GroupKey::new(SkuId(0), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        avg_running_containers: containers,
                        cpu_utilization: util,
                        tasks_finished: 10.0,
                        avg_task_latency_s: latency,
                        ..Default::default()
                    },
                });
            }
        }
        s
    }

    #[test]
    fn flags_the_sick_machine_first() {
        let store = store_with_sick_machine();
        let monitor = PerformanceMonitor::new(&store);
        let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
            .expect("fits");
        let flagged = screen_machines(&engine, &store, 4.0, 12).expect("screens");
        assert!(!flagged.is_empty(), "the 40%-slow machine must be caught");
        assert_eq!(flagged[0].machine, MachineId(13));
        assert!(flagged[0].mean_z > 4.0);
        // Healthy machines are not flagged at this threshold.
        assert!(
            flagged.iter().all(|f| f.machine == MachineId(13)),
            "{flagged:?}"
        );
    }

    #[test]
    fn clean_fleet_produces_no_flags() {
        let mut store = TelemetryStore::new();
        for m in 0..20u32 {
            for h in 0..48u64 {
                let containers = 5.0 + (m % 4) as f64 + (h % 6) as f64 * 0.5;
                let util = 4.0 * containers;
                // Jitter uncorrelated with machine id.
                let latency = 100.0 + 3.0 * util + ((m as u64 * 7 + h * 3) % 11) as f64 * 0.3;
                store.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: GroupKey::new(SkuId(0), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        avg_running_containers: containers,
                        cpu_utilization: util,
                        tasks_finished: 10.0,
                        avg_task_latency_s: latency,
                        ..Default::default()
                    },
                });
            }
        }
        let monitor = PerformanceMonitor::new(&store);
        let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
            .expect("fits");
        let flagged = screen_machines(&engine, &store, 6.0, 12).expect("screens");
        assert!(flagged.is_empty(), "{flagged:?}");
    }

    #[test]
    fn respects_min_hours_and_validates() {
        let store = store_with_sick_machine();
        let monitor = PerformanceMonitor::new(&store);
        let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
            .expect("fits");
        // min_hours above the window length: nothing qualifies.
        let flagged = screen_machines(&engine, &store, 4.0, 1000).expect("screens");
        assert!(flagged.is_empty());
        assert!(screen_machines(&engine, &store, 0.0, 2).is_err());
        assert!(screen_machines(&engine, &store, f64::NAN, 2).is_err());
    }

    #[test]
    fn works_on_simulated_telemetry() {
        // End-to-end smoke: a real simulation should produce few or no
        // anomalies at a high threshold (no machine is *systematically*
        // off its group line — the noise is workload, not hardware).
        let out = kea_sim::run(&kea_sim::SimConfig::baseline(
            kea_sim::ClusterSpec::tiny(),
            30,
            71,
        ));
        let monitor = PerformanceMonitor::new(&out.telemetry);
        let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
            .expect("fits");
        let flagged = screen_machines(&engine, &out.telemetry, 10.0, 8).expect("screens");
        let fleet = kea_sim::ClusterSpec::tiny().n_machines();
        assert!(
            flagged.len() <= fleet / 5,
            "too many anomalies on a healthy fleet: {}",
            flagged.len()
        );
    }
}
