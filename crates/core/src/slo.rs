//! Implicit-SLO validation (§3.2, Level II).
//!
//! "Most jobs in Cosmos have implicit runtime SLOs": the recent runtime
//! behaviour of a job template induces an expectation on its next run, so
//! a configuration change is acceptable only if, for every template,
//! `runtime(job_i, conf_new) ≤ runtime(job_i, conf_old)` *statistically*
//! — "these constraints are statistical in nature due to naturally
//! occurring variances". This module turns job logs into per-template
//! verdicts with one-sided Welch tests, the job-level guardrail that sits
//! above the machine-level metrics.

use crate::error::KeaError;
use kea_sim::JobRecord;
use kea_stats::{t_test_welch, Alternative};
use std::collections::BTreeMap;

/// Per-template SLO verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateSlo {
    /// The job template name.
    pub template: String,
    /// Instances observed under the old configuration.
    pub n_before: usize,
    /// Instances observed under the new configuration.
    pub n_after: usize,
    /// Mean runtime before, seconds.
    pub mean_before_s: f64,
    /// Mean runtime after, seconds.
    pub mean_after_s: f64,
    /// One-sided p-value for "runtime regressed" (after > before);
    /// small means a *violation*.
    pub regression_p: f64,
    /// Whether the implicit SLO holds at the configured significance.
    pub holds: bool,
}

/// Aggregate report over all templates.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Per-template verdicts, sorted by name.
    pub templates: Vec<TemplateSlo>,
    /// Significance used for the regression tests.
    pub alpha: f64,
    /// Templates skipped for lack of instances on either side.
    pub skipped: Vec<String>,
    /// True when every testable template holds its implicit SLO.
    pub all_hold: bool,
}

/// Checks implicit SLOs: for each template present in both logs with at
/// least `min_instances` runs per side, a one-sided Welch test for
/// regression at level `alpha`. Templates with too few runs are listed
/// in `skipped`, not silently passed.
///
/// # Errors
/// `alpha` must lie in (0, 1) and `min_instances` be at least 2.
pub fn check_implicit_slos(
    before: &[JobRecord],
    after: &[JobRecord],
    min_instances: usize,
    alpha: f64,
) -> Result<SloReport, KeaError> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(KeaError::Stats(kea_stats::StatsError::InvalidParameter(
            "alpha must be in (0, 1)",
        )));
    }
    if min_instances < 2 {
        return Err(KeaError::Stats(kea_stats::StatsError::InvalidParameter(
            "min_instances must be at least 2",
        )));
    }
    let group = |jobs: &[JobRecord]| -> BTreeMap<String, Vec<f64>> {
        let mut map: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for j in jobs {
            map.entry(j.template_name.clone())
                .or_default()
                .push(j.runtime_s);
        }
        map
    };
    let before_by = group(before);
    let after_by = group(after);

    let mut templates = Vec::new();
    let mut skipped = Vec::new();
    for (name, b_runs) in &before_by {
        let Some(a_runs) = after_by.get(name) else {
            skipped.push(name.clone());
            continue;
        };
        if b_runs.len() < min_instances || a_runs.len() < min_instances {
            skipped.push(name.clone());
            continue;
        }
        // H1: after > before (regression). Zero-variance degenerate
        // cases (identical constant runtimes) trivially hold.
        let verdict = match t_test_welch(a_runs, b_runs, Alternative::Greater) {
            Ok(test) => (test.p_value, test.p_value >= alpha),
            Err(kea_stats::StatsError::ZeroVariance) => (1.0, true),
            Err(e) => return Err(KeaError::Stats(e)),
        };
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        templates.push(TemplateSlo {
            template: name.clone(),
            n_before: b_runs.len(),
            n_after: a_runs.len(),
            mean_before_s: mean(b_runs),
            mean_after_s: mean(a_runs),
            regression_p: verdict.0,
            holds: verdict.1,
        });
    }
    let all_hold = templates.iter().all(|t| t.holds);
    Ok(SloReport {
        templates,
        alpha,
        skipped,
        all_hold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(template: &str, runtimes: &[f64]) -> Vec<JobRecord> {
        runtimes
            .iter()
            .enumerate()
            .map(|(i, &rt)| JobRecord {
                template: 0,
                template_name: template.to_string(),
                arrival_hour: i as f64,
                runtime_s: rt,
                tasks: 1,
            })
            .collect()
    }

    #[test]
    fn stable_runtimes_hold_their_slo() {
        let before = jobs("etl", &[100.0, 104.0, 98.0, 101.0, 99.0]);
        let after = jobs("etl", &[101.0, 99.0, 103.0, 100.0, 98.0]);
        let report = check_implicit_slos(&before, &after, 3, 0.05).unwrap();
        assert!(report.all_hold);
        assert_eq!(report.templates.len(), 1);
        assert!(report.templates[0].holds);
        assert!(report.templates[0].regression_p > 0.05);
    }

    #[test]
    fn clear_regressions_are_violations() {
        let before = jobs("etl", &[100.0, 104.0, 98.0, 101.0, 99.0]);
        let after = jobs("etl", &[130.0, 128.0, 135.0, 131.0, 127.0]);
        let report = check_implicit_slos(&before, &after, 3, 0.05).unwrap();
        assert!(!report.all_hold);
        assert!(!report.templates[0].holds);
        assert!(report.templates[0].regression_p < 0.01);
    }

    #[test]
    fn improvements_hold_trivially() {
        let before = jobs("etl", &[100.0, 104.0, 98.0, 101.0]);
        let after = jobs("etl", &[80.0, 78.0, 82.0, 79.0]);
        let report = check_implicit_slos(&before, &after, 3, 0.05).unwrap();
        assert!(report.all_hold);
        assert!(report.templates[0].mean_after_s < report.templates[0].mean_before_s);
    }

    #[test]
    fn sparse_templates_are_skipped_not_passed() {
        let mut before = jobs("etl", &[100.0, 104.0, 98.0]);
        before.extend(jobs("rare", &[50.0]));
        let mut after = jobs("etl", &[101.0, 99.0, 103.0]);
        after.extend(jobs("rare", &[500.0]));
        let report = check_implicit_slos(&before, &after, 3, 0.05).unwrap();
        assert_eq!(report.skipped, vec!["rare".to_string()]);
        assert_eq!(report.templates.len(), 1);
        // A missing-on-one-side template is skipped too.
        let lonely = jobs("gone", &[10.0, 11.0, 12.0]);
        let report = check_implicit_slos(&lonely, &jobs("other", &[1.0, 2.0, 3.0]), 3, 0.05)
            .unwrap();
        assert!(report.templates.is_empty());
        assert_eq!(report.skipped, vec!["gone".to_string()]);
    }

    #[test]
    fn constant_runtimes_do_not_crash() {
        let before = jobs("cron", &[60.0, 60.0, 60.0]);
        let after = jobs("cron", &[60.0, 60.0, 60.0]);
        let report = check_implicit_slos(&before, &after, 3, 0.05).unwrap();
        assert!(report.all_hold);
        assert_eq!(report.templates[0].regression_p, 1.0);
    }

    #[test]
    fn parameter_validation() {
        assert!(check_implicit_slos(&[], &[], 3, 0.0).is_err());
        assert!(check_implicit_slos(&[], &[], 3, 1.0).is_err());
        assert!(check_implicit_slos(&[], &[], 1, 0.05).is_err());
        // Empty logs: nothing testable, vacuously holds.
        let report = check_implicit_slos(&[], &[], 2, 0.05).unwrap();
        assert!(report.all_hold);
        assert!(report.templates.is_empty());
    }
}
