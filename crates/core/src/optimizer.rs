//! The Optimizer for YARN configuration tuning (§5.2, Equations 7–10).
//!
//! The paper maximizes total running containers `Σ m_k n_k` subject to
//! the cluster-wide average task latency not regressing:
//! `W̄(m) ≤ W̄(m')` with `W̄ = Σ w_k l_k n_k / Σ l_k n_k`, where `w_k` and
//! `l_k` are themselves functions of `m_k` through the calibrated models.
//! That constraint is nonlinear in `m`; the paper solves a linear program,
//! which implies linearization around the current operating point — and
//! production only ever moves "by a small margin, i.e. decrease or
//! increase the maximum running containers … by one", so a first-order
//! model is exact enough by construction. We therefore solve, in the step
//! variables `d_k = m_k − m'_k`:
//!
//! ```text
//! max  Σ n_k d_k
//! s.t. Σ (∂W̄/∂m_k)|_{m'} · d_k ≤ 0        (latency budget, linearized)
//!      −δ ≤ d_k ≤ δ                        (conservative roll-out)
//! ```
//!
//! and verify the *nonlinear* W̄ at the rounded solution before reporting.
//!
//! ## Scaling to fleet-sized group counts
//!
//! `W̄` is a ratio of sums with exactly one additive term per group, and
//! every evaluation the optimizer needs after the operating point —
//! gradient components, rounding-repair probes — perturbs a *single*
//! group. [`ClusterLatencyCache`] therefore caches each group's
//! `(l_k·n_k, w_k·l_k·n_k)` contribution once and answers "what is W̄ if
//! only group k moves?" in O(1), making the whole gradient O(G) and each
//! repair step O(1) instead of O(G). The previous full-recompute
//! implementation is preserved in [`reference`] so tests can assert
//! numerical equivalence and benches can measure the speedup.

// kea-lint: allow-file(index-in-library) — parallel per-group vectors all have identical length G, established in optimization_inputs

use crate::error::KeaError;
use crate::whatif::WhatIfEngine;
use kea_opt::{LpProblem, Relation};
use kea_telemetry::GroupKey;
use std::collections::BTreeMap;

/// Which operating point to linearize around.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OperatingPoint {
    /// The median observed load (the paper's default run).
    Median,
    /// A high-load percentile of observed containers (the paper's
    /// sensitivity run, e.g. 90.0). Values outside `[0, 100]` are clamped
    /// to the nearest observed extreme rather than rejected.
    Percentile(f64),
}

/// A per-group suggested configuration change.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSuggestion {
    /// The machine group.
    pub group: GroupKey,
    /// Machines in the group.
    pub n_machines: usize,
    /// Operating point used (`m'_k`).
    pub current_containers: f64,
    /// Continuous LP solution `d_k`.
    pub delta_continuous: f64,
    /// Conservative integer step (rounded, clamped to the step limit).
    pub delta_step: i32,
    /// Latency gradient `∂W̄/∂m_k` at the operating point (s/container).
    pub latency_gradient: f64,
}

/// Result of the YARN optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct YarnOptimization {
    /// Per-group suggestions, sorted by group key.
    pub suggestions: Vec<GroupSuggestion>,
    /// Cluster-average latency at the operating point, seconds.
    pub baseline_latency: f64,
    /// Predicted cluster-average latency after applying the *integer*
    /// steps, via the full nonlinear models.
    pub predicted_latency: f64,
    /// Predicted relative capacity gain: `Σ n_k d_k / Σ n_k m'_k`.
    /// Zero when the fleet has no current capacity to compare against
    /// and nothing moved; infinite when capacity appears from a
    /// zero-container base.
    pub predicted_capacity_gain: f64,
}

impl YarnOptimization {
    /// Suggested integer steps as a map (for feeding into a
    /// [`kea_sim::ConfigPlan`]).
    pub fn steps(&self) -> BTreeMap<GroupKey, i32> {
        self.suggestions
            .iter()
            .map(|s| (s.group, s.delta_step))
            .collect()
    }
}

/// Central-difference half-width for the latency gradient, in containers.
const GRADIENT_EPS: f64 = 0.05;

/// Relative slack allowed when re-checking the latency budget after
/// integer rounding.
const LATENCY_SLACK: f64 = 1e-9;

/// Cluster-average latency `W̄` at container vector `m` (nonlinear, via
/// the calibrated models), recomputed from scratch in O(G).
fn cluster_latency(
    engine: &WhatIfEngine,
    counts: &BTreeMap<GroupKey, usize>,
    m: &BTreeMap<GroupKey, f64>,
) -> Result<f64, KeaError> {
    let mut num = 0.0;
    let mut den = 0.0;
    for (group, &containers) in m {
        let n = *counts.get(group).unwrap_or(&0) as f64;
        if n == 0.0 {
            continue;
        }
        let (_, tasks, latency) = engine.predict(*group, containers)?;
        num += latency * tasks * n;
        den += tasks * n;
    }
    if den <= 0.0 {
        return Err(KeaError::NoObservations {
            what: "cluster latency denominator is zero".to_string(),
        });
    }
    Ok(num / den)
}

/// Per-group contributions to `W̄ = Σ w_k l_k n_k / Σ l_k n_k`, cached at
/// a base container vector so single-group perturbations are O(1).
struct ClusterLatencyCache<'a> {
    /// Calibrated models per group, resolved once (every perturbation
    /// would otherwise pay a map lookup).
    models: Vec<&'a crate::whatif::GroupModels>,
    n_machines: Vec<f64>,
    /// Current container count per group (the cache's base point).
    containers: Vec<f64>,
    /// Per-group `(l_k·n_k, w_k·l_k·n_k)` at the base point.
    terms: Vec<(f64, f64)>,
    /// Running `Σ l_k n_k` over all groups.
    den: f64,
    /// Running `Σ w_k l_k n_k` over all groups.
    num: f64,
}

impl<'a> ClusterLatencyCache<'a> {
    fn new(
        engine: &'a WhatIfEngine,
        groups: &[GroupKey],
        n_machines: Vec<f64>,
        containers: Vec<f64>,
    ) -> Result<Self, KeaError> {
        let models = groups
            .iter()
            .map(|&g| {
                engine.group(g).ok_or_else(|| KeaError::NoObservations {
                    what: format!("no calibrated models for {g:?}"),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut cache = ClusterLatencyCache {
            models,
            n_machines,
            containers,
            terms: Vec::with_capacity(groups.len()),
            den: 0.0,
            num: 0.0,
        };
        for i in 0..groups.len() {
            let term = cache.term(i, cache.containers[i]);
            cache.den += term.0;
            cache.num += term.1;
            cache.terms.push(term);
        }
        Ok(cache)
    }

    /// One group's `(l_k·n_k, w_k·l_k·n_k)` at a hypothetical container
    /// count.
    fn term(&self, idx: usize, containers: f64) -> (f64, f64) {
        let m = self.models[idx];
        let util = m.predict_util(containers);
        let tasks = m.predict_tasks_per_hour(util);
        let latency = m.predict_latency(util);
        let n = self.n_machines[idx];
        (tasks * n, latency * tasks * n)
    }

    fn ratio(num: f64, den: f64) -> Result<f64, KeaError> {
        if den <= 0.0 {
            return Err(KeaError::NoObservations {
                what: "cluster latency denominator is zero".to_string(),
            });
        }
        Ok(num / den)
    }

    /// `W̄` at the base point.
    fn latency(&self) -> Result<f64, KeaError> {
        Self::ratio(self.num, self.den)
    }

    /// `W̄` if *only* group `idx` moved to `containers` — O(1), the base
    /// point is left untouched.
    fn latency_with(&self, idx: usize, containers: f64) -> Result<f64, KeaError> {
        let (d, n) = self.term(idx, containers);
        Self::ratio(
            self.num - self.terms[idx].1 + n,
            self.den - self.terms[idx].0 + d,
        )
    }

    /// Moves group `idx` to `containers`, updating the cached sums — O(1).
    fn set(&mut self, idx: usize, containers: f64) {
        let term = self.term(idx, containers);
        self.den += term.0 - self.terms[idx].0;
        self.num += term.1 - self.terms[idx].1;
        self.terms[idx] = term;
        self.containers[idx] = containers;
    }
}

/// Participating groups, their machine counts, and the operating-point
/// container vector, index-aligned.
type OptimizationInputs = (Vec<GroupKey>, Vec<f64>, Vec<f64>);

/// The calibrated groups that participate in the optimization, with
/// their machine counts and operating point.
fn optimization_inputs(
    engine: &WhatIfEngine,
    machine_counts: &BTreeMap<GroupKey, usize>,
    at: OperatingPoint,
) -> Result<OptimizationInputs, KeaError> {
    let groups: Vec<GroupKey> = engine
        .groups()
        .map(|g| g.group)
        .filter(|g| machine_counts.get(g).copied().unwrap_or(0) > 0)
        .collect();
    if groups.len() < 2 {
        return Err(KeaError::Design(
            "re-balancing needs at least two machine groups".to_string(),
        ));
    }
    let n_machines: Vec<f64> = groups
        .iter()
        .map(|g| machine_counts[g] as f64)
        .collect();
    let current: Vec<f64> = groups
        .iter()
        .map(|&g| {
            let models = engine
                .group(g)
                .ok_or_else(|| KeaError::Design(format!("group {g:?} not fitted by engine")))?;
            Ok(match at {
                OperatingPoint::Median => models.current_containers,
                OperatingPoint::Percentile(p) => models.containers_percentile(p),
            })
        })
        .collect::<Result<_, KeaError>>()?;
    Ok((groups, n_machines, current))
}

/// The two evaluation points of the latency gradient's central
/// difference, with the low side clamped so the probe never asks the
/// models about negative container counts.
fn gradient_probe_points(current: f64) -> (f64, f64) {
    (current + GRADIENT_EPS, (current - GRADIENT_EPS).max(0.0))
}

/// `Σ n_k d_k / Σ n_k m'_k` without dividing by zero: a fleet observed at
/// zero containers everywhere reports `0` for a do-nothing plan and `+∞`
/// for a plan that adds capacity, never `NaN`.
fn capacity_gain(total_delta: f64, total_current: f64) -> f64 {
    if total_current > 0.0 {
        total_delta / total_current
    } else if total_delta == 0.0 {
        0.0
    } else {
        f64::INFINITY * total_delta.signum()
    }
}

/// Solves the YARN `max_running_containers` tuning problem.
///
/// `machine_counts` gives `n_k` per group; `max_step` is the conservative
/// roll-out bound `δ` (the paper used 1 for the first round, 2 for the
/// next).
///
/// Gradient evaluation and rounding repair run in O(G) total via
/// [`ClusterLatencyCache`]; see [`reference::optimize_max_containers`]
/// for the O(G²) full-recompute baseline they are verified against.
///
/// # Errors
/// Needs at least two calibrated groups (with one group there is nothing
/// to re-balance), a positive step, and a solvable LP.
pub fn optimize_max_containers(
    engine: &WhatIfEngine,
    machine_counts: &BTreeMap<GroupKey, usize>,
    max_step: f64,
    at: OperatingPoint,
) -> Result<YarnOptimization, KeaError> {
    optimize_max_containers_warm(engine, machine_counts, max_step, at, &mut None)
}

/// [`optimize_max_containers`] with an explicit LP warm-start slot.
///
/// `warm` carries the optimal [`Basis`](kea_opt::Basis) between calls:
/// pass the slot left by a previous solve over the *same groups* (a
/// different operating point or sensitivity percentile only re-costs the
/// LP — same shape) and the simplex restarts from that basis instead of
/// from scratch. On success the slot is updated with this solve's
/// optimal basis. A stale or mismatched basis is detected by the solver
/// and falls back to a cold start, so the result is always identical to
/// [`optimize_max_containers`].
///
/// # Errors
/// Same conditions as [`optimize_max_containers`].
pub fn optimize_max_containers_warm(
    engine: &WhatIfEngine,
    machine_counts: &BTreeMap<GroupKey, usize>,
    max_step: f64,
    at: OperatingPoint,
    warm: &mut Option<kea_opt::Basis>,
) -> Result<YarnOptimization, KeaError> {
    if max_step <= 0.0 {
        return Err(KeaError::Opt(kea_opt::OptError::InvalidParameter(
            "max_step must be positive",
        )));
    }
    let (groups, n_machines, current) = optimization_inputs(engine, machine_counts, at)?;

    // Cache each group's contribution at the operating point m'.
    let mut cache =
        ClusterLatencyCache::new(engine, &groups, n_machines.clone(), current.clone())?;
    let baseline_latency = cache.latency()?;
    let budget = baseline_latency * (1.0 + LATENCY_SLACK);

    // Numerical gradient of W̄ w.r.t. each m_k (central difference, low
    // side clamped at zero containers). Each component perturbs a single
    // group, so both probes are O(1) against the cache: O(G) in total.
    let mut gradients = Vec::with_capacity(groups.len());
    for (i, &c) in current.iter().enumerate() {
        let (hi, lo) = gradient_probe_points(c);
        let w_plus = cache.latency_with(i, hi)?;
        let w_minus = cache.latency_with(i, lo)?;
        gradients.push((w_plus - w_minus) / (hi - lo));
    }

    // LP in the step variables.
    let mut lp = LpProblem::maximize(n_machines.clone()).constraint(
        gradients.clone(),
        Relation::Le,
        0.0,
    )?;
    for i in 0..groups.len() {
        lp = lp.bounds(i, -max_step, Some(max_step))?;
    }
    let (sol, basis) = lp.solve_warm(warm.as_ref())?;
    *warm = Some(basis);

    // Conservative integer rounding, re-checked against the latency
    // budget: shrink positive steps until the nonlinear W̄ clears the
    // baseline (rounding error can otherwise leak latency). The cache is
    // advanced to the rounded proposal so each withdrawal is O(1).
    let mut steps: Vec<i32> = sol
        .x
        .iter()
        .map(|&d| d.round().clamp(-max_step, max_step) as i32)
        .collect();
    let mut net = 0.0;
    for (i, &s) in steps.iter().enumerate() {
        cache.set(i, current[i] + s as f64);
        net += s as f64 * n_machines[i];
    }
    while cache.latency()? > budget {
        // Withdraw the positive step with the worst latency gradient.
        let Some(worst) = steps
            .iter()
            .enumerate()
            .filter(|(_, s)| **s > 0)
            .max_by(|(i, _), (j, _)| gradients[*i].total_cmp(&gradients[*j]))
            .map(|(i, _)| i)
        else {
            break; // No positive steps left; accept.
        };
        steps[worst] -= 1;
        net -= n_machines[worst];
        cache.set(worst, current[worst] + steps[worst] as f64);
    }
    // Rounding can also strand capacity: a continuous +0.4 rounds to 0
    // while a −0.6 rounds to −1, leaving Σ n_k·d_k < 0 even though the
    // continuous optimum was non-negative (d = 0 is always feasible).
    // Relax negative steps back toward zero where the latency budget
    // allows, largest machine groups first; if the plan still loses
    // capacity, fall back to the do-nothing plan. Probing a candidate is
    // a single-group O(1) peek at the cache.
    while net < 0.0 {
        let mut candidates: Vec<usize> = steps
            .iter()
            .enumerate()
            .filter(|(_, s)| **s < 0)
            .map(|(i, _)| i)
            .collect();
        candidates.sort_by(|&a, &b| n_machines[b].total_cmp(&n_machines[a]));
        let mut relaxed = false;
        for i in candidates {
            let candidate = current[i] + (steps[i] + 1) as f64;
            if cache.latency_with(i, candidate)? <= budget {
                steps[i] += 1;
                net += n_machines[i];
                cache.set(i, candidate);
                relaxed = true;
                break;
            }
        }
        if !relaxed {
            for (i, s) in steps.iter_mut().enumerate() {
                *s = 0;
                cache.set(i, current[i]);
            }
            break;
        }
    }

    // Final verification through a full recompute of the nonlinear W̄ —
    // one O(G) pass that is independent of the incrementally maintained
    // sums above.
    let proposal: BTreeMap<GroupKey, f64> = groups
        .iter()
        .zip(&cache.containers)
        .map(|(&g, &c)| (g, c))
        .collect();
    let predicted_latency = cluster_latency(engine, machine_counts, &proposal)?;

    let total_current: f64 = current
        .iter()
        .zip(&n_machines)
        .map(|(c, n)| c * n)
        .sum();
    let total_delta: f64 = steps
        .iter()
        .zip(&n_machines)
        .map(|(&s, n)| s as f64 * n)
        .sum();

    let suggestions = groups
        .iter()
        .enumerate()
        .map(|(i, &g)| GroupSuggestion {
            group: g,
            n_machines: machine_counts[&g],
            current_containers: current[i],
            delta_continuous: sol.x[i],
            delta_step: steps[i],
            latency_gradient: gradients[i],
        })
        .collect();

    Ok(YarnOptimization {
        suggestions,
        baseline_latency,
        predicted_latency,
        predicted_capacity_gain: capacity_gain(total_delta, total_current),
    })
}

/// Solves the YARN tuning problem at a sequence of operating points —
/// the `Median` plan plus its sensitivity percentiles — warm-starting
/// each LP from the previous point's optimal basis.
///
/// Moving the operating point re-costs the LP (new latency gradients)
/// but keeps its shape — same groups, same `[−δ, δ]` step box, one
/// latency row — and nearby operating points rarely change which groups
/// sit at the box edges, so the previous basis is usually optimal or a
/// pivot or two away. Results are identical to calling
/// [`optimize_max_containers`] once per point.
///
/// # Errors
/// Propagates the first failing point's error (same conditions as
/// [`optimize_max_containers`]); `points` must be non-empty.
pub fn optimize_sweep(
    engine: &WhatIfEngine,
    machine_counts: &BTreeMap<GroupKey, usize>,
    max_step: f64,
    points: &[OperatingPoint],
) -> Result<Vec<YarnOptimization>, KeaError> {
    if points.is_empty() {
        return Err(KeaError::Opt(kea_opt::OptError::InvalidParameter(
            "sweep needs at least one operating point",
        )));
    }
    let mut warm = None;
    points
        .iter()
        .map(|&at| optimize_max_containers_warm(engine, machine_counts, max_step, at, &mut warm))
        .collect()
}

pub mod reference {
    //! The pre-optimization O(G²) implementation, kept as an executable
    //! specification: every `cluster_latency` evaluation recomputes all G
    //! group contributions (with two full `BTreeMap` clones per gradient
    //! component), so gradients cost 2G·O(G) and every rounding-repair
    //! probe another O(G). `crates/core/tests/proptest_optimizer.rs`
    //! asserts the incremental path matches this one, and the
    //! `optimizer_scale` bench measures the gap. Not for production use.

    use super::*;

    /// Full-recompute central-difference latency gradients at the
    /// operating point (the quantity the incremental cache must match).
    ///
    /// # Errors
    /// Same conditions as [`super::optimize_max_containers`].
    pub fn latency_gradients(
        engine: &WhatIfEngine,
        machine_counts: &BTreeMap<GroupKey, usize>,
        at: OperatingPoint,
    ) -> Result<Vec<f64>, KeaError> {
        let (groups, _, current) = optimization_inputs(engine, machine_counts, at)?;
        let current_map: BTreeMap<GroupKey, f64> = groups
            .iter()
            .copied()
            .zip(current.iter().copied())
            .collect();
        let mut gradients = Vec::with_capacity(groups.len());
        for (i, &g) in groups.iter().enumerate() {
            let (hi, lo) = gradient_probe_points(current[i]);
            let mut plus = current_map.clone();
            plus.insert(g, hi);
            let mut minus = current_map.clone();
            minus.insert(g, lo);
            let w_plus = cluster_latency(engine, machine_counts, &plus)?;
            let w_minus = cluster_latency(engine, machine_counts, &minus)?;
            gradients.push((w_plus - w_minus) / (hi - lo));
        }
        Ok(gradients)
    }

    /// The original `optimize_max_containers`: identical contract and
    /// (up to floating-point noise well below any decision threshold)
    /// identical output, but every latency evaluation is a full O(G)
    /// recompute.
    ///
    /// # Errors
    /// Same conditions as [`super::optimize_max_containers`].
    pub fn optimize_max_containers(
        engine: &WhatIfEngine,
        machine_counts: &BTreeMap<GroupKey, usize>,
        max_step: f64,
        at: OperatingPoint,
    ) -> Result<YarnOptimization, KeaError> {
        if max_step <= 0.0 {
            return Err(KeaError::Opt(kea_opt::OptError::InvalidParameter(
                "max_step must be positive",
            )));
        }
        let (groups, n_machines, current_vec) =
            optimization_inputs(engine, machine_counts, at)?;
        let current: BTreeMap<GroupKey, f64> = groups
            .iter()
            .copied()
            .zip(current_vec.iter().copied())
            .collect();
        let baseline_latency = cluster_latency(engine, machine_counts, &current)?;
        let gradients = latency_gradients(engine, machine_counts, at)?;

        let mut lp = LpProblem::maximize(n_machines.clone()).constraint(
            gradients.clone(),
            Relation::Le,
            0.0,
        )?;
        for i in 0..groups.len() {
            lp = lp.bounds(i, -max_step, Some(max_step))?;
        }
        let sol = lp.solve()?;

        let mut steps: Vec<i32> = sol
            .x
            .iter()
            .map(|&d| d.round().clamp(-max_step, max_step) as i32)
            .collect();
        let latency_of = |steps: &[i32]| -> Result<f64, KeaError> {
            let proposal: BTreeMap<GroupKey, f64> = groups
                .iter()
                .zip(steps)
                .map(|(&g, &s)| (g, current[&g] + s as f64))
                .collect();
            cluster_latency(engine, machine_counts, &proposal)
        };
        loop {
            if latency_of(&steps)? <= baseline_latency * (1.0 + LATENCY_SLACK) {
                break;
            }
            let Some(worst) = steps
                .iter()
                .enumerate()
                .filter(|(_, s)| **s > 0)
                .max_by(|(i, _), (j, _)| gradients[*i].total_cmp(&gradients[*j]))
                .map(|(i, _)| i)
            else {
                break;
            };
            steps[worst] -= 1;
        }
        let net = |steps: &[i32]| -> f64 {
            steps
                .iter()
                .zip(&n_machines)
                .map(|(&s, n)| s as f64 * n)
                .sum()
        };
        while net(&steps) < 0.0 {
            let mut candidates: Vec<usize> = steps
                .iter()
                .enumerate()
                .filter(|(_, s)| **s < 0)
                .map(|(i, _)| i)
                .collect();
            candidates.sort_by(|&a, &b| n_machines[b].total_cmp(&n_machines[a]));
            let mut relaxed = false;
            for i in candidates {
                steps[i] += 1;
                if latency_of(&steps)? <= baseline_latency * (1.0 + LATENCY_SLACK) {
                    relaxed = true;
                    break;
                }
                steps[i] -= 1;
            }
            if !relaxed {
                steps.fill(0);
                break;
            }
        }

        let proposal: BTreeMap<GroupKey, f64> = groups
            .iter()
            .zip(&steps)
            .map(|(&g, &s)| (g, current[&g] + s as f64))
            .collect();
        let predicted_latency = cluster_latency(engine, machine_counts, &proposal)?;

        let total_current: f64 = current_vec
            .iter()
            .zip(&n_machines)
            .map(|(c, n)| c * n)
            .sum();
        let total_delta: f64 = steps
            .iter()
            .zip(&n_machines)
            .map(|(&s, n)| s as f64 * n)
            .sum();

        let suggestions = groups
            .iter()
            .enumerate()
            .map(|(i, &g)| GroupSuggestion {
                group: g,
                n_machines: machine_counts[&g],
                current_containers: current_vec[i],
                delta_continuous: sol.x[i],
                delta_step: steps[i],
                latency_gradient: gradients[i],
            })
            .collect();

        Ok(YarnOptimization {
            suggestions,
            baseline_latency,
            predicted_latency,
            predicted_capacity_gain: capacity_gain(total_delta, total_current),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::PerformanceMonitor;
    use crate::whatif::FitMethod;
    use kea_telemetry::{
        MachineHourRecord, MachineId, MetricValues, ScId, SkuId, TelemetryStore,
    };

    /// Two synthetic groups: group 0 is "slow" (steep latency-vs-util),
    /// group 1 is "fast" (shallow). Rebalancing should shift containers
    /// from slow to fast.
    fn two_group_store() -> TelemetryStore {
        let mut s = TelemetryStore::new();
        for m in 0..20u32 {
            let slow = m < 10;
            let sku = if slow { 0 } else { 5 };
            for h in 0..72u64 {
                let containers = 6.0 + (m % 5) as f64 * 0.8 + (h % 6) as f64 * 0.4;
                let util = if slow {
                    8.0 * containers
                } else {
                    3.0 * containers
                };
                let latency = if slow {
                    200.0 + 6.0 * util
                } else {
                    100.0 + 1.0 * util
                };
                let tasks = if slow { 1.2 * util } else { 3.0 * util };
                s.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: kea_telemetry::GroupKey::new(SkuId(sku), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        avg_running_containers: containers,
                        cpu_utilization: util,
                        tasks_finished: tasks,
                        avg_task_latency_s: latency,
                        ..Default::default()
                    },
                });
            }
        }
        s
    }

    fn counts() -> BTreeMap<kea_telemetry::GroupKey, usize> {
        [
            (kea_telemetry::GroupKey::new(SkuId(0), ScId(1)), 100),
            (kea_telemetry::GroupKey::new(SkuId(5), ScId(1)), 100),
        ]
        .into_iter()
        .collect()
    }

    fn engine(store: &TelemetryStore) -> (PerformanceMonitor<'_>, WhatIfEngine) {
        let mon = PerformanceMonitor::new(store);
        let eng = WhatIfEngine::fit(&mon, FitMethod::Huber, 5).unwrap();
        (mon, eng)
    }

    #[test]
    fn shifts_load_from_slow_to_fast() {
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        let opt =
            optimize_max_containers(&eng, &counts(), 1.0, OperatingPoint::Median).unwrap();
        let slow = &opt.suggestions[0];
        let fast = &opt.suggestions[1];
        assert_eq!(slow.group.sku, SkuId(0));
        assert!(
            slow.delta_step <= 0,
            "slow group should shrink: {:?}",
            slow
        );
        assert!(fast.delta_step >= 1, "fast group should grow: {:?}", fast);
        // Latency budget respected by the integer plan.
        assert!(opt.predicted_latency <= opt.baseline_latency * (1.0 + 1e-9));
        // The paper's direction: net capacity should not fall.
        assert!(opt.predicted_capacity_gain >= 0.0);
    }

    #[test]
    fn high_percentile_run_same_direction() {
        // Figure 10: "the suggested configuration change is the same in
        // terms of the direction for the gradients" under heavy load.
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        let median =
            optimize_max_containers(&eng, &counts(), 1.0, OperatingPoint::Median).unwrap();
        let p90 = optimize_max_containers(
            &eng,
            &counts(),
            1.0,
            OperatingPoint::Percentile(90.0),
        )
        .unwrap();
        for (a, b) in median.suggestions.iter().zip(&p90.suggestions) {
            assert_eq!(
                a.delta_step.signum(),
                b.delta_step.signum(),
                "direction must agree: {a:?} vs {b:?}"
            );
        }
        // Operating points differ though.
        assert!(p90.suggestions[0].current_containers > median.suggestions[0].current_containers);
    }

    #[test]
    fn warm_sweep_matches_individual_solves() {
        // The warm-started sweep must be a pure performance optimization:
        // every per-point plan identical to a cold solve at that point.
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        let points = [
            OperatingPoint::Median,
            OperatingPoint::Percentile(75.0),
            OperatingPoint::Percentile(90.0),
            OperatingPoint::Percentile(95.0),
            OperatingPoint::Percentile(99.0),
        ];
        let swept = optimize_sweep(&eng, &counts(), 1.0, &points).unwrap();
        assert_eq!(swept.len(), points.len());
        for (at, warm) in points.iter().zip(&swept) {
            let cold = optimize_max_containers(&eng, &counts(), 1.0, *at).unwrap();
            assert_eq!(
                warm.suggestions.len(),
                cold.suggestions.len(),
                "at {at:?}"
            );
            for (w, c) in warm.suggestions.iter().zip(&cold.suggestions) {
                assert_eq!(w.group, c.group);
                assert_eq!(w.delta_step, c.delta_step, "at {at:?}");
                assert!(
                    (w.delta_continuous - c.delta_continuous).abs() < 1e-9,
                    "continuous optima diverge at {at:?}: {} vs {}",
                    w.delta_continuous,
                    c.delta_continuous
                );
            }
            assert!((warm.predicted_latency - cold.predicted_latency).abs() < 1e-9);
            assert!(
                (warm.predicted_capacity_gain - cold.predicted_capacity_gain).abs() < 1e-12
            );
        }
    }

    #[test]
    fn sweep_rejects_empty_points() {
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        assert!(optimize_sweep(&eng, &counts(), 1.0, &[]).is_err());
    }

    #[test]
    fn larger_step_bound_allows_bigger_moves() {
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        let one = optimize_max_containers(&eng, &counts(), 1.0, OperatingPoint::Median).unwrap();
        let two = optimize_max_containers(&eng, &counts(), 2.0, OperatingPoint::Median).unwrap();
        let gain = |o: &YarnOptimization| o.predicted_capacity_gain;
        assert!(gain(&two) >= gain(&one) - 1e-9);
        for s in &two.suggestions {
            assert!(s.delta_step.abs() <= 2);
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        assert!(optimize_max_containers(&eng, &counts(), 0.0, OperatingPoint::Median).is_err());
        // Single group: nothing to rebalance.
        let single: BTreeMap<_, _> = counts().into_iter().take(1).collect();
        assert!(matches!(
            optimize_max_containers(&eng, &single, 1.0, OperatingPoint::Median),
            Err(KeaError::Design(_))
        ));
    }

    #[test]
    fn gradients_reflect_latency_steepness() {
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        let opt =
            optimize_max_containers(&eng, &counts(), 1.0, OperatingPoint::Median).unwrap();
        let slow = &opt.suggestions[0];
        let fast = &opt.suggestions[1];
        assert!(
            slow.latency_gradient > fast.latency_gradient,
            "slow group must have the steeper latency gradient"
        );
    }

    #[test]
    fn incremental_plan_matches_reference_plan() {
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        for at in [OperatingPoint::Median, OperatingPoint::Percentile(90.0)] {
            let fast = optimize_max_containers(&eng, &counts(), 1.0, at).unwrap();
            let slow = reference::optimize_max_containers(&eng, &counts(), 1.0, at).unwrap();
            assert_eq!(fast.steps(), slow.steps());
            for (a, b) in fast.suggestions.iter().zip(&slow.suggestions) {
                assert!(
                    (a.latency_gradient - b.latency_gradient).abs() < 1e-9,
                    "gradient drift: {} vs {}",
                    a.latency_gradient,
                    b.latency_gradient
                );
            }
            assert!((fast.baseline_latency - slow.baseline_latency).abs() < 1e-9);
            assert!((fast.predicted_latency - slow.predicted_latency).abs() < 1e-9);
        }
    }

    /// Telemetry from machines that are idle (zero running containers)
    /// most hours with occasional bursts: the *median* containers is zero
    /// in every group, the historical NaN-capacity-gain input. The bursts
    /// keep the per-group fits non-singular.
    fn zero_container_store() -> TelemetryStore {
        let mut s = TelemetryStore::new();
        for m in 0..12u32 {
            let sku = if m < 6 { 0 } else { 5 };
            for h in 0..48u64 {
                let containers = if h % 4 == 0 {
                    4.0 + (h % 8) as f64 + (m % 3) as f64 * 0.5
                } else {
                    0.0
                };
                let util = 2.0 + 1.5 * containers;
                s.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: kea_telemetry::GroupKey::new(SkuId(sku), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        avg_running_containers: containers,
                        cpu_utilization: util,
                        tasks_finished: 5.0 + util,
                        avg_task_latency_s: 100.0 + 3.0 * util,
                        ..Default::default()
                    },
                });
            }
        }
        s
    }

    #[test]
    fn zero_container_operating_point_never_yields_nan() {
        let store = zero_container_store();
        let mon = PerformanceMonitor::new(&store);
        // Hourly granularity so the idle hours dominate the median
        // (daily means would smear the bursts into a positive median).
        let eng = WhatIfEngine::fit_at(
            &mon,
            FitMethod::Huber,
            crate::whatif::Granularity::Hourly,
            5,
        )
        .unwrap();
        let opt =
            optimize_max_containers(&eng, &counts(), 1.0, OperatingPoint::Median).unwrap();
        // Operating point is zero everywhere…
        for s in &opt.suggestions {
            assert_eq!(s.current_containers, 0.0);
            // …and the clamped central difference never probed below zero,
            // so the gradient is finite.
            assert!(s.latency_gradient.is_finite());
        }
        // The historical failure: 0/0 → NaN. Now either 0 or +∞, never NaN.
        assert!(!opt.predicted_capacity_gain.is_nan());
        assert!(opt.predicted_capacity_gain >= 0.0);
    }

    #[test]
    fn capacity_gain_edge_cases() {
        assert_eq!(capacity_gain(0.0, 0.0), 0.0);
        assert_eq!(capacity_gain(5.0, 0.0), f64::INFINITY);
        assert_eq!(capacity_gain(3.0, 6.0), 0.5);
        assert!(!capacity_gain(-2.0, 0.0).is_nan());
    }

    #[test]
    fn gradient_probe_never_goes_negative() {
        let (hi, lo) = gradient_probe_points(0.0);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0);
        let (hi2, lo2) = gradient_probe_points(10.0);
        assert!((hi2 - 10.05).abs() < 1e-12);
        assert!((lo2 - 9.95).abs() < 1e-12);
    }
}
