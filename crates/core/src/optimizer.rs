//! The Optimizer for YARN configuration tuning (§5.2, Equations 7–10).
//!
//! The paper maximizes total running containers `Σ m_k n_k` subject to
//! the cluster-wide average task latency not regressing:
//! `W̄(m) ≤ W̄(m')` with `W̄ = Σ w_k l_k n_k / Σ l_k n_k`, where `w_k` and
//! `l_k` are themselves functions of `m_k` through the calibrated models.
//! That constraint is nonlinear in `m`; the paper solves a linear program,
//! which implies linearization around the current operating point — and
//! production only ever moves "by a small margin, i.e. decrease or
//! increase the maximum running containers … by one", so a first-order
//! model is exact enough by construction. We therefore solve, in the step
//! variables `d_k = m_k − m'_k`:
//!
//! ```text
//! max  Σ n_k d_k
//! s.t. Σ (∂W̄/∂m_k)|_{m'} · d_k ≤ 0        (latency budget, linearized)
//!      −δ ≤ d_k ≤ δ                        (conservative roll-out)
//! ```
//!
//! and verify the *nonlinear* W̄ at the rounded solution before reporting.

use crate::error::KeaError;
use crate::whatif::WhatIfEngine;
use kea_opt::{LpProblem, Relation};
use kea_telemetry::GroupKey;
use std::collections::BTreeMap;

/// Which operating point to linearize around.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OperatingPoint {
    /// The median observed load (the paper's default run).
    Median,
    /// A high-load percentile of observed containers (the paper's
    /// sensitivity run, e.g. 90.0).
    Percentile(f64),
}

/// A per-group suggested configuration change.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSuggestion {
    /// The machine group.
    pub group: GroupKey,
    /// Machines in the group.
    pub n_machines: usize,
    /// Operating point used (`m'_k`).
    pub current_containers: f64,
    /// Continuous LP solution `d_k`.
    pub delta_continuous: f64,
    /// Conservative integer step (rounded, clamped to the step limit).
    pub delta_step: i32,
    /// Latency gradient `∂W̄/∂m_k` at the operating point (s/container).
    pub latency_gradient: f64,
}

/// Result of the YARN optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct YarnOptimization {
    /// Per-group suggestions, sorted by group key.
    pub suggestions: Vec<GroupSuggestion>,
    /// Cluster-average latency at the operating point, seconds.
    pub baseline_latency: f64,
    /// Predicted cluster-average latency after applying the *integer*
    /// steps, via the full nonlinear models.
    pub predicted_latency: f64,
    /// Predicted relative capacity gain: `Σ n_k d_k / Σ n_k m'_k`.
    pub predicted_capacity_gain: f64,
}

impl YarnOptimization {
    /// Suggested integer steps as a map (for feeding into a
    /// [`kea_sim::ConfigPlan`]).
    pub fn steps(&self) -> BTreeMap<GroupKey, i32> {
        self.suggestions
            .iter()
            .map(|s| (s.group, s.delta_step))
            .collect()
    }
}

/// Cluster-average latency `W̄` at container vector `m` (nonlinear, via
/// the calibrated models).
fn cluster_latency(
    engine: &WhatIfEngine,
    counts: &BTreeMap<GroupKey, usize>,
    m: &BTreeMap<GroupKey, f64>,
) -> Result<f64, KeaError> {
    let mut num = 0.0;
    let mut den = 0.0;
    for (group, &containers) in m {
        let n = *counts.get(group).unwrap_or(&0) as f64;
        if n == 0.0 {
            continue;
        }
        let (_, tasks, latency) = engine.predict(*group, containers)?;
        num += latency * tasks * n;
        den += tasks * n;
    }
    if den <= 0.0 {
        return Err(KeaError::NoObservations {
            what: "cluster latency denominator is zero".to_string(),
        });
    }
    Ok(num / den)
}

/// Solves the YARN `max_running_containers` tuning problem.
///
/// `machine_counts` gives `n_k` per group; `max_step` is the conservative
/// roll-out bound `δ` (the paper used 1 for the first round, 2 for the
/// next).
///
/// # Errors
/// Needs at least two calibrated groups (with one group there is nothing
/// to re-balance), a positive step, and a solvable LP.
pub fn optimize_max_containers(
    engine: &WhatIfEngine,
    machine_counts: &BTreeMap<GroupKey, usize>,
    max_step: f64,
    at: OperatingPoint,
) -> Result<YarnOptimization, KeaError> {
    if max_step <= 0.0 {
        return Err(KeaError::Opt(kea_opt::OptError::InvalidParameter(
            "max_step must be positive",
        )));
    }
    let groups: Vec<GroupKey> = engine
        .groups()
        .map(|g| g.group)
        .filter(|g| machine_counts.get(g).copied().unwrap_or(0) > 0)
        .collect();
    if groups.len() < 2 {
        return Err(KeaError::Design(
            "re-balancing needs at least two machine groups".to_string(),
        ));
    }

    // Operating point m'.
    let current: BTreeMap<GroupKey, f64> = groups
        .iter()
        .map(|&g| {
            let models = engine.group(g).expect("group listed by engine");
            let c = match at {
                OperatingPoint::Median => models.current_containers,
                OperatingPoint::Percentile(p) => models.containers_percentile(p),
            };
            (g, c)
        })
        .collect();
    let baseline_latency = cluster_latency(engine, machine_counts, &current)?;

    // Numerical gradient of W̄ w.r.t. each m_k (central difference).
    let eps = 0.05;
    let mut gradients = Vec::with_capacity(groups.len());
    for &g in &groups {
        let mut plus = current.clone();
        *plus.get_mut(&g).expect("group in map") += eps;
        let mut minus = current.clone();
        *minus.get_mut(&g).expect("group in map") -= eps;
        let w_plus = cluster_latency(engine, machine_counts, &plus)?;
        let w_minus = cluster_latency(engine, machine_counts, &minus)?;
        gradients.push((w_plus - w_minus) / (2.0 * eps));
    }

    // LP in the step variables.
    let objective: Vec<f64> = groups
        .iter()
        .map(|g| machine_counts[g] as f64)
        .collect();
    let mut lp = LpProblem::maximize(objective).constraint(
        gradients.clone(),
        Relation::Le,
        0.0,
    )?;
    for i in 0..groups.len() {
        lp = lp.bounds(i, -max_step, Some(max_step))?;
    }
    let sol = lp.solve()?;

    // Conservative integer rounding, re-checked against the latency
    // budget: shrink positive steps until the nonlinear W̄ clears the
    // baseline (rounding error can otherwise leak latency).
    let mut steps: Vec<i32> = sol
        .x
        .iter()
        .map(|&d| d.round().clamp(-max_step, max_step) as i32)
        .collect();
    let latency_of = |steps: &[i32]| -> Result<f64, KeaError> {
        let proposal: BTreeMap<GroupKey, f64> = groups
            .iter()
            .zip(steps)
            .map(|(&g, &s)| (g, current[&g] + s as f64))
            .collect();
        cluster_latency(engine, machine_counts, &proposal)
    };
    loop {
        if latency_of(&steps)? <= baseline_latency * (1.0 + 1e-9) {
            break;
        }
        // Withdraw the positive step with the worst latency gradient.
        let Some(worst) = steps
            .iter()
            .enumerate()
            .filter(|(_, s)| **s > 0)
            .max_by(|(i, _), (j, _)| gradients[*i].total_cmp(&gradients[*j]))
            .map(|(i, _)| i)
        else {
            break; // No positive steps left; accept.
        };
        steps[worst] -= 1;
    }
    // Rounding can also strand capacity: a continuous +0.4 rounds to 0
    // while a −0.6 rounds to −1, leaving Σ n_k·d_k < 0 even though the
    // continuous optimum was non-negative (d = 0 is always feasible).
    // Relax negative steps back toward zero where the latency budget
    // allows, largest machine groups first; if the plan still loses
    // capacity, fall back to the do-nothing plan.
    let net = |steps: &[i32]| -> f64 {
        groups
            .iter()
            .zip(steps)
            .map(|(g, &s)| s as f64 * machine_counts[g] as f64)
            .sum()
    };
    while net(&steps) < 0.0 {
        let mut candidates: Vec<usize> = steps
            .iter()
            .enumerate()
            .filter(|(_, s)| **s < 0)
            .map(|(i, _)| i)
            .collect();
        candidates.sort_by_key(|&i| std::cmp::Reverse(machine_counts[&groups[i]]));
        let mut relaxed = false;
        for i in candidates {
            steps[i] += 1;
            if latency_of(&steps)? <= baseline_latency * (1.0 + 1e-9) {
                relaxed = true;
                break;
            }
            steps[i] -= 1;
        }
        if !relaxed {
            for s in &mut steps {
                *s = 0;
            }
            break;
        }
    }

    let proposal: BTreeMap<GroupKey, f64> = groups
        .iter()
        .zip(&steps)
        .map(|(&g, &s)| (g, current[&g] + s as f64))
        .collect();
    let predicted_latency = cluster_latency(engine, machine_counts, &proposal)?;

    let total_current: f64 = groups
        .iter()
        .map(|g| current[g] * machine_counts[g] as f64)
        .sum();
    let total_delta: f64 = groups
        .iter()
        .zip(&steps)
        .map(|(g, &s)| s as f64 * machine_counts[g] as f64)
        .sum();

    let suggestions = groups
        .iter()
        .enumerate()
        .map(|(i, &g)| GroupSuggestion {
            group: g,
            n_machines: machine_counts[&g],
            current_containers: current[&g],
            delta_continuous: sol.x[i],
            delta_step: steps[i],
            latency_gradient: gradients[i],
        })
        .collect();

    Ok(YarnOptimization {
        suggestions,
        baseline_latency,
        predicted_latency,
        predicted_capacity_gain: total_delta / total_current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::PerformanceMonitor;
    use crate::whatif::FitMethod;
    use kea_telemetry::{
        MachineHourRecord, MachineId, MetricValues, ScId, SkuId, TelemetryStore,
    };

    /// Two synthetic groups: group 0 is "slow" (steep latency-vs-util),
    /// group 1 is "fast" (shallow). Rebalancing should shift containers
    /// from slow to fast.
    fn two_group_store() -> TelemetryStore {
        let mut s = TelemetryStore::new();
        for m in 0..20u32 {
            let slow = m < 10;
            let sku = if slow { 0 } else { 5 };
            for h in 0..72u64 {
                let containers = 6.0 + (m % 5) as f64 * 0.8 + (h % 6) as f64 * 0.4;
                let util = if slow {
                    8.0 * containers
                } else {
                    3.0 * containers
                };
                let latency = if slow {
                    200.0 + 6.0 * util
                } else {
                    100.0 + 1.0 * util
                };
                let tasks = if slow { 1.2 * util } else { 3.0 * util };
                s.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: kea_telemetry::GroupKey::new(SkuId(sku), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        avg_running_containers: containers,
                        cpu_utilization: util,
                        tasks_finished: tasks,
                        avg_task_latency_s: latency,
                        ..Default::default()
                    },
                });
            }
        }
        s
    }

    fn counts() -> BTreeMap<kea_telemetry::GroupKey, usize> {
        [
            (kea_telemetry::GroupKey::new(SkuId(0), ScId(1)), 100),
            (kea_telemetry::GroupKey::new(SkuId(5), ScId(1)), 100),
        ]
        .into_iter()
        .collect()
    }

    fn engine(store: &TelemetryStore) -> (PerformanceMonitor<'_>, WhatIfEngine) {
        let mon = PerformanceMonitor::new(store);
        let eng = WhatIfEngine::fit(&mon, FitMethod::Huber, 5).unwrap();
        (mon, eng)
    }

    #[test]
    fn shifts_load_from_slow_to_fast() {
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        let opt =
            optimize_max_containers(&eng, &counts(), 1.0, OperatingPoint::Median).unwrap();
        let slow = &opt.suggestions[0];
        let fast = &opt.suggestions[1];
        assert_eq!(slow.group.sku, SkuId(0));
        assert!(
            slow.delta_step <= 0,
            "slow group should shrink: {:?}",
            slow
        );
        assert!(fast.delta_step >= 1, "fast group should grow: {:?}", fast);
        // Latency budget respected by the integer plan.
        assert!(opt.predicted_latency <= opt.baseline_latency * (1.0 + 1e-9));
        // The paper's direction: net capacity should not fall.
        assert!(opt.predicted_capacity_gain >= 0.0);
    }

    #[test]
    fn high_percentile_run_same_direction() {
        // Figure 10: "the suggested configuration change is the same in
        // terms of the direction for the gradients" under heavy load.
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        let median =
            optimize_max_containers(&eng, &counts(), 1.0, OperatingPoint::Median).unwrap();
        let p90 = optimize_max_containers(
            &eng,
            &counts(),
            1.0,
            OperatingPoint::Percentile(90.0),
        )
        .unwrap();
        for (a, b) in median.suggestions.iter().zip(&p90.suggestions) {
            assert_eq!(
                a.delta_step.signum(),
                b.delta_step.signum(),
                "direction must agree: {a:?} vs {b:?}"
            );
        }
        // Operating points differ though.
        assert!(p90.suggestions[0].current_containers > median.suggestions[0].current_containers);
    }

    #[test]
    fn larger_step_bound_allows_bigger_moves() {
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        let one = optimize_max_containers(&eng, &counts(), 1.0, OperatingPoint::Median).unwrap();
        let two = optimize_max_containers(&eng, &counts(), 2.0, OperatingPoint::Median).unwrap();
        let gain = |o: &YarnOptimization| o.predicted_capacity_gain;
        assert!(gain(&two) >= gain(&one) - 1e-9);
        for s in &two.suggestions {
            assert!(s.delta_step.abs() <= 2);
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        assert!(optimize_max_containers(&eng, &counts(), 0.0, OperatingPoint::Median).is_err());
        // Single group: nothing to rebalance.
        let single: BTreeMap<_, _> = counts().into_iter().take(1).collect();
        assert!(matches!(
            optimize_max_containers(&eng, &single, 1.0, OperatingPoint::Median),
            Err(KeaError::Design(_))
        ));
    }

    #[test]
    fn gradients_reflect_latency_steepness() {
        let store = two_group_store();
        let (_mon, eng) = engine(&store);
        let opt =
            optimize_max_containers(&eng, &counts(), 1.0, OperatingPoint::Median).unwrap();
        let slow = &opt.suggestions[0];
        let fast = &opt.suggestions[1];
        assert!(
            slow.latency_gradient > fast.latency_gradient,
            "slow group must have the steeper latency gradient"
        );
    }
}
