//! The KEA project methodology as a typed state machine (§3.1, Figure 3).
//!
//! A tuning project moves through three phases:
//!
//! * **Phase I — Fact Finding & System Conceptualization**: stakeholders
//!   agree on objective, constraints, and controllable configurations;
//!   the abstraction ladder is validated on data (our
//!   [`crate::conceptualization`] checks).
//! * **Phase II — Modeling & Optimization**: calibrated models + an
//!   optimal configuration proposal.
//! * **Phase III — Deployment**: flighting, guardrail evaluation, and the
//!   final roll-out decision.
//!
//! The paper stresses that phases gate each other ("note that at this
//! stage we have not built ML models yet" in Phase I; flighting before
//! any roll-out in Phase III). Encoding the gates in the type system
//! turns that process discipline into a compile-/run-time guarantee: a
//! project cannot record an optimization before its conceptualization is
//! validated, and cannot be approved for roll-out before flighting.

use crate::error::KeaError;

/// Phase of a tuning project.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Phase I: fact finding and system conceptualization.
    Conceptualization,
    /// Phase II: modeling and optimization.
    Modeling,
    /// Phase III: deployment (flighting → roll-out).
    Deployment,
    /// Terminal: rolled out (or abandoned).
    Concluded,
}

/// Which of §4.2's tuning approaches the project uses. Hypothetical
/// projects skip Phase III entirely — there is nothing to deploy on
/// machines that do not exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Model from passive telemetry, flight as a safety check.
    Observational,
    /// Model from passive telemetry; output is a plan, not a deployment.
    Hypothetical,
    /// Deploy experiments to create the operating points.
    Experimental,
}

/// A tuning project's recorded state.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningProject {
    name: String,
    approach: Approach,
    phase: Phase,
    objective: String,
    constraints: Vec<String>,
    tunables: Vec<String>,
    conceptualization_validated: bool,
    model_summary: Option<String>,
    proposal: Option<String>,
    flights_passed: u32,
    log: Vec<String>,
}

impl TuningProject {
    /// Opens a project in Phase I.
    pub fn new(name: &str, approach: Approach, objective: &str) -> Self {
        TuningProject {
            name: name.to_string(),
            approach,
            phase: Phase::Conceptualization,
            objective: objective.to_string(),
            constraints: Vec::new(),
            tunables: Vec::new(),
            conceptualization_validated: false,
            model_summary: None,
            proposal: None,
            flights_passed: 0,
            log: Vec::new(),
        }
    }

    /// Project name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The chosen tuning approach.
    pub fn approach(&self) -> Approach {
        self.approach
    }

    /// The objective agreed in Phase I.
    pub fn objective(&self) -> &str {
        &self.objective
    }

    /// Project event log (for the write-up).
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Phase I: records a practical constraint (e.g. "task latency must
    /// not regress").
    ///
    /// # Errors
    /// Only allowed during Phase I.
    pub fn add_constraint(&mut self, constraint: &str) -> Result<(), KeaError> {
        self.require(Phase::Conceptualization, "add constraints")?;
        self.constraints.push(constraint.to_string());
        self.log.push(format!("constraint: {constraint}"));
        Ok(())
    }

    /// Phase I: records a controllable configuration.
    ///
    /// # Errors
    /// Only allowed during Phase I.
    pub fn add_tunable(&mut self, tunable: &str) -> Result<(), KeaError> {
        self.require(Phase::Conceptualization, "add tunables")?;
        self.tunables.push(tunable.to_string());
        self.log.push(format!("tunable: {tunable}"));
        Ok(())
    }

    /// Phase I → Phase II gate: the conceptualization must be validated
    /// on data (Figures 5–6 style checks) and at least one tunable and
    /// one constraint recorded.
    ///
    /// # Errors
    /// Rejects un-validated conceptualizations or empty scopes.
    pub fn complete_conceptualization(&mut self, validated: bool) -> Result<(), KeaError> {
        self.require(Phase::Conceptualization, "complete Phase I")?;
        if !validated {
            return Err(KeaError::Design(
                "conceptualization checks failed; do not proceed to modeling".to_string(),
            ));
        }
        if self.tunables.is_empty() || self.constraints.is_empty() {
            return Err(KeaError::Design(
                "Phase I must produce tunables and constraints".to_string(),
            ));
        }
        self.conceptualization_validated = true;
        self.phase = Phase::Modeling;
        self.log.push("phase I complete".to_string());
        Ok(())
    }

    /// Phase II: records the calibrated models and the optimizer's
    /// proposal, moving to Phase III (or concluding, for hypothetical
    /// projects whose output *is* the proposal).
    ///
    /// # Errors
    /// Only allowed during Phase II.
    pub fn record_proposal(&mut self, models: &str, proposal: &str) -> Result<(), KeaError> {
        self.require(Phase::Modeling, "record a proposal")?;
        self.model_summary = Some(models.to_string());
        self.proposal = Some(proposal.to_string());
        self.log.push(format!("proposal: {proposal}"));
        self.phase = match self.approach {
            Approach::Hypothetical => Phase::Concluded,
            _ => Phase::Deployment,
        };
        Ok(())
    }

    /// Phase III: records one flighting round and its verdict.
    ///
    /// # Errors
    /// Only allowed during Phase III; a failed flight sends the project
    /// back to Phase II ("iteratively, DS fine-tunes the models").
    pub fn record_flight(&mut self, label: &str, passed: bool) -> Result<(), KeaError> {
        self.require(Phase::Deployment, "record a flight")?;
        self.log.push(format!(
            "flight '{label}': {}",
            if passed { "passed" } else { "failed" }
        ));
        if passed {
            self.flights_passed += 1;
        } else {
            self.phase = Phase::Modeling;
        }
        Ok(())
    }

    /// Phase III → conclusion: approve the roll-out. The paper's process
    /// required multiple flighting rounds before the first deployment
    /// (five in §5.2.2); the gate enforces a minimum.
    ///
    /// # Errors
    /// Needs Phase III and at least `min_flights` passed flights.
    pub fn approve_rollout(&mut self, min_flights: u32) -> Result<(), KeaError> {
        self.require(Phase::Deployment, "approve the roll-out")?;
        if self.flights_passed < min_flights {
            return Err(KeaError::GuardrailViolated(format!(
                "only {}/{} flighting rounds passed",
                self.flights_passed, min_flights
            )));
        }
        self.phase = Phase::Concluded;
        self.log.push("rolled out".to_string());
        Ok(())
    }

    fn require(&self, phase: Phase, action: &str) -> Result<(), KeaError> {
        if self.phase == phase {
            Ok(())
        } else {
            Err(KeaError::Design(format!(
                "cannot {action} in {:?} (requires {phase:?})",
                self.phase
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase_one_done(approach: Approach) -> TuningProject {
        let mut p = TuningProject::new("yarn", approach, "maximize sellable capacity");
        p.add_constraint("cluster-average task latency must not regress")
            .unwrap();
        p.add_tunable("max_num_running_containers per SC-SKU").unwrap();
        p.complete_conceptualization(true).unwrap();
        p
    }

    #[test]
    fn happy_path_observational() {
        let mut p = phase_one_done(Approach::Observational);
        assert_eq!(p.phase(), Phase::Modeling);
        p.record_proposal("huber g/h/f per group", "±1 container per SKU")
            .unwrap();
        assert_eq!(p.phase(), Phase::Deployment);
        for i in 0..5 {
            p.record_flight(&format!("pilot {i}"), true).unwrap();
        }
        p.approve_rollout(5).unwrap();
        assert_eq!(p.phase(), Phase::Concluded);
        assert!(p.log().iter().any(|l| l.contains("rolled out")));
    }

    #[test]
    fn hypothetical_projects_skip_deployment() {
        let mut p = phase_one_done(Approach::Hypothetical);
        p.record_proposal("p/q usage models", "128 cores, 1.28TB SSD, 576GB RAM")
            .unwrap();
        assert_eq!(p.phase(), Phase::Concluded);
        // No flights possible.
        assert!(p.record_flight("x", true).is_err());
    }

    #[test]
    fn phase_gates_are_enforced() {
        let mut p = TuningProject::new("q", Approach::Observational, "obj");
        // Cannot model or deploy from Phase I.
        assert!(p.record_proposal("m", "p").is_err());
        assert!(p.record_flight("f", true).is_err());
        assert!(p.approve_rollout(1).is_err());
        // Cannot finish Phase I without scope.
        assert!(p.complete_conceptualization(true).is_err());
        p.add_constraint("c").unwrap();
        p.add_tunable("t").unwrap();
        // Failed validation blocks progression.
        assert!(p.complete_conceptualization(false).is_err());
        assert_eq!(p.phase(), Phase::Conceptualization);
        p.complete_conceptualization(true).unwrap();
        // Phase I actions now rejected.
        assert!(p.add_constraint("late").is_err());
    }

    #[test]
    fn failed_flights_send_the_project_back_to_modeling() {
        let mut p = phase_one_done(Approach::Experimental);
        p.record_proposal("capping models", "cap at 20%").unwrap();
        p.record_flight("group C pilot", false).unwrap();
        assert_eq!(p.phase(), Phase::Modeling);
        // Re-propose and fly again.
        p.record_proposal("capping models v2", "cap at 15%").unwrap();
        p.record_flight("group C pilot v2", true).unwrap();
        assert!(p.approve_rollout(2).is_err(), "needs two passed flights");
        p.record_flight("group D pilot", true).unwrap();
        p.approve_rollout(2).unwrap();
        assert_eq!(p.phase(), Phase::Concluded);
    }
}
