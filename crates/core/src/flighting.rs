//! The Flighting Tool and Deployment Module (§4.1, §5.2.2).
//!
//! Flighting "facilitates the deployment of configuration changes to any
//! machine in the production cluster as a safety check before performing
//! the full cluster deployment". In the reproduction, a flight is a
//! time-windowed [`kea_sim::Flight`] override injected into the
//! simulation's [`kea_sim::ConfigPlan`]; measurement happens on the
//! resulting telemetry. The Deployment Module evaluates a full roll-out
//! with before/after treatment effects and enforces guardrails (latency
//! must not regress significantly) before declaring success.

use crate::error::KeaError;
use crate::experiment::machine_hour_samples;
use kea_sim::{ConfigPatch, Flight};
use kea_stats::{treatment_effect, TreatmentEffect};
use kea_telemetry::{MachineId, Metric, TelemetryStore};
use std::collections::BTreeSet;

/// Builder for flights, mirroring the production tool's "machine names +
/// start/end time + build" interface.
#[derive(Debug, Clone)]
pub struct FlightingTool;

impl FlightingTool {
    /// Creates a flight deploying `patch` to `machines` during
    /// `[start_hour, end_hour)`.
    ///
    /// # Errors
    /// The window must be non-empty, the machine set non-empty, and the
    /// patch must change something.
    pub fn flight(
        label: &str,
        machines: BTreeSet<MachineId>,
        start_hour: u64,
        end_hour: u64,
        patch: ConfigPatch,
    ) -> Result<Flight, KeaError> {
        if start_hour >= end_hour {
            return Err(KeaError::Design(format!(
                "flight '{label}': empty window [{start_hour}, {end_hour})"
            )));
        }
        if machines.is_empty() {
            return Err(KeaError::Design(format!(
                "flight '{label}': no target machines"
            )));
        }
        if patch.is_empty() {
            return Err(KeaError::Design(format!(
                "flight '{label}': patch changes nothing"
            )));
        }
        Ok(Flight {
            label: label.to_string(),
            machines,
            start_hour,
            end_hour,
            patch,
        })
    }

    /// Measures the effect of a flight on `metric` by comparing the
    /// flight window against a pre-flight window of equal machines
    /// (before/after on the *same* machines, the first-pilot pattern of
    /// §5.2.2).
    ///
    /// # Errors
    /// Both windows must contain observations with variance.
    pub fn before_after(
        store: &TelemetryStore,
        flight: &Flight,
        before_start: u64,
        metric: Metric,
    ) -> Result<TreatmentEffect, KeaError> {
        if before_start >= flight.start_hour {
            return Err(KeaError::Design(
                "before-window must precede the flight".to_string(),
            ));
        }
        let before = machine_hour_samples(
            store,
            &flight.machines,
            before_start,
            flight.start_hour,
            metric,
        );
        let during = machine_hour_samples(
            store,
            &flight.machines,
            flight.start_hour,
            flight.end_hour,
            metric,
        );
        if before.is_empty() || during.is_empty() {
            return Err(KeaError::NoObservations {
                what: format!("flight '{}' windows for {metric}", flight.label),
            });
        }
        Ok(treatment_effect(&before, &during)?)
    }
}

/// A guardrail on a deployment: a metric whose regression beyond
/// `max_regression` (relative, signed in the harmful direction) at
/// significance `alpha` blocks the roll-out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Guardrail {
    /// Guarded metric.
    pub metric: Metric,
    /// Whether larger values of the metric are worse (true for latency).
    pub higher_is_worse: bool,
    /// Maximum tolerated relative regression (e.g. 0.02 = 2%).
    pub max_regression: f64,
    /// Significance level for calling a change real.
    pub alpha: f64,
}

/// Outcome of evaluating a full-cluster roll-out.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// Effects per evaluated metric, in input order.
    pub effects: Vec<(Metric, TreatmentEffect)>,
    /// Guardrail verdicts: `(guardrail, passed)`.
    pub guardrails: Vec<(Guardrail, bool)>,
    /// True when every guardrail passed.
    pub approved: bool,
}

/// Evaluates a roll-out: compares `[after_start, after_end)` against
/// `[before_start, before_end)` over the whole fleet for each metric, and
/// checks guardrails.
///
/// # Errors
/// Every metric needs observations in both windows.
pub fn evaluate_deployment(
    store: &TelemetryStore,
    before: (u64, u64),
    after: (u64, u64),
    metrics: &[Metric],
    guardrails: &[Guardrail],
) -> Result<DeploymentReport, KeaError> {
    // Whole-fleet comparison: read the hour-indexed windows directly
    // instead of probing a machine bitmap that would admit every row.
    let fleet_samples = |start: u64, end: u64, metric: Metric| -> Vec<f64> {
        store
            .by_hours(start, end)
            .map(|r| metric.value(&r.metrics))
            .collect()
    };
    let mut effects = Vec::with_capacity(metrics.len());
    for &metric in metrics {
        let b = fleet_samples(before.0, before.1, metric);
        let a = fleet_samples(after.0, after.1, metric);
        if a.is_empty() || b.is_empty() {
            return Err(KeaError::NoObservations {
                what: format!("deployment windows for {metric}"),
            });
        }
        effects.push((metric, treatment_effect(&b, &a)?));
    }
    let mut verdicts = Vec::with_capacity(guardrails.len());
    let mut approved = true;
    for &rail in guardrails {
        let effect = match effects.iter().find(|(m, _)| *m == rail.metric) {
            Some((_, e)) => e.clone(),
            None => {
                let b = fleet_samples(before.0, before.1, rail.metric);
                let a = fleet_samples(after.0, after.1, rail.metric);
                treatment_effect(&b, &a)?
            }
        };
        let regression = if rail.higher_is_worse {
            effect.relative_effect
        } else {
            -effect.relative_effect
        };
        // A guardrail trips only when the regression is both material and
        // statistically real.
        let passed = !(regression > rail.max_regression && effect.significant_at(rail.alpha));
        if !passed {
            approved = false;
        }
        verdicts.push((rail, passed));
    }
    Ok(DeploymentReport {
        effects,
        guardrails: verdicts,
        approved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kea_telemetry::{GroupKey, MachineHourRecord, MetricValues, ScId, SkuId};

    fn machines(n: u32) -> BTreeSet<MachineId> {
        (0..n).map(MachineId).collect()
    }

    fn patch() -> ConfigPatch {
        ConfigPatch {
            max_running_containers: Some(20),
            ..Default::default()
        }
    }

    /// Store where throughput jumps by `gain` and latency by `lat_change`
    /// from hour 24 on.
    fn step_store(gain: f64, lat_change: f64) -> TelemetryStore {
        let mut s = TelemetryStore::new();
        for m in 0..30u32 {
            for h in 0..48u64 {
                let bump = if h >= 24 { 1.0 } else { 0.0 };
                s.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: GroupKey::new(SkuId(0), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        total_data_read_gb: 100.0 + (m % 5) as f64 + (h % 3) as f64 + bump * gain,
                        avg_task_latency_s: 300.0
                            + (m % 7) as f64
                            + (h % 4) as f64
                            + bump * lat_change,
                        ..Default::default()
                    },
                });
            }
        }
        s
    }

    #[test]
    fn flight_builder_validates() {
        assert!(FlightingTool::flight("ok", machines(3), 0, 10, patch()).is_ok());
        assert!(FlightingTool::flight("w", machines(3), 10, 10, patch()).is_err());
        assert!(FlightingTool::flight("m", BTreeSet::new(), 0, 10, patch()).is_err());
        assert!(
            FlightingTool::flight("p", machines(3), 0, 10, ConfigPatch::default()).is_err()
        );
    }

    #[test]
    fn before_after_measures_step() {
        let store = step_store(9.0, 0.0);
        let flight = FlightingTool::flight("pilot", machines(30), 24, 48, patch()).unwrap();
        let eff =
            FlightingTool::before_after(&store, &flight, 0, Metric::TotalDataRead).unwrap();
        assert!((eff.percent_change() - 8.8).abs() < 0.5);
        assert!(eff.significant_at(0.001));
        // Before-window must precede the flight.
        assert!(FlightingTool::before_after(&store, &flight, 30, Metric::TotalDataRead).is_err());
    }

    #[test]
    fn deployment_approves_good_rollout() {
        // +10% throughput, latency flat — the §5.2.2 success case.
        let store = step_store(10.0, 0.0);
        let rails = [Guardrail {
            metric: Metric::AverageTaskLatency,
            higher_is_worse: true,
            max_regression: 0.02,
            alpha: 0.05,
        }];
        let report = evaluate_deployment(
            &store,
            (0, 24),
            (24, 48),
            &[Metric::TotalDataRead, Metric::AverageTaskLatency],
            &rails,
        )
        .unwrap();
        assert!(report.approved);
        assert!(report.effects[0].1.percent_change() > 8.0);
        assert!(report.guardrails[0].1);
    }

    #[test]
    fn deployment_blocks_latency_regression() {
        // Throughput up but latency +10%: guardrail must trip.
        let store = step_store(10.0, 30.0);
        let rails = [Guardrail {
            metric: Metric::AverageTaskLatency,
            higher_is_worse: true,
            max_regression: 0.02,
            alpha: 0.05,
        }];
        let report = evaluate_deployment(
            &store,
            (0, 24),
            (24, 48),
            &[Metric::TotalDataRead],
            &rails,
        )
        .unwrap();
        assert!(!report.approved);
        assert!(!report.guardrails[0].1);
    }

    #[test]
    fn deployment_ignores_insignificant_noise() {
        // Tiny latency wiggle below the threshold passes.
        let store = step_store(10.0, 0.5);
        let rails = [Guardrail {
            metric: Metric::AverageTaskLatency,
            higher_is_worse: true,
            max_regression: 0.02,
            alpha: 0.05,
        }];
        let report =
            evaluate_deployment(&store, (0, 24), (24, 48), &[], &rails).unwrap();
        assert!(report.approved);
    }

    #[test]
    fn deployment_empty_window_errors() {
        let store = step_store(1.0, 0.0);
        assert!(matches!(
            evaluate_deployment(&store, (100, 110), (110, 120), &[Metric::TotalDataRead], &[]),
            Err(KeaError::NoObservations { .. })
        ));
    }
}
