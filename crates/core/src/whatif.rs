//! The What-if Engine (§5.1).
//!
//! For every machine group `k` it calibrates the paper's three models from
//! observational data alone:
//!
//! * `x_k = g_k(m_k)` — running containers → CPU utilization (Eq. 1–2)
//! * `l_k = h_k(x_k)` — CPU utilization → tasks finished per hour (Eq. 3–4)
//! * `w_k = f_k(x_k)` — CPU utilization → mean task latency (Eq. 5–6)
//!
//! Training rows are daily per-machine aggregates (§5.2.1, Figure 9), and
//! the default estimator is the Huber regressor — "more robust to outliers
//! compared to the Least Squares Regression". The natural variance of
//! cluster operation supplies the spread of operating points that makes
//! this possible without experiments (the crucial observation of §4.2).

// kea-lint: allow-file(index-in-library) — shared column lengths validated at load; ranks clamped into bounds before use

use crate::error::KeaError;
use crate::monitor::PerformanceMonitor;
use kea_ml::{r2_score, LinearModel1D};
use kea_telemetry::{GroupKey, Metric};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Training-row granularity.
///
/// The paper fits on *daily* per-machine aggregates (Figure 9's dots) —
/// with 45k machines there are plenty of rows. A scaled-down cluster
/// trades machines for hours: `Hourly` uses machine-hour observations
/// (the granularity of Figure 8's scatter view) and is the right choice
/// below a few hundred machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One row per machine per hour.
    Hourly,
    /// One row per machine per day.
    Daily,
}

/// One training observation for a group's models.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TrainRow {
    machine: u32,
    containers: f64,
    util: f64,
    tasks: f64,
    latency: f64,
}

/// Which estimator the engine fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitMethod {
    /// Huber robust regression (the paper's production choice).
    Huber,
    /// Ordinary least squares (baseline, used by the ablation bench).
    Ols,
}

/// The calibrated models of one machine group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupModels {
    /// The machine group.
    pub group: GroupKey,
    /// `g_k`: containers → CPU utilization (%).
    pub g_containers_to_util: LinearModel1D,
    /// `h_k`: CPU utilization (%) → tasks finished per hour.
    pub h_util_to_tasks: LinearModel1D,
    /// `f_k`: CPU utilization (%) → mean task latency (s).
    pub f_util_to_latency: LinearModel1D,
    /// Number of distinct machines observed.
    pub n_machines: usize,
    /// Median observed running containers (the paper's `m'_k`).
    pub current_containers: f64,
    /// Median observed CPU utilization (the large dot of Figure 9).
    pub current_util: f64,
    /// Training R² of each model `(g, h, f)` for DX review.
    pub r2: (f64, f64, f64),
    /// Training rows used.
    pub n_rows: usize,
    /// Sorted daily-mean container observations, kept so the Optimizer
    /// can evaluate high-load operating points (the Figure 10 sensitivity
    /// run "focusing on a higher percentile of CPU utilization level").
    containers_sorted: Vec<f64>,
}

impl GroupModels {
    /// Predicted CPU utilization at `containers` running containers,
    /// clamped to the physical `[0, 100]` range.
    pub fn predict_util(&self, containers: f64) -> f64 {
        self.g_containers_to_util.predict(containers).clamp(0.0, 100.0)
    }

    /// Predicted tasks/hour at a utilization level (non-negative).
    pub fn predict_tasks_per_hour(&self, util: f64) -> f64 {
        self.h_util_to_tasks.predict(util).max(0.0)
    }

    /// Predicted mean task latency at a utilization level (non-negative).
    pub fn predict_latency(&self, util: f64) -> f64 {
        self.f_util_to_latency.predict(util).max(0.0)
    }

    /// Percentile (0–100) of the observed daily-mean running containers —
    /// the operating point selector for high-load optimization runs.
    ///
    /// Out-of-range `p` (including NaN) is clamped to the nearest
    /// observed extreme rather than indexing past the sorted
    /// observations: `containers_percentile(150.0)` is the max,
    /// `containers_percentile(-3.0)` the min. A group with no
    /// observations reports `0.0` (it has never been seen running
    /// anything).
    pub fn containers_percentile(&self, p: f64) -> f64 {
        let s = &self.containers_sorted;
        if s.is_empty() {
            return 0.0;
        }
        if s.len() == 1 {
            return s[0];
        }
        // NaN-safe clamp: f64::clamp(NaN, ..) stays NaN, which would
        // propagate into the rank arithmetic below.
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        let rank = p / 100.0 * (s.len() - 1) as f64;
        let lo = rank.floor() as usize; // kea-lint: allow(truncating-as-cast) — rank ∈ [0, len-1]: p clamped finite above
        let hi = rank.ceil() as usize; // kea-lint: allow(truncating-as-cast) — same bound as `lo`
        let frac = rank - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    }
}

/// The calibrated What-if Engine: one [`GroupModels`] per machine group.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfEngine {
    models: BTreeMap<GroupKey, GroupModels>,
    method: FitMethod,
}

impl WhatIfEngine {
    /// Calibrates models for every group present in the monitor's window,
    /// on daily per-machine aggregates (the paper's granularity).
    ///
    /// Rows with no completed tasks (cold machines) are dropped: their
    /// latency is undefined. Groups with fewer than `min_rows` usable
    /// rows are skipped rather than fitted badly.
    ///
    /// # Errors
    /// Fails if *no* group could be fitted, or on estimator failure for a
    /// group that had enough data.
    pub fn fit(
        monitor: &PerformanceMonitor<'_>,
        method: FitMethod,
        min_rows: usize,
    ) -> Result<Self, KeaError> {
        Self::fit_at(monitor, method, Granularity::Daily, min_rows)
    }

    /// Calibrates at an explicit [`Granularity`]. See [`WhatIfEngine::fit`].
    ///
    /// # Errors
    /// Same as [`WhatIfEngine::fit`].
    pub fn fit_at(
        monitor: &PerformanceMonitor<'_>,
        method: FitMethod,
        granularity: Granularity,
        min_rows: usize,
    ) -> Result<Self, KeaError> {
        // Both sources arrive group-contiguous and group-sorted (daily
        // aggregates are (group, machine, day)-sorted; the store serves
        // each group as one run+delta merged stream), so training rows
        // accumulate into per-group runs with no map lookup per row.
        let mut groups: Vec<(GroupKey, Vec<TrainRow>)> = Vec::new();
        let mut push_row = |group: GroupKey, row: TrainRow| {
            match groups.last_mut() {
                Some((g, rows)) if *g == group => rows.push(row),
                _ => groups.push((group, vec![row])),
            }
        };
        match granularity {
            Granularity::Daily => {
                for agg in monitor.daily_aggregates() {
                    if agg.mean(Metric::NumberOfTasks) > 0.0 {
                        push_row(agg.group, TrainRow {
                            machine: agg.machine.0,
                            containers: agg.mean(Metric::AverageRunningContainers),
                            util: agg.mean(Metric::CpuUtilization),
                            tasks: agg.mean(Metric::NumberOfTasks),
                            latency: agg.mean(Metric::AverageTaskLatency),
                        });
                    }
                }
            }
            Granularity::Hourly => {
                for group in monitor.store().groups() {
                    for rec in monitor.store().by_group(group) {
                        if rec.metrics.tasks_finished > 0.0 {
                            push_row(group, TrainRow {
                                machine: rec.machine.0,
                                containers: rec.metrics.avg_running_containers,
                                util: rec.metrics.cpu_utilization,
                                tasks: rec.metrics.tasks_finished,
                                latency: rec.metrics.avg_task_latency_s,
                            });
                        }
                    }
                }
            }
        }
        groups.retain(|(_, rows)| rows.len() >= min_rows);
        if groups.is_empty() {
            return Err(KeaError::NoObservations {
                what: "no group had enough training rows to fit".to_string(),
            });
        }

        // Groups are independent, so fit them in parallel on scoped
        // threads, one worker per available core.
        let n_workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let results = Self::fit_groups(&groups, method, n_workers);

        let mut models = BTreeMap::new();
        for ((group, _), result) in groups.iter().zip(results) {
            models.insert(*group, result?);
        }
        Ok(WhatIfEngine { models, method })
    }

    /// Fits every group, work-stealing across at most `n_workers` scoped
    /// threads: each worker pulls the next unfitted group off a shared
    /// atomic cursor, so one giant group (row count is wildly skewed in
    /// real fleets) pins exactly one worker while the others drain the
    /// remaining groups — a contiguous chunk split would serialize every
    /// group sharing the giant's chunk. Results land in per-group slots,
    /// so the output is identical to a serial loop for any worker count
    /// and any steal interleaving.
    fn fit_groups(
        groups: &[(GroupKey, Vec<TrainRow>)],
        method: FitMethod,
        n_workers: usize,
    ) -> Vec<Result<GroupModels, KeaError>> {
        let n_workers = n_workers.clamp(1, groups.len().max(1));
        if n_workers <= 1 {
            return groups
                .iter()
                .map(|(group, rows)| Self::fit_group(*group, rows, method))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<Result<GroupModels, KeaError>>> = Vec::new();
        results.resize_with(groups.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut claimed: Vec<(usize, Result<GroupModels, KeaError>)> = Vec::new();
                        loop {
                            let gi = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some((group, rows)) = groups.get(gi) else {
                                break;
                            };
                            claimed.push((gi, Self::fit_group(*group, rows, method)));
                        }
                        claimed
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(claimed) => {
                        for (gi, result) in claimed {
                            results[gi] = Some(result);
                        }
                    }
                    // A panicking fit (estimator assertion) must surface,
                    // not silently leave slots unfilled.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        results
            .into_iter()
            .map(|r| {
                // Every claimed slot is written exactly once; an unfilled
                // slot degrades to a per-group error.
                r.unwrap_or_else(|| {
                    Err(KeaError::Design(
                        "fit worker left a group slot unfilled".to_string(),
                    ))
                })
            })
            .collect()
    }

    fn fit_group(
        group: GroupKey,
        rows: &[TrainRow],
        method: FitMethod,
    ) -> Result<GroupModels, KeaError> {
        let containers: Vec<f64> = rows.iter().map(|r| r.containers).collect();
        let util: Vec<f64> = rows.iter().map(|r| r.util).collect();
        let tasks: Vec<f64> = rows.iter().map(|r| r.tasks).collect();
        let latency: Vec<f64> = rows.iter().map(|r| r.latency).collect();

        let fit = |x: &[f64], y: &[f64]| -> Result<LinearModel1D, KeaError> {
            Ok(match method {
                FitMethod::Huber => LinearModel1D::fit_huber(x, y)?,
                FitMethod::Ols => LinearModel1D::fit_ols(x, y)?,
            })
        };
        let g = fit(&containers, &util)?;
        let h = fit(&util, &tasks)?;
        let f = fit(&util, &latency)?;

        let r2_of = |m: &LinearModel1D, x: &[f64], y: &[f64]| {
            let pred: Vec<f64> = x.iter().map(|&v| m.predict(v)).collect();
            r2_score(y, &pred).unwrap_or(f64::NAN)
        };
        let machines: std::collections::BTreeSet<u32> =
            rows.iter().map(|r| r.machine).collect();
        // Sort each observation column once; the median (and, for
        // containers, every later percentile lookup) reads the sorted
        // copy instead of re-sorting per call.
        let mut containers_sorted = containers.clone();
        containers_sorted.sort_by(f64::total_cmp);
        let mut util_sorted = util.clone();
        util_sorted.sort_by(f64::total_cmp);
        Ok(GroupModels {
            group,
            n_machines: machines.len(),
            current_containers: median_of_sorted(&containers_sorted),
            current_util: median_of_sorted(&util_sorted),
            r2: (
                r2_of(&g, &containers, &util),
                r2_of(&h, &util, &tasks),
                r2_of(&f, &util, &latency),
            ),
            g_containers_to_util: g,
            h_util_to_tasks: h,
            f_util_to_latency: f,
            n_rows: rows.len(),
            containers_sorted,
        })
    }

    /// The estimator used at fit time.
    pub fn method(&self) -> FitMethod {
        self.method
    }

    /// Calibrated groups, sorted by key.
    pub fn groups(&self) -> impl Iterator<Item = &GroupModels> {
        self.models.values()
    }

    /// Number of calibrated groups.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when nothing was calibrated (cannot occur for a successfully
    /// constructed engine; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Models of one group.
    pub fn group(&self, key: GroupKey) -> Option<&GroupModels> {
        self.models.get(&key)
    }

    /// End-to-end what-if: predicted `(utilization %, tasks/hour, latency
    /// s)` for a group running `containers` containers — the composition
    /// `f_k(g_k(m))`, `h_k(g_k(m))` used by the Optimizer.
    ///
    /// # Errors
    /// The group must be calibrated.
    pub fn predict(&self, key: GroupKey, containers: f64) -> Result<(f64, f64, f64), KeaError> {
        let m = self.models.get(&key).ok_or_else(|| KeaError::NoObservations {
            what: format!("no calibrated models for {key:?}"),
        })?;
        let util = m.predict_util(containers);
        Ok((
            util,
            m.predict_tasks_per_hour(util),
            m.predict_latency(util),
        ))
    }
}

/// Median of an already-sorted slice (callers sort each observation
/// column exactly once at fit time).
fn median_of_sorted(s: &[f64]) -> f64 {
    debug_assert!(s.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let n = s.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kea_telemetry::{MachineHourRecord, MachineId, MetricValues, ScId, SkuId, TelemetryStore};

    /// Builds a synthetic store where ground truth is known exactly:
    /// util = 5 + 4·containers, tasks = 2·util, latency = 100 + 3·util.
    fn synthetic_store(n_machines: u32, days: u64) -> TelemetryStore {
        let mut s = TelemetryStore::new();
        for m in 0..n_machines {
            for h in 0..days * 24 {
                // Vary containers across machines and hours to give the
                // fit a spread of operating points.
                let containers = 4.0 + (m % 5) as f64 + ((h % 7) as f64) * 0.5;
                let util = 5.0 + 4.0 * containers;
                s.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: GroupKey::new(SkuId(0), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        avg_running_containers: containers,
                        cpu_utilization: util,
                        tasks_finished: 2.0 * util,
                        avg_task_latency_s: 100.0 + 3.0 * util,
                        ..Default::default()
                    },
                });
            }
        }
        s
    }

    #[test]
    fn recovers_known_relationships() {
        let store = synthetic_store(10, 3);
        let mon = PerformanceMonitor::new(&store);
        let engine = WhatIfEngine::fit(&mon, FitMethod::Huber, 5).unwrap();
        assert_eq!(engine.len(), 1);
        let g = engine.group(GroupKey::new(SkuId(0), ScId(1))).unwrap();
        assert!((g.g_containers_to_util.slope() - 4.0).abs() < 0.05);
        assert!((g.g_containers_to_util.intercept() - 5.0).abs() < 0.5);
        assert!((g.h_util_to_tasks.slope() - 2.0).abs() < 0.05);
        assert!((g.f_util_to_latency.slope() - 3.0).abs() < 0.05);
        assert!(g.r2.0 > 0.99 && g.r2.1 > 0.99 && g.r2.2 > 0.99);
        assert_eq!(g.n_machines, 10);
    }

    #[test]
    fn predict_composes_models() {
        let store = synthetic_store(10, 3);
        let mon = PerformanceMonitor::new(&store);
        let engine = WhatIfEngine::fit(&mon, FitMethod::Huber, 5).unwrap();
        let key = GroupKey::new(SkuId(0), ScId(1));
        let (util, tasks, latency) = engine.predict(key, 10.0).unwrap();
        assert!((util - 45.0).abs() < 1.0);
        assert!((tasks - 90.0).abs() < 2.0);
        assert!((latency - 235.0).abs() < 3.0);
        // Unknown group errors.
        assert!(engine.predict(GroupKey::new(SkuId(9), ScId(1)), 10.0).is_err());
    }

    #[test]
    fn predictions_respect_physical_ranges() {
        let store = synthetic_store(10, 3);
        let mon = PerformanceMonitor::new(&store);
        let engine = WhatIfEngine::fit(&mon, FitMethod::Huber, 5).unwrap();
        let g = engine.group(GroupKey::new(SkuId(0), ScId(1))).unwrap();
        assert_eq!(g.predict_util(1000.0), 100.0, "clamped at 100%");
        assert_eq!(g.predict_util(-50.0), 0.0, "clamped at 0%");
        assert!(g.predict_tasks_per_hour(-100.0) >= 0.0);
        assert!(g.predict_latency(-100.0) >= 0.0);
    }

    #[test]
    fn cold_rows_are_dropped() {
        let mut store = synthetic_store(6, 2);
        // Add machines that never ran a task; they must not poison fits.
        for m in 100..110u32 {
            for h in 0..48u64 {
                store.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: GroupKey::new(SkuId(0), ScId(1)),
                    hour: h,
                    metrics: MetricValues::default(),
                });
            }
        }
        let mon = PerformanceMonitor::new(&store);
        let engine = WhatIfEngine::fit(&mon, FitMethod::Huber, 5).unwrap();
        let g = engine.group(GroupKey::new(SkuId(0), ScId(1))).unwrap();
        assert_eq!(g.n_machines, 6, "idle machines excluded");
        assert!((g.g_containers_to_util.slope() - 4.0).abs() < 0.05);
    }

    #[test]
    fn sparse_groups_are_skipped() {
        let store = synthetic_store(2, 1); // 2 machines × 1 day = 2 rows
        let mon = PerformanceMonitor::new(&store);
        // min_rows = 5 > 2 available ⇒ no group fits ⇒ error.
        assert!(matches!(
            WhatIfEngine::fit(&mon, FitMethod::Huber, 5),
            Err(KeaError::NoObservations { .. })
        ));
        // With a lower bar it fits.
        assert!(WhatIfEngine::fit(&mon, FitMethod::Huber, 2).is_ok());
    }

    #[test]
    fn out_of_range_percentiles_clamp_to_observed_extremes() {
        let store = synthetic_store(10, 3);
        let mon = PerformanceMonitor::new(&store);
        let engine = WhatIfEngine::fit(&mon, FitMethod::Huber, 5).unwrap();
        let g = engine.group(GroupKey::new(SkuId(0), ScId(1))).unwrap();
        let min = g.containers_percentile(0.0);
        let max = g.containers_percentile(100.0);
        assert!(min < max, "synthetic store spans several operating points");
        // Historical release-mode out-of-bounds: p > 100 indexed past the
        // sorted observations. Now it clamps.
        assert_eq!(g.containers_percentile(150.0), max);
        assert_eq!(g.containers_percentile(-3.0), min);
        assert_eq!(g.containers_percentile(f64::INFINITY), max);
        assert_eq!(g.containers_percentile(f64::NAN), min);
        // In-range values still interpolate between the extremes.
        let mid = g.containers_percentile(50.0);
        assert!((min..=max).contains(&mid));
    }

    #[test]
    fn parallel_fit_matches_serial_semantics_across_groups() {
        // Many groups with distinct known slopes: the scoped-thread fit
        // must calibrate each group exactly as a serial loop would, for
        // any worker count (including more workers than cores, and more
        // workers than groups).
        let groups: Vec<(GroupKey, Vec<TrainRow>)> = (0..16u16)
            .map(|g| {
                let slope = 2.0 + g as f64 * 0.5;
                let rows: Vec<TrainRow> = (0..48u32)
                    .map(|i| {
                        let containers = 4.0 + (i % 5) as f64 + ((i % 7) as f64) * 0.5;
                        let util = 5.0 + slope * containers;
                        TrainRow {
                            machine: i % 4,
                            containers,
                            util,
                            tasks: 2.0 * util,
                            latency: 100.0 + 3.0 * util,
                        }
                    })
                    .collect();
                (GroupKey::new(SkuId(g), ScId(1)), rows)
            })
            .collect();

        let serial = WhatIfEngine::fit_groups(&groups, FitMethod::Huber, 1);
        for workers in [2, 4, 16, 64] {
            let parallel = WhatIfEngine::fit_groups(&groups, FitMethod::Huber, workers);
            assert_eq!(serial.len(), parallel.len());
            for (g, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(
                    s.as_ref().unwrap(),
                    p.as_ref().unwrap(),
                    "group {g} diverged at {workers} workers"
                );
            }
        }
        // And the slopes are the known ground truth.
        for (g, r) in serial.iter().enumerate() {
            let models = r.as_ref().unwrap();
            let expected = 2.0 + g as f64 * 0.5;
            assert!(
                (models.g_containers_to_util.slope() - expected).abs() < 0.05,
                "group {g}: slope {} vs expected {expected}",
                models.g_containers_to_util.slope()
            );
        }
    }

    #[test]
    fn work_stealing_fit_handles_pathological_group_skew() {
        // One giant group (10k rows) among many tiny ones (8 rows each):
        // a contiguous chunk split would serialize the giant's whole
        // chunk behind it. The work-stealing fit must keep output order
        // (and every fitted model) identical to the serial loop for any
        // worker count, with the giant claimed by exactly one worker.
        let make_rows = |slope: f64, n: usize| -> Vec<TrainRow> {
            (0..n as u32)
                .map(|i| {
                    let containers = 4.0 + (i % 5) as f64 + ((i % 7) as f64) * 0.5;
                    let util = 5.0 + slope * containers;
                    TrainRow {
                        machine: i % 16,
                        containers,
                        util,
                        tasks: 2.0 * util,
                        latency: 100.0 + 3.0 * util,
                    }
                })
                .collect()
        };
        let mut groups: Vec<(GroupKey, Vec<TrainRow>)> = Vec::new();
        groups.push((GroupKey::new(SkuId(0), ScId(1)), make_rows(2.0, 10_000)));
        for g in 1..12u16 {
            groups.push((GroupKey::new(SkuId(g), ScId(1)), make_rows(2.0 + g as f64 * 0.5, 8)));
        }

        let serial = WhatIfEngine::fit_groups(&groups, FitMethod::Huber, 1);
        for workers in [2, 3, 8, 32] {
            let parallel = WhatIfEngine::fit_groups(&groups, FitMethod::Huber, workers);
            assert_eq!(serial.len(), parallel.len());
            for (g, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(
                    s.as_ref().unwrap(),
                    p.as_ref().unwrap(),
                    "group {g} diverged at {workers} workers under skew"
                );
            }
        }
    }

    #[test]
    fn ols_and_huber_agree_on_clean_data() {
        let store = synthetic_store(10, 3);
        let mon = PerformanceMonitor::new(&store);
        let huber = WhatIfEngine::fit(&mon, FitMethod::Huber, 5).unwrap();
        let ols = WhatIfEngine::fit(&mon, FitMethod::Ols, 5).unwrap();
        let key = GroupKey::new(SkuId(0), ScId(1));
        let hg = huber.group(key).unwrap();
        let og = ols.group(key).unwrap();
        assert!(
            (hg.g_containers_to_util.slope() - og.g_containers_to_util.slope()).abs() < 0.01
        );
        assert_eq!(huber.method(), FitMethod::Huber);
        assert_eq!(ols.method(), FitMethod::Ols);
    }
}
