//! Extension application: queue-length tuning (§5.3's discussion, made
//! concrete).
//!
//! "In the analyzed system, low priority containers will be queued on
//! each machine when all machines in the cluster reach the maximum number
//! of running containers. We observe that the queuing length and latency
//! vary significantly for machines with different SKUs and SCs (see
//! Figure 12). As faster machines have faster de-queue rate, we can allow
//! more containers to be queued on them. Therefore, similar tuning
//! methodology can be used to learn the relationship between the tuned
//! parameters, i.e. the maximum queuing length, and the objective
//! performance metrics, such as variance of queuing latency, to achieve
//! better queuing distribution."
//!
//! The pipeline follows the observational-tuning template exactly:
//!
//! 1. **Observe** a saturated window (queues only exist under pressure).
//! 2. **Model** per group: p99 queueing wait as a function of queue
//!    length — the slope is the group's inverse de-queue rate.
//! 3. **Optimize**: pick per-group `max_queue_length` caps so every
//!    group's predicted p99 wait meets a common target (the cluster
//!    median) — long queues are only allowed where they drain fast.
//! 4. **Deploy & evaluate**: compare per-group p99 waits and their
//!    across-group spread before/after.

use crate::error::KeaError;
use crate::monitor::PerformanceMonitor;
use kea_ml::LinearModel1D;
use kea_sim::{run, ClusterSpec, ConfigPlan, SimConfig, WorkloadSpec};
use kea_telemetry::{GroupKey, Metric};
use std::collections::BTreeMap;

/// Parameters of the queue-tuning study.
#[derive(Debug, Clone)]
pub struct QueueTuningParams {
    /// Cluster under tuning.
    pub cluster: ClusterSpec,
    /// Demand pressure; must exceed ~1.0 so queues exist.
    pub target_occupancy: f64,
    /// Hours of observation (and of post-deployment evaluation).
    pub window_hours: u64,
    /// Warm-up hours excluded from analysis.
    pub warmup_hours: u64,
    /// RNG seed.
    pub seed: u64,
}

impl QueueTuningParams {
    /// Quick preset.
    pub fn quick(cluster: ClusterSpec, seed: u64) -> Self {
        QueueTuningParams {
            cluster,
            target_occupancy: 1.1,
            window_hours: 36,
            warmup_hours: 4,
            seed,
        }
    }
}

/// Calibrated queueing model of one group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupQueueModel {
    /// The machine group.
    pub group: GroupKey,
    /// p99 wait (ms) as a function of queued containers.
    pub wait_vs_queue: LinearModel1D,
    /// Mean observed queue length.
    pub mean_queue: f64,
    /// Mean observed p99 wait, ms.
    pub mean_wait_ms: f64,
    /// The suggested `max_queue_length` cap.
    pub suggested_cap: u32,
}

/// Per-group before/after p99 queueing wait.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueOutcomeRow {
    /// The machine group.
    pub group: GroupKey,
    /// Mean hourly p99 wait before, ms.
    pub before_wait_ms: f64,
    /// Mean hourly p99 wait after, ms.
    pub after_wait_ms: f64,
}

/// Outcome of the study.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueTuningOutcome {
    /// Calibrated models and suggested caps.
    pub models: Vec<GroupQueueModel>,
    /// The common wait target the caps were solved for, ms.
    pub target_wait_ms: f64,
    /// Before/after per-group waits.
    pub rows: Vec<QueueOutcomeRow>,
    /// Standard deviation of per-group mean waits before the change
    /// (the "variance of queuing latency" objective of §5.3).
    pub wait_spread_before: f64,
    /// The same spread after the change.
    pub wait_spread_after: f64,
    /// Cluster-wide mean task latency change, percent (guardrail-style
    /// sanity: capping queues must not hurt the tasks themselves).
    pub task_latency_change_pct: f64,
}

/// Runs the queue-tuning study.
///
/// # Errors
/// The observation window must actually contain queueing (raise
/// `target_occupancy` otherwise) in at least two groups.
pub fn run_queue_tuning(params: &QueueTuningParams) -> Result<QueueTuningOutcome, KeaError> {
    let cluster = &params.cluster;
    let workload = WorkloadSpec::default_for(cluster, params.target_occupancy);
    let baseline = ConfigPlan::baseline(&cluster.skus, kea_sim::SC1);
    let observe = run(&SimConfig {
        cluster: cluster.clone(),
        workload: workload.clone(),
        plan: baseline.clone(),
        duration_hours: params.window_hours,
        seed: params.seed,
        task_log_every: 0,
        adhoc_job_log_every: 0,
    });
    // ---- Model: p99 wait vs queue length, per group --------------------
    let mut models = Vec::new();
    for group in observe.telemetry.groups() {
        let mut queue = Vec::new();
        let mut wait = Vec::new();
        for rec in observe.telemetry.by_group(group) {
            if rec.hour >= params.warmup_hours && rec.metrics.queue_latency_p99_ms > 0.0 {
                queue.push(rec.metrics.queued_containers);
                wait.push(rec.metrics.queue_latency_p99_ms);
            }
        }
        if queue.len() < 12 {
            continue; // This group barely queues; no cap needed.
        }
        let model = LinearModel1D::fit_huber(&queue, &wait)?;
        if model.slope() <= 0.0 {
            continue; // Degenerate fit; leave the group uncapped.
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        models.push(GroupQueueModel {
            group,
            wait_vs_queue: model,
            mean_queue: mean(&queue),
            mean_wait_ms: mean(&wait),
            suggested_cap: 0, // solved below once the target is known
        });
    }
    if models.len() < 2 {
        return Err(KeaError::NoObservations {
            what: format!(
                "only {} groups show queueing; raise target_occupancy",
                models.len()
            ),
        });
    }

    // ---- Optimize: common wait target = median of observed waits ------
    let mut waits: Vec<f64> = models.iter().map(|m| m.mean_wait_ms).collect();
    waits.sort_by(f64::total_cmp);
    let target_wait_ms = waits[waits.len() / 2]; // kea-lint: allow(index-in-library) — waits has >= 2 entries (checked above); len/2 < len
    for m in &mut models {
        // Invert the wait model at the target: the queue length at which
        // this group's p99 wait reaches the target.
        let cap = m
            .wait_vs_queue
            .inverse(target_wait_ms)
            .unwrap_or(f64::MAX)
            .max(1.0);
        // kea-lint: allow(truncating-as-cast) — cap is clamped to [1, 10_000] above; round of a finite value fits u32
        m.suggested_cap = cap.min(10_000.0).round() as u32;
    }

    // ---- Deploy & evaluate --------------------------------------------
    let mut tuned = baseline;
    for m in &models {
        // Every modeled group's SKU came from this plan; a missing entry
        // degrades to leaving that SKU's cap untouched.
        if let Some(base) = tuned.base.get_mut(&m.group.sku) {
            base.max_queue_length = m.suggested_cap;
        }
    }
    let after = run(&SimConfig {
        cluster: cluster.clone(),
        workload,
        plan: tuned,
        duration_hours: params.window_hours,
        seed: params.seed.wrapping_add(1),
        task_log_every: 0,
        adhoc_job_log_every: 0,
    });

    let group_wait = |out: &kea_sim::SimOutput, group: GroupKey| -> f64 {
        let waits: Vec<f64> = out
            .telemetry
            .by_group(group)
            .filter(|r| r.hour >= params.warmup_hours && r.metrics.queue_latency_p99_ms > 0.0)
            .map(|r| r.metrics.queue_latency_p99_ms)
            .collect();
        if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<f64>() / waits.len() as f64
        }
    };
    let rows: Vec<QueueOutcomeRow> = models
        .iter()
        .map(|m| QueueOutcomeRow {
            group: m.group,
            before_wait_ms: group_wait(&observe, m.group),
            after_wait_ms: group_wait(&after, m.group),
        })
        .collect();
    let spread = |select: fn(&QueueOutcomeRow) -> f64, rows: &[QueueOutcomeRow]| -> f64 {
        let vals: Vec<f64> = rows.iter().map(select).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64).sqrt()
    };
    let latency = |out: &kea_sim::SimOutput| {
        PerformanceMonitor::new(&out.telemetry)
            .window_mean(
                Metric::AverageTaskLatency,
                params.warmup_hours,
                params.window_hours,
            )
            .unwrap_or(f64::NAN) // no telemetry → NaN change, not an abort
    };
    let before_lat = latency(&observe);
    let after_lat = latency(&after);

    Ok(QueueTuningOutcome {
        target_wait_ms,
        wait_spread_before: spread(|r| r.before_wait_ms, &rows),
        wait_spread_after: spread(|r| r.after_wait_ms, &rows),
        task_latency_change_pct: (after_lat / before_lat - 1.0) * 100.0,
        rows,
        models,
    })
}

/// Convenience: suggested caps keyed by group.
pub fn suggested_caps(outcome: &QueueTuningOutcome) -> BTreeMap<GroupKey, u32> {
    outcome
        .models
        .iter()
        .map(|m| (m.group, m.suggested_cap))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_tuning_evens_out_the_wait_distribution() {
        let params = QueueTuningParams::quick(ClusterSpec::tiny(), 808);
        let outcome = run_queue_tuning(&params).expect("queues exist at 1.1 occupancy");

        // Models: slower groups must get smaller caps (their queues drain
        // slower). Compare the oldest and newest modeled groups.
        assert!(outcome.models.len() >= 2, "{:#?}", outcome.models.len());
        let first = outcome.models.first().expect("two groups");
        let last = outcome.models.last().expect("two groups");
        assert!(
            first.suggested_cap <= last.suggested_cap,
            "older groups get tighter caps: {} vs {}",
            first.suggested_cap,
            last.suggested_cap
        );

        // Objective: the across-group spread of p99 waits shrinks.
        assert!(
            outcome.wait_spread_after < outcome.wait_spread_before,
            "spread {} → {}",
            outcome.wait_spread_before,
            outcome.wait_spread_after
        );

        // Sanity: task latency does not blow up (queue caps redirect
        // waiting work, they don't add work).
        assert!(
            outcome.task_latency_change_pct < 5.0,
            "task latency {:+.2}%",
            outcome.task_latency_change_pct
        );
    }

    #[test]
    fn refuses_unsaturated_clusters() {
        let mut params = QueueTuningParams::quick(ClusterSpec::tiny(), 809);
        params.target_occupancy = 0.5; // nothing queues down here
        assert!(matches!(
            run_queue_tuning(&params),
            Err(KeaError::NoObservations { .. })
        ));
    }
}
