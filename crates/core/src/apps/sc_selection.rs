//! Application 4: selecting software configurations via Experimental
//! Tuning (§7.1, Table 4, Table 3 row 4).
//!
//! SC1 keeps the local temp store on HDD; SC2 moves it to SSD. The paper
//! achieves the *ideal setting*: "selecting two rows (with approximately
//! 700 machines each) and choose every other machine in the same rack as
//! the control/experiment group", running "over five consecutive
//! workdays". Control runs SC1, treatment runs SC2; Table 4 compares
//! Total Data Read (+10.9%) and Average Task Execution Time (−5.2%) with
//! large t-values.

use crate::error::KeaError;
use crate::experiment::{analyze, ideal_setting, ExperimentResult};
use crate::flighting::FlightingTool;
use kea_sim::{run, ClusterSpec, ConfigPatch, ConfigPlan, RackId, SimConfig, WorkloadSpec};
use kea_telemetry::{Metric, SkuId};

/// Parameters of the SC1-vs-SC2 experiment.
#[derive(Debug, Clone)]
pub struct ScSelectionParams {
    /// Cluster to experiment on.
    pub cluster: ClusterSpec,
    /// SKU whose racks are used (rows are SKU-homogeneous).
    pub sku: SkuId,
    /// How many racks ("rows") to enroll (paper: 2).
    pub n_racks: usize,
    /// Experiment duration in hours (paper: 5 workdays = 120h).
    pub duration_hours: u64,
    /// Warm-up hours excluded from analysis.
    pub warmup_hours: u64,
    /// RNG seed.
    pub seed: u64,
}

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// The compared metric.
    pub metric: Metric,
    /// Mean under SC1 (control).
    pub sc1_mean: f64,
    /// Mean under SC2 (treatment).
    pub sc2_mean: f64,
    /// Percent change SC2 vs SC1.
    pub change_pct: f64,
    /// Welch t statistic.
    pub t_value: f64,
    /// Whether the change is significant at 1%.
    pub significant: bool,
}

/// Outcome of the experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ScSelectionOutcome {
    /// Machines in each group.
    pub machines_per_group: usize,
    /// Table 4 rows (Total Data Read, Average Task Execution Time).
    pub table4: Vec<Table4Row>,
    /// The recommended software configuration ("SC2" when it dominates).
    pub recommendation: &'static str,
}

/// Runs the SC selection experiment end to end.
///
/// # Errors
/// Needs `n_racks` racks homogeneous in the chosen SKU and a window
/// longer than the warm-up.
pub fn run_sc_selection(params: &ScSelectionParams) -> Result<ScSelectionOutcome, KeaError> {
    if params.warmup_hours >= params.duration_hours {
        return Err(KeaError::Design(
            "experiment must outlast the warm-up".to_string(),
        ));
    }
    // Find racks fully populated with the chosen SKU.
    let racks: Vec<RackId> = (0..params.cluster.n_racks())
        .map(RackId)
        .filter(|&r| {
            let members: Vec<_> = params.cluster.machines_of_rack(r).collect();
            !members.is_empty() && members.iter().all(|m| m.sku == params.sku)
        })
        .take(params.n_racks)
        .collect();
    if racks.len() < params.n_racks {
        return Err(KeaError::Design(format!(
            "only {} homogeneous racks of {:?} available, need {}",
            racks.len(),
            params.sku,
            params.n_racks
        )));
    }
    let split = ideal_setting(&params.cluster, &racks)?;

    // The whole cluster runs SC1; the treatment half of the enrolled
    // racks is flighted to SC2 for the full window.
    let mut plan = ConfigPlan::baseline(&params.cluster.skus, kea_sim::SC1);
    plan.add_flight(FlightingTool::flight(
        "sc2-trial",
        split.treatment.clone(),
        0,
        params.duration_hours,
        ConfigPatch {
            sc: Some(kea_sim::SC2),
            ..Default::default()
        },
    )?);
    let out = run(&SimConfig {
        cluster: params.cluster.clone(),
        workload: WorkloadSpec::default_for(&params.cluster, 0.75),
        plan,
        duration_hours: params.duration_hours,
        seed: params.seed,
        task_log_every: 0,
        adhoc_job_log_every: 0,
    });

    let window = (params.warmup_hours, params.duration_hours);
    let to_row = |res: &ExperimentResult| Table4Row {
        metric: res.metric,
        sc1_mean: res.effect.baseline_mean,
        sc2_mean: res.effect.treated_mean,
        change_pct: res.effect.percent_change(),
        t_value: res.effect.test.t,
        significant: res.effect.significant_at(0.01),
    };
    let throughput = analyze(
        &out.telemetry,
        &split,
        window.0,
        window.1,
        Metric::TotalDataRead,
    )?;
    let latency = analyze(
        &out.telemetry,
        &split,
        window.0,
        window.1,
        Metric::AverageTaskLatency,
    )?;
    let table4 = vec![to_row(&throughput), to_row(&latency)];

    // SC2 dominates when it reads more data and finishes tasks faster.
    // kea-lint: allow(index-in-library) — table4 is built from the fixed two-SC comparison right above
    let recommendation = if table4[0].change_pct > 0.0 && table4[1].change_pct < 0.0 {
        "SC2"
    } else {
        "SC1"
    };
    Ok(ScSelectionOutcome {
        machines_per_group: split.treatment.len(),
        table4,
        recommendation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> ScSelectionParams {
        ScSelectionParams {
            cluster: ClusterSpec::default_cluster(),
            // Gen 1.1 racks: the most saturated machines, where the SC's
            // I/O path visibly moves throughput (as in the paper, whose
            // SC2 redesign was motivated by temp-store write latency on
            // loaded machines).
            sku: SkuId(0),
            n_racks: 4,
            duration_hours: 36,
            warmup_hours: 4,
            seed: 2024,
        }
    }

    /// Runs the heavy suite when `KEA_SLOW_TESTS=1` is set, so the
    /// opt-in works without test-runner flags; `cargo test -- --ignored`
    /// reaches the `#[ignore]`d twin directly.
    #[test]
    fn sc2_dominates_as_in_table_4_when_opted_in() {
        if std::env::var("KEA_SLOW_TESTS").is_ok_and(|v| v == "1") {
            sc2_dominates_as_in_table_4_impl();
        }
    }

    #[test]
    #[ignore = "slow (~7 s on the sharded engine, was ~24 s) Monte-Carlo suite; run with `cargo test -- --ignored` or KEA_SLOW_TESTS=1"]
    fn sc2_dominates_as_in_table_4() {
        sc2_dominates_as_in_table_4_impl();
    }

    fn sc2_dominates_as_in_table_4_impl() {
        let out = run_sc_selection(&quick_params()).unwrap();
        assert_eq!(out.recommendation, "SC2");
        let throughput = &out.table4[0];
        let latency = &out.table4[1];
        assert_eq!(throughput.metric, Metric::TotalDataRead);
        // Directional reproduction of Table 4: throughput up, task time
        // down, both significant.
        assert!(
            throughput.change_pct > 1.0,
            "throughput {throughput:?}"
        );
        assert!(latency.change_pct < -1.0, "latency {latency:?}");
        assert!(throughput.significant, "{throughput:?}");
        assert!(latency.significant, "{latency:?}");
        assert!(throughput.t_value > 2.5);
        assert!(latency.t_value < -2.5);
        assert!(out.machines_per_group >= 10);
    }

    #[test]
    fn validates_parameters() {
        let mut p = quick_params();
        p.warmup_hours = p.duration_hours;
        assert!(matches!(run_sc_selection(&p), Err(KeaError::Design(_))));
        let mut p = quick_params();
        p.n_racks = 10_000;
        assert!(matches!(run_sc_selection(&p), Err(KeaError::Design(_))));
    }
}
