//! The four production KEA applications of Table 3.
//!
//! | Application | Tuning approach | Parameter |
//! |---|---|---|
//! | [`yarn_config`] | Observational | max running containers per SC-SKU |
//! | [`sku_design`] | Hypothetical | RAM / SSD of future machines |
//! | [`power_capping`] | Experimental | % below current power provision |
//! | [`sc_selection`] | Experimental | SC1 vs SC2 |
//! | [`queue_tuning`] | Observational | max queue length per group (§5.3 extension) |

pub mod power_capping;
pub mod queue_tuning;
pub mod sc_selection;
pub mod sku_design;
pub mod yarn_config;

/// The three tuning approaches of §4.2, used to tag applications and
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningApproach {
    /// Model from passive telemetry; flight only as a safety check.
    Observational,
    /// Model from passive telemetry; no flighting or deployment possible
    /// (future hardware).
    Hypothetical,
    /// Deploy experiments to gather operating points (last resort).
    Experimental,
}

impl TuningApproach {
    /// Which KEA architecture modules (Figure 7) the approach uses.
    pub fn modules(&self) -> &'static [&'static str] {
        match self {
            TuningApproach::Observational => {
                &["performance monitor", "modeling", "flighting", "deployment"]
            }
            TuningApproach::Hypothetical => &["performance monitor", "modeling"],
            TuningApproach::Experimental => &[
                "performance monitor",
                "modeling",
                "experiment",
                "flighting",
                "deployment",
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_usage_matches_section_4_2() {
        assert_eq!(TuningApproach::Observational.modules().len(), 4);
        assert_eq!(TuningApproach::Hypothetical.modules().len(), 2);
        assert_eq!(TuningApproach::Experimental.modules().len(), 5);
        assert!(!TuningApproach::Hypothetical
            .modules()
            .contains(&"flighting"));
        assert!(TuningApproach::Experimental.modules().contains(&"experiment"));
    }
}
