//! Application 2: machine configuration design via Hypothetical Tuning
//! (§6.1, Figures 13–14, Table 3 row 2).
//!
//! Given that the next hardware generation's CPU core count is fixed
//! (128), choose the most cost-efficient SSD and RAM sizes. No flighting,
//! no deployment — machines that don't exist can't be experimented on:
//!
//! 1. Fit `s = p(c) = α_s + β_s·c` and `r = q(c) = α_r + β_r·c` on
//!    observational (cores-used, SSD-used, RAM-used) telemetry
//!    (Figure 13).
//! 2. Derive the *empirical distribution* of per-observation slopes
//!    (β_s, β_r) — the "full distribution … based on each observation to
//!    capture the nature variances and noises".
//! 3. Monte-Carlo each candidate design (S, R): draw a slope pair,
//!    compute the binding resource `c = min(128, p⁻¹(S), q⁻¹(R))`, price
//!    idle cores/SSD/RAM and add stranding penalties when SSD or RAM run
//!    out (running out of CPU "is handled more gracefully").
//! 4. Pick the sweet spot of the expected-cost surface (Figure 14).

use crate::error::KeaError;
use crate::monitor::PerformanceMonitor;
use kea_ml::LinearModel1D;
use kea_opt::minimize_expected_cost;
use kea_telemetry::{GroupKey, Metric};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Unit costs and penalties of the §6.1 cost model, in arbitrary
/// consistent money units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Penalty per idle CPU core.
    pub idle_core_cost: f64,
    /// Penalty per idle GB of SSD.
    pub idle_ssd_cost_per_gb: f64,
    /// Penalty per idle GB of RAM.
    pub idle_ram_cost_per_gb: f64,
    /// Penalty for stranding the machine on SSD (running out).
    pub out_of_ssd_penalty: f64,
    /// Penalty for stranding the machine on RAM.
    pub out_of_ram_penalty: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Running out of RAM/SSD is catastrophic (OOM kills, spill
        // failures) while idle capacity is merely wasted capex — the
        // paper's "extra penalty of running out".
        CostModel {
            idle_core_cost: 1.0,
            idle_ssd_cost_per_gb: 0.01,
            idle_ram_cost_per_gb: 0.05,
            out_of_ssd_penalty: 120.0,
            out_of_ram_penalty: 160.0,
        }
    }
}

/// Parameters of a SKU-design study.
#[derive(Debug, Clone)]
pub struct SkuDesignParams {
    /// Telemetry group supplying the usage models (a current production
    /// SKU running representative workloads).
    pub source_group: GroupKey,
    /// Core count of the future machine (128 in the paper).
    pub future_cores: u32,
    /// Candidate SSD sizes, GB.
    pub candidate_ssd_gb: Vec<f64>,
    /// Candidate RAM sizes, GB.
    pub candidate_ram_gb: Vec<f64>,
    /// Cost model.
    pub cost: CostModel,
    /// Monte-Carlo draws per design (1000 in the paper).
    pub draws: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Expected cost of one candidate design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignCost {
    /// Candidate SSD size, GB.
    pub ssd_gb: f64,
    /// Candidate RAM size, GB.
    pub ram_gb: f64,
    /// Monte-Carlo mean cost.
    pub expected_cost: f64,
    /// Standard error of the mean.
    pub std_err: f64,
}

/// Outcome of the study.
#[derive(Debug, Clone)]
pub struct SkuDesignOutcome {
    /// Fitted SSD-vs-cores model (`p`, Figure 13 left).
    pub ssd_model: LinearModel1D,
    /// Fitted RAM-vs-cores model (`q`, Figure 13 right).
    pub ram_model: LinearModel1D,
    /// Fitted network-vs-cores model — the §6.2 extension ("the same
    /// methodology is also applicable … such as network bandwidth").
    pub network_model: LinearModel1D,
    /// Suggested NIC line rate for the future machine: projected network
    /// demand at `future_cores` with 40% headroom for storage and
    /// replication traffic, Gbit/s.
    pub suggested_nic_gbps: f64,
    /// Per-observation slope pairs `(β_s, β_r)` the Monte-Carlo draws
    /// from.
    pub slope_pairs: Vec<(f64, f64)>,
    /// The full expected-cost surface (Figure 14), row-major over
    /// (ssd, ram) candidates.
    pub surface: Vec<DesignCost>,
    /// The winning design.
    pub best: DesignCost,
    /// Observations used to fit the models.
    pub n_observations: usize,
}

/// Runs the SKU-design study on a telemetry window.
///
/// # Errors
/// Needs enough observations with non-trivial core usage in the source
/// group, non-empty candidate lists, and positive draw count.
pub fn run_sku_design(
    monitor: &PerformanceMonitor<'_>,
    params: &SkuDesignParams,
) -> Result<SkuDesignOutcome, KeaError> {
    if params.candidate_ssd_gb.is_empty() || params.candidate_ram_gb.is_empty() {
        return Err(KeaError::Design("no candidate designs".to_string()));
    }
    // Gather (cores, ssd, ram) observations for the source group.
    let mut cores = Vec::new();
    let mut ssd = Vec::new();
    let mut ram = Vec::new();
    let mut network = Vec::new();
    for rec in monitor.store().by_group(params.source_group) {
        let c = Metric::CoresUsed.value(&rec.metrics);
        if c > 0.5 {
            cores.push(c);
            ssd.push(Metric::SsdUsed.value(&rec.metrics));
            ram.push(Metric::RamUsed.value(&rec.metrics));
            network.push(Metric::NetworkUsed.value(&rec.metrics));
        }
    }
    if cores.len() < 20 {
        return Err(KeaError::NoObservations {
            what: format!(
                "only {} usable observations for {:?}",
                cores.len(),
                params.source_group
            ),
        });
    }

    let ssd_model = LinearModel1D::fit_huber(&cores, &ssd)?;
    let ram_model = LinearModel1D::fit_huber(&cores, &ram)?;
    let network_model = LinearModel1D::fit_huber(&cores, &network)?;
    let suggested_nic_gbps = network_model.predict(params.future_cores as f64).max(0.0) * 1.4;

    // Per-observation slopes around the fitted intercepts.
    let slope_pairs: Vec<(f64, f64)> = cores
        .iter()
        .zip(ssd.iter().zip(&ram))
        .filter_map(|(&c, (&s, &r))| {
            let beta_s = (s - ssd_model.intercept()) / c;
            let beta_r = (r - ram_model.intercept()) / c;
            (beta_s > 0.0 && beta_r > 0.0).then_some((beta_s, beta_r))
        })
        .collect();
    if slope_pairs.len() < 10 {
        return Err(KeaError::NoObservations {
            what: "too few positive slope observations".to_string(),
        });
    }

    // Candidate grid, row-major over (ssd, ram).
    let candidates: Vec<(f64, f64)> = params
        .candidate_ssd_gb
        .iter()
        .flat_map(|&s| params.candidate_ram_gb.iter().map(move |&r| (s, r)))
        .collect();

    let alpha_s = ssd_model.intercept();
    let alpha_r = ram_model.intercept();
    let cores_cap = params.future_cores as f64;
    let cost_model = params.cost;
    let pairs = slope_pairs.clone();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let report = minimize_expected_cost(
        &candidates,
        params.draws,
        &mut rng,
        move |&(s_cap, r_cap), rng: &mut StdRng| {
            let (beta_s, beta_r) = pairs[rng.gen_range(0..pairs.len())]; // kea-lint: allow(index-in-library) — gen_range(0..len) is in bounds
            // Binding resource: cores usable before SSD or RAM strands us.
            let c_ssd = (s_cap - alpha_s) / beta_s;
            let c_ram = (r_cap - alpha_r) / beta_r;
            let c = cores_cap.min(c_ssd).min(c_ram).max(0.0);
            let idle_cores = cores_cap - c;
            let idle_ssd = (s_cap - (alpha_s + beta_s * c)).max(0.0);
            let idle_ram = (r_cap - (alpha_r + beta_r * c)).max(0.0);
            let mut cost = idle_cores * cost_model.idle_core_cost
                + idle_ssd * cost_model.idle_ssd_cost_per_gb
                + idle_ram * cost_model.idle_ram_cost_per_gb;
            // Stranded: the binding resource ran out before the cores did.
            if c < cores_cap {
                if c_ssd <= c_ram {
                    cost += cost_model.out_of_ssd_penalty;
                } else {
                    cost += cost_model.out_of_ram_penalty;
                }
            }
            cost
        },
    )?;

    let surface: Vec<DesignCost> = report
        .candidates
        .iter()
        .map(|cc| DesignCost {
            // kea-lint: allow(index-in-library) — cc.index enumerates candidates in minimize_expected_cost
            ssd_gb: candidates[cc.index].0,
            ram_gb: candidates[cc.index].1, // kea-lint: allow(index-in-library) — same in-bounds cc.index as the line above
            expected_cost: cc.mean_cost,
            std_err: cc.std_err,
        })
        .collect();
    let best = surface[report.best_index]; // kea-lint: allow(index-in-library) — best_index < candidates.len() == surface.len() by construction

    Ok(SkuDesignOutcome {
        ssd_model,
        ram_model,
        network_model,
        suggested_nic_gbps,
        slope_pairs,
        surface,
        best,
        n_observations: cores.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kea_telemetry::{
        MachineHourRecord, MachineId, MetricValues, ScId, SkuId, TelemetryStore,
    };

    /// Synthetic telemetry with known usage laws:
    /// ssd = 100 + 8·cores, ram = 10 + 2·cores, cores ∈ [5, 40].
    fn usage_store() -> TelemetryStore {
        let mut s = TelemetryStore::new();
        for m in 0..20u32 {
            for h in 0..72u64 {
                let c = 5.0 + ((m as u64 * 7 + h * 3) % 36) as f64;
                let jitter = ((m as u64 + h) % 5) as f64 * 0.3 - 0.6;
                s.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: GroupKey::new(SkuId(4), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        cores_used: c,
                        ssd_used_gb: 100.0 + 8.0 * c + jitter * 4.0,
                        ram_used_gb: 10.0 + 2.0 * c + jitter,
                        network_used_gbps: 0.5 + 0.25 * c + jitter * 0.05,
                        tasks_finished: 1.0,
                        ..Default::default()
                    },
                });
            }
        }
        s
    }

    fn params() -> SkuDesignParams {
        SkuDesignParams {
            source_group: GroupKey::new(SkuId(4), ScId(1)),
            future_cores: 128,
            // True demand at 128 cores: ssd ≈ 100 + 8·128 = 1124;
            // ram ≈ 10 + 2·128 = 266.
            candidate_ssd_gb: vec![512.0, 768.0, 1024.0, 1280.0, 1536.0, 2048.0],
            candidate_ram_gb: vec![128.0, 192.0, 256.0, 320.0, 384.0, 512.0],
            cost: CostModel::default(),
            draws: 400,
            seed: 9,
        }
    }

    #[test]
    fn recovers_usage_models_and_sweet_spot() {
        let store = usage_store();
        let mon = PerformanceMonitor::new(&store);
        let out = run_sku_design(&mon, &params()).unwrap();
        // Figure 13: the fitted laws match ground truth.
        assert!((out.ssd_model.slope() - 8.0).abs() < 0.3, "{:?}", out.ssd_model);
        assert!((out.ram_model.slope() - 2.0).abs() < 0.1, "{:?}", out.ram_model);
        assert!((out.ssd_model.intercept() - 100.0).abs() < 10.0);
        // §6.2 extension: the network model recovers its law and the NIC
        // suggestion covers the 128-core demand (0.5 + 0.25·128 ≈ 32.5
        // Gbit/s) with headroom.
        assert!((out.network_model.slope() - 0.25).abs() < 0.02);
        assert!(
            out.suggested_nic_gbps > 33.0 && out.suggested_nic_gbps < 60.0,
            "nic {}",
            out.suggested_nic_gbps
        );
        // Figure 14: the sweet spot covers the 128-core demand without
        // gross overprovisioning: demand is (1124, 266).
        assert!(
            out.best.ssd_gb >= 1024.0 && out.best.ssd_gb <= 1536.0,
            "best ssd {}",
            out.best.ssd_gb
        );
        assert!(
            out.best.ram_gb >= 256.0 && out.best.ram_gb <= 384.0,
            "best ram {}",
            out.best.ram_gb
        );
        // Full surface evaluated.
        assert_eq!(out.surface.len(), 36);
        // Under-provisioned corners are dominated by stranding penalties.
        let corner = out
            .surface
            .iter()
            .find(|d| d.ssd_gb == 512.0 && d.ram_gb == 128.0)
            .unwrap();
        assert!(corner.expected_cost > out.best.expected_cost * 1.5);
    }

    #[test]
    fn surface_is_u_shaped_along_each_axis() {
        let store = usage_store();
        let mon = PerformanceMonitor::new(&store);
        let out = run_sku_design(&mon, &params()).unwrap();
        // Fix RAM at the winner and walk SSD: endpoints dearer than best.
        let row: Vec<&DesignCost> = out
            .surface
            .iter()
            .filter(|d| d.ram_gb == out.best.ram_gb)
            .collect();
        let best = row
            .iter()
            .map(|d| d.expected_cost)
            .fold(f64::INFINITY, f64::min);
        assert!(row.first().unwrap().expected_cost > best);
        assert!(row.last().unwrap().expected_cost > best);
    }

    #[test]
    fn deterministic_under_seed() {
        let store = usage_store();
        let mon = PerformanceMonitor::new(&store);
        let a = run_sku_design(&mon, &params()).unwrap();
        let b = run_sku_design(&mon, &params()).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.surface.len(), b.surface.len());
    }

    #[test]
    fn rejects_missing_group_and_empty_candidates() {
        let store = usage_store();
        let mon = PerformanceMonitor::new(&store);
        let mut p = params();
        p.source_group = GroupKey::new(SkuId(9), ScId(1));
        assert!(matches!(
            run_sku_design(&mon, &p),
            Err(KeaError::NoObservations { .. })
        ));
        let mut p = params();
        p.candidate_ssd_gb.clear();
        assert!(matches!(run_sku_design(&mon, &p), Err(KeaError::Design(_))));
    }
}
