//! Application 3: power capping via Experimental Tuning (§7.2,
//! Figure 15, Table 3 row 3).
//!
//! Capping applies per chassis, so the ideal every-other-machine setting
//! is impossible; the paper uses the *hybrid setting* with four
//! same-SKU machine groups per round:
//!
//! * Group A — no capping, Feature off (the baseline)
//! * Group B — no capping, Feature on
//! * Group C — capping, Feature off
//! * Group D — capping, Feature on
//!
//! and normalized metrics (Bytes per CPU Time, Bytes per Second) that are
//! robust to load differences. One round per capping level (10–30% below
//! provisioned), each run "for more than 24 hours".

use crate::error::KeaError;
use crate::experiment::{analyze, hybrid_groups, MachineSplit};
use kea_sim::{run, ClusterSpec, ConfigPatch, ConfigPlan, Flight, SimConfig, WorkloadSpec};
use kea_telemetry::{MachineId, Metric, SkuId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Experiment arms, named as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// No capping, Feature off (baseline).
    A,
    /// No capping, Feature on.
    B,
    /// Capping, Feature off.
    C,
    /// Capping, Feature on.
    D,
}

impl Arm {
    /// The three treatment arms compared against A.
    pub const TREATMENTS: [Arm; 3] = [Arm::B, Arm::C, Arm::D];

    /// The configuration patch this arm deploys at `cap_fraction`.
    fn patch(&self, cap_fraction: f64) -> ConfigPatch {
        match self {
            Arm::A => ConfigPatch::default(),
            Arm::B => ConfigPatch {
                feature_on: Some(true),
                ..Default::default()
            },
            Arm::C => ConfigPatch {
                power_cap_fraction: Some(cap_fraction),
                ..Default::default()
            },
            Arm::D => ConfigPatch {
                power_cap_fraction: Some(cap_fraction),
                feature_on: Some(true),
                ..Default::default()
            },
        }
    }

    /// Whether the arm has the Feature enabled.
    pub fn feature_on(&self) -> bool {
        matches!(self, Arm::B | Arm::D)
    }

    /// Whether the arm is capped.
    pub fn capped(&self) -> bool {
        matches!(self, Arm::C | Arm::D)
    }
}

/// Parameters of the power-capping study.
#[derive(Debug, Clone)]
pub struct PowerCappingParams {
    /// Cluster to experiment on.
    pub cluster: ClusterSpec,
    /// SKU under test (one SKU per study, as in the paper).
    pub sku: SkuId,
    /// Capping levels as fractions below provisioned power
    /// (paper: 0.10, 0.15, 0.20, 0.25, 0.30).
    pub cap_levels: Vec<f64>,
    /// Machines per arm (paper: 120).
    pub group_size: usize,
    /// Hours per round (paper: > 24).
    pub hours_per_round: u64,
    /// Warm-up hours excluded from analysis.
    pub warmup_hours: u64,
    /// RNG seed.
    pub seed: u64,
}

/// One cell of the Figure 15 matrix: an arm at a capping level.
#[derive(Debug, Clone, PartialEq)]
pub struct CappingCell {
    /// Capping level (fraction below provisioned).
    pub cap_level: f64,
    /// The arm.
    pub arm: Arm,
    /// Bytes-per-CPU-time change vs arm A, percent.
    pub bytes_per_cpu_change_pct: f64,
    /// Bytes-per-second change vs arm A, percent.
    pub bytes_per_sec_change_pct: f64,
    /// Welch t of the Bytes-per-CPU-time comparison.
    pub t_bytes_per_cpu: f64,
    /// Mean power drawn by the arm, watts (verifies the cap engaged).
    pub mean_power_w: f64,
}

/// Full study outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCappingOutcome {
    /// All cells, ordered by (cap level, arm).
    pub cells: Vec<CappingCell>,
}

impl PowerCappingOutcome {
    /// Looks up one cell.
    pub fn cell(&self, cap_level: f64, arm: Arm) -> Option<&CappingCell> {
        self.cells
            .iter()
            .find(|c| (c.cap_level - cap_level).abs() < 1e-9 && c.arm == arm)
    }
}

/// Runs the power-capping study: one simulated round per capping level,
/// four arms flighted per round.
///
/// # Errors
/// The SKU must have `4 × group_size` machines; rounds must be longer
/// than the warm-up.
pub fn run_power_capping(params: &PowerCappingParams) -> Result<PowerCappingOutcome, KeaError> {
    if params.warmup_hours >= params.hours_per_round {
        return Err(KeaError::Design(
            "round must be longer than the warm-up".to_string(),
        ));
    }
    if params.cap_levels.is_empty() {
        return Err(KeaError::Design("no capping levels given".to_string()));
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let groups = hybrid_groups(&params.cluster, params.sku, 4, params.group_size, &mut rng)?;
    let arms = [Arm::A, Arm::B, Arm::C, Arm::D];

    // Saturated pressure: capping only matters on hot machines, and the
    // paper's clusters queue work at peaks (Figure 12).
    let workload = WorkloadSpec::default_for(&params.cluster, 1.1);
    let mut cells = Vec::new();
    for (round, &cap) in params.cap_levels.iter().enumerate() {
        let mut plan = ConfigPlan::baseline(&params.cluster.skus, kea_sim::SC1);
        for (arm, machines) in arms.iter().zip(&groups) {
            let patch = arm.patch(cap);
            if patch.is_empty() {
                continue; // Arm A runs the baseline.
            }
            plan.add_flight(Flight {
                label: format!("cap{:.0}%-{arm:?}", cap * 100.0),
                machines: machines.clone(),
                start_hour: 0,
                end_hour: params.hours_per_round,
                patch,
            });
        }
        let out = run(&SimConfig {
            cluster: params.cluster.clone(),
            workload: workload.clone(),
            plan,
            duration_hours: params.hours_per_round,
            // Distinct seed per round: rounds are separate deployments in
            // time, not replays.
            seed: params.seed.wrapping_add(round as u64 + 1),
            task_log_every: 0,
            adhoc_job_log_every: 0,
        });

        let window = (params.warmup_hours, params.hours_per_round);
        for arm in Arm::TREATMENTS {
            let Some(idx) = arms.iter().position(|a| *a == arm) else {
                continue; // arms holds every Arm variant; degrade by skipping
            };
            let split = MachineSplit {
                // kea-lint: allow(index-in-library) — groups and arms are parallel 4-entry arrays built above
                control: groups[0].clone(),
                treatment: groups[idx].clone(), // kea-lint: allow(index-in-library) — idx is a position into the parallel 4-entry arms array
            };
            let bpc = analyze(
                &out.telemetry,
                &split,
                window.0,
                window.1,
                Metric::BytesPerCpuTime,
            )?;
            let bps = analyze(
                &out.telemetry,
                &split,
                window.0,
                window.1,
                Metric::BytesPerSecond,
            )?;
            // kea-lint: allow(index-in-library) — idx is a position into arms, which zips 1:1 with groups
            let mean_power = arm_mean_power(&out.telemetry, &groups[idx], window)?;
            cells.push(CappingCell {
                cap_level: cap,
                arm,
                bytes_per_cpu_change_pct: bpc.effect.percent_change(),
                bytes_per_sec_change_pct: bps.effect.percent_change(),
                t_bytes_per_cpu: bpc.effect.test.t,
                mean_power_w: mean_power,
            });
        }
    }
    Ok(PowerCappingOutcome { cells })
}

fn arm_mean_power(
    store: &kea_telemetry::TelemetryStore,
    machines: &BTreeSet<MachineId>,
    window: (u64, u64),
) -> Result<f64, KeaError> {
    let samples = crate::experiment::machine_hour_samples(
        store,
        machines,
        window.0,
        window.1,
        Metric::PowerDraw,
    );
    if samples.is_empty() {
        return Err(KeaError::NoObservations {
            what: "power samples for arm".to_string(),
        });
    }
    Ok(samples.iter().sum::<f64>() / samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> PowerCappingParams {
        PowerCappingParams {
            cluster: ClusterSpec::medium(),
            // Gen 1.1: the hottest machines, where deep caps clearly bite.
            sku: SkuId(0),
            cap_levels: vec![0.10, 0.30],
            group_size: 16,
            hours_per_round: 24,
            warmup_hours: 3,
            seed: 77,
        }
    }

    /// Runs the heavy suite when `KEA_SLOW_TESTS=1` is set, so the
    /// opt-in works without test-runner flags; `cargo test -- --ignored`
    /// reaches the `#[ignore]`d twin directly.
    #[test]
    fn reproduces_figure_15_shape_when_opted_in() {
        if std::env::var("KEA_SLOW_TESTS").is_ok_and(|v| v == "1") {
            reproduces_figure_15_shape_impl();
        }
    }

    #[test]
    #[ignore = "slow (~4 s on the sharded engine, was ~16 s) Monte-Carlo suite; run with `cargo test -- --ignored` or KEA_SLOW_TESTS=1"]
    fn reproduces_figure_15_shape() {
        reproduces_figure_15_shape_impl();
    }

    fn reproduces_figure_15_shape_impl() {
        let out = run_power_capping(&quick_params()).unwrap();
        assert_eq!(out.cells.len(), 2 * 3);

        // Feature alone (arm B) improves Bytes per CPU Time by ~5%
        // (1/0.95 − 1 ≈ 5.3% in the simulator's ground truth).
        let b10 = out.cell(0.10, Arm::B).unwrap();
        assert!(
            b10.bytes_per_cpu_change_pct > 2.0,
            "B at 10%: {b10:?}"
        );

        // Light capping without the Feature (arm C at 10%) is nearly
        // free: provisioned headroom absorbs it.
        let c10 = out.cell(0.10, Arm::C).unwrap();
        assert!(
            c10.bytes_per_cpu_change_pct.abs() < 3.0,
            "C at 10%: {c10:?}"
        );

        // Deep capping clearly hurts where light capping was free.
        let c30 = out.cell(0.30, Arm::C).unwrap();
        assert!(
            c30.bytes_per_cpu_change_pct < -1.5,
            "C at 30% must degrade: {c30:?}"
        );
        assert!(
            c30.bytes_per_cpu_change_pct < c10.bytes_per_cpu_change_pct,
            "C at 30% ({c30:?}) vs 10% ({c10:?})"
        );

        // Feature softens deep capping: D ≥ C at every level.
        for cap in [0.10, 0.30] {
            let c = out.cell(cap, Arm::C).unwrap();
            let d = out.cell(cap, Arm::D).unwrap();
            assert!(
                d.bytes_per_cpu_change_pct > c.bytes_per_cpu_change_pct,
                "at {cap}: D {d:?} vs C {c:?}"
            );
        }

        // The cap physically engages: the capped arm's draw never
        // exceeds the configured cap (30% below provisioned power).
        let params = quick_params();
        let sku = params.cluster.sku(params.sku);
        let cap_w = sku.provisioned_power_w * 0.70;
        assert!(
            c30.mean_power_w <= cap_w + 1e-6,
            "capped draw {} vs cap {cap_w}",
            c30.mean_power_w
        );
    }

    #[test]
    fn validates_parameters() {
        let mut p = quick_params();
        p.warmup_hours = 24;
        assert!(matches!(
            run_power_capping(&p),
            Err(KeaError::Design(_))
        ));
        let mut p = quick_params();
        p.cap_levels.clear();
        assert!(matches!(run_power_capping(&p), Err(KeaError::Design(_))));
        let mut p = quick_params();
        p.group_size = 10_000;
        assert!(matches!(run_power_capping(&p), Err(KeaError::Design(_))));
    }
}
