//! Application 1: YARN configuration tuning via Observational Tuning
//! (§5.2, Figures 9–11, Table 3 row 1).
//!
//! The end-to-end pipeline of the paper:
//!
//! 1. **Observe** — run the cluster under the manual-tuning baseline and
//!    collect a telemetry window (production: daily pipeline; here: a
//!    simulated observation window).
//! 2. **Model** — calibrate per-group Huber models `g_k`, `h_k`, `f_k`
//!    (the What-if Engine, Figure 9).
//! 3. **Optimize** — solve the LP of Equations (7)–(10) for conservative
//!    ±δ container steps (Figure 10).
//! 4. **Deploy & evaluate** — apply the integer steps fleet-wide at the
//!    deployment hour and compare before/after windows with treatment
//!    effects (§5.2.2: +9% Total Data Read at flat latency, +2% sellable
//!    capacity, better benchmark-job runtimes — Figure 11).

use crate::error::KeaError;
use crate::flighting::{evaluate_deployment, DeploymentReport, Guardrail};
use crate::slo::{check_implicit_slos, SloReport};
use crate::monitor::PerformanceMonitor;
use crate::optimizer::{optimize_max_containers, OperatingPoint, YarnOptimization};
use crate::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_sim::{run, ClusterSpec, ConfigPatch, ConfigPlan, Flight, SimConfig, WorkloadSpec};
use kea_stats::{t_test_welch, Alternative};
use kea_telemetry::{GroupKey, MachineId, Metric};
use std::collections::{BTreeMap, BTreeSet};

/// Parameters of a YARN tuning run.
#[derive(Debug, Clone)]
pub struct YarnTuningParams {
    /// Cluster under tuning.
    pub cluster: ClusterSpec,
    /// Hours of pre-deployment observation (the paper trained on 7 days
    /// and evaluated over a month; scale to taste).
    pub observe_hours: u64,
    /// Hours of post-deployment evaluation.
    pub eval_hours: u64,
    /// Conservative step bound δ (1 in the paper's first round).
    pub max_step: f64,
    /// RNG seed.
    pub seed: u64,
    /// Estimator for the What-if Engine.
    pub method: FitMethod,
    /// Workload pressure: target slot occupancy. The knob only matters
    /// when peaks saturate capacity, so tune near the high end (the
    /// paper's clusters run with standing per-machine queues — Fig 12).
    pub target_occupancy: f64,
}

impl YarnTuningParams {
    /// Quick preset for tests and examples. The 48/48-hour windows keep
    /// both sides inside weekdays so weekly seasonality does not
    /// confound the before/after comparison (the paper's month-long
    /// windows solve the same problem by averaging whole weeks).
    pub fn quick(cluster: ClusterSpec, seed: u64) -> Self {
        YarnTuningParams {
            cluster,
            observe_hours: 48,
            eval_hours: 48,
            max_step: 1.0,
            seed,
            method: FitMethod::Huber,
            target_occupancy: 1.02,
        }
    }
}

/// Per-benchmark before/after comparison (Figure 11).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkComparison {
    /// Benchmark template name.
    pub name: String,
    /// Runtimes before deployment, seconds.
    pub before_runtimes_s: Vec<f64>,
    /// Runtimes after deployment, seconds.
    pub after_runtimes_s: Vec<f64>,
    /// Relative mean-runtime change (negative = faster).
    pub mean_change_pct: f64,
}

/// Everything the pipeline produced.
#[derive(Debug, Clone)]
pub struct YarnTuningOutcome {
    /// The calibrated What-if Engine (Figure 9 artifacts).
    pub engine: WhatIfEngine,
    /// The LP result (Figure 10 artifact).
    pub optimization: YarnOptimization,
    /// Machines per group in the observation window, so callers can
    /// re-run the optimizer at other operating points (the Figure 10
    /// high-percentile sensitivity check).
    pub machine_counts: BTreeMap<GroupKey, usize>,
    /// Fleet-wide before/after evaluation with guardrails.
    pub deployment: DeploymentReport,
    /// Total Data Read change, percent (paper: +9%).
    pub throughput_change_pct: f64,
    /// Average task latency change, percent (paper: ~0).
    pub latency_change_pct: f64,
    /// Running-container (sellable-capacity) change, percent (paper: +2%).
    pub capacity_change_pct: f64,
    /// Welch t statistic of the throughput change (paper: 4.45 / 7.13).
    pub throughput_t: f64,
    /// Benchmark-job comparisons (Figure 11).
    pub benchmarks: Vec<BenchmarkComparison>,
    /// Implicit-SLO verdicts for every recurring template (§3.2 Level II):
    /// the job-level constraint the machine-level tuning must respect.
    pub slo: SloReport,
}

/// Runs the full pipeline.
///
/// # Errors
/// Propagates model-fitting, optimization, and analysis errors; fails if
/// the observation window is too short to calibrate any group.
pub fn run_yarn_tuning(params: &YarnTuningParams) -> Result<YarnTuningOutcome, KeaError> {
    // ---- Phase: observe under the manual baseline -------------------
    let workload = WorkloadSpec::default_for(&params.cluster, params.target_occupancy);
    let baseline_plan = ConfigPlan::baseline(&params.cluster.skus, kea_sim::SC1);
    let observe_cfg = SimConfig {
        cluster: params.cluster.clone(),
        workload: workload.clone(),
        plan: baseline_plan.clone(),
        duration_hours: params.observe_hours,
        seed: params.seed,
        task_log_every: 10,
        adhoc_job_log_every: 8,
    };
    let observed = run(&observe_cfg);

    // ---- Phase: model ------------------------------------------------
    let monitor = PerformanceMonitor::new(&observed.telemetry);
    // Hourly granularity: a scaled-down cluster trades machines for
    // hours (the paper's 45k machines make daily aggregates plentiful).
    let engine = WhatIfEngine::fit_at(&monitor, params.method, Granularity::Hourly, 24)?;
    let machine_counts: BTreeMap<GroupKey, usize> = monitor
        .group_utilization()
        .into_iter()
        .map(|g| (g.group, g.machines))
        .collect();

    // ---- Phase: optimize ----------------------------------------------
    let optimization = optimize_max_containers(
        &engine,
        &machine_counts,
        params.max_step,
        OperatingPoint::Median,
    )?;

    // ---- Phase: deploy fleet-wide at the deployment hour --------------
    // One simulated world covering both windows: baseline until
    // `observe_hours`, tuned thereafter (per-SKU flights emulate the
    // staged config push).
    let total_hours = params.observe_hours + params.eval_hours;
    let mut plan = baseline_plan;
    for suggestion in &optimization.suggestions {
        if suggestion.delta_step == 0 {
            continue;
        }
        let sku = suggestion.group.sku;
        let base_max = plan.base[&sku].max_running_containers as i64; // kea-lint: allow(index-in-library) — sku iterates this plan's own keys
        let new_max = (base_max + suggestion.delta_step as i64).max(1) as u32;
        let machines: BTreeSet<MachineId> = params
            .cluster
            .machines_of_sku(sku)
            .map(|m| m.id)
            .collect();
        plan.add_flight(Flight {
            label: format!("deploy-{sku:?}"),
            machines,
            start_hour: params.observe_hours,
            end_hour: total_hours,
            patch: ConfigPatch {
                max_running_containers: Some(new_max),
                ..Default::default()
            },
        });
    }
    let deploy_cfg = SimConfig {
        cluster: params.cluster.clone(),
        workload,
        plan,
        duration_hours: total_hours,
        seed: params.seed,
        task_log_every: 10,
        adhoc_job_log_every: 8,
    };
    let world = run(&deploy_cfg);

    // ---- Phase: evaluate ----------------------------------------------
    // Skip a warm-up hour on each side of the deployment edge so queued
    // backlogs don't bleed between windows.
    let before = (1, params.observe_hours);
    let after = (params.observe_hours + 1, total_hours);
    let guardrails = [Guardrail {
        metric: Metric::AverageTaskLatency,
        higher_is_worse: true,
        max_regression: 0.02,
        alpha: 0.05,
    }];
    let metrics = [
        Metric::TotalDataRead,
        Metric::AverageTaskLatency,
        Metric::AverageRunningContainers,
    ];
    let deployment =
        evaluate_deployment(&world.telemetry, before, after, &metrics, &guardrails)?;
    let pct_of = |d: &DeploymentReport, metric: Metric| -> f64 {
        d.effects
            .iter()
            .find(|(m, _)| *m == metric)
            .map(|(_, e)| e.percent_change())
            .unwrap_or(f64::NAN) // metric is always in `metrics`; NaN degrades
    };
    let throughput_change_pct = pct_of(&deployment, Metric::TotalDataRead);
    let latency_change_pct = pct_of(&deployment, Metric::AverageTaskLatency);
    let capacity_change_pct = pct_of(&deployment, Metric::AverageRunningContainers);
    let throughput_t = deployment
        .effects
        .iter()
        .find(|(m, _)| *m == Metric::TotalDataRead)
        .map(|(_, e)| e.test.t)
        .unwrap_or(f64::NAN); // same: absent effect degrades to NaN

    // ---- Benchmarks (Figure 11) ----------------------------------------
    let mut benchmarks = Vec::new();
    for template in deploy_cfg
        .workload
        .templates
        .iter()
        .filter(|t| t.name.starts_with("bench-"))
    {
        let runtimes = world.job_runtimes(&template.name);
        let arrivals: Vec<f64> = world
            .jobs
            .iter()
            .filter(|j| j.template_name == template.name)
            .map(|j| j.arrival_hour)
            .collect();
        let mut before_rt = Vec::new();
        let mut after_rt = Vec::new();
        for (rt, arr) in runtimes.iter().zip(&arrivals) {
            if *arr < params.observe_hours as f64 {
                before_rt.push(*rt);
            } else {
                after_rt.push(*rt);
            }
        }
        if before_rt.is_empty() || after_rt.is_empty() {
            continue;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let change = (mean(&after_rt) - mean(&before_rt)) / mean(&before_rt) * 100.0;
        benchmarks.push(BenchmarkComparison {
            name: template.name.clone(),
            before_runtimes_s: before_rt,
            after_runtimes_s: after_rt,
            mean_change_pct: change,
        });
    }

    // ---- Implicit SLOs (Level II): per-template before/after ----------
    let before_jobs: Vec<_> = world
        .jobs
        .iter()
        .filter(|j| j.arrival_hour < params.observe_hours as f64)
        .cloned()
        .collect();
    let after_jobs: Vec<_> = world
        .jobs
        .iter()
        .filter(|j| j.arrival_hour >= params.observe_hours as f64)
        .cloned()
        .collect();
    let slo = check_implicit_slos(&before_jobs, &after_jobs, 3, 0.01)?;

    Ok(YarnTuningOutcome {
        engine,
        optimization,
        machine_counts,
        deployment,
        throughput_change_pct,
        latency_change_pct,
        capacity_change_pct,
        throughput_t,
        benchmarks,
        slo,
    })
}

/// Pooled benchmark significance: Welch t over all before vs after
/// benchmark runtimes (used when individual templates have few
/// instances).
///
/// # Errors
/// Needs at least two runtimes on each side.
pub fn pooled_benchmark_test(
    benchmarks: &[BenchmarkComparison],
) -> Result<kea_stats::TTestResult, KeaError> {
    let before: Vec<f64> = benchmarks
        .iter()
        .flat_map(|b| b.before_runtimes_s.iter().copied())
        .collect();
    let after: Vec<f64> = benchmarks
        .iter()
        .flat_map(|b| b.after_runtimes_s.iter().copied())
        .collect();
    Ok(t_test_welch(&after, &before, Alternative::Less)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kea_telemetry::SkuId;

    // One shared end-to-end run: the pipeline is the expensive part, the
    // assertions are cheap, so bundle them.
    #[test]
    fn end_to_end_reproduces_section_5_2() {
        let params = YarnTuningParams::quick(ClusterSpec::tiny(), 1234);
        let outcome = run_yarn_tuning(&params).expect("pipeline runs");

        // Figure 9: models calibrated for every group with positive
        // utilization slopes.
        assert_eq!(outcome.engine.len(), 6);
        let mut positive_f = 0;
        for g in outcome.engine.groups() {
            assert!(
                g.g_containers_to_util.slope() > 0.0,
                "util rises with containers: {g:?}"
            );
            if g.f_util_to_latency.slope() > 0.0 {
                positive_f += 1;
            }
        }
        // Pegged groups (old SKUs at max all day on a tiny cluster) have
        // almost no utilization spread, so their latency slope can be
        // noise; the majority must still carry the signal.
        assert!(
            positive_f >= 4,
            "latency rises with utilization in most groups: {positive_f}/6"
        );

        // Figure 10 direction: the fastest generation grows, and the
        // latency gradient decreases from oldest to newest (the physics
        // the LP acts on). The slow-SKU *decrease* needs more machines
        // than a tiny cluster offers; the fig10 repro bench covers it.
        let suggestion_of = |sku: u16| {
            outcome
                .optimization
                .suggestions
                .iter()
                .find(|s| s.group.sku == SkuId(sku))
                .cloned()
                .expect("suggestion per group")
        };
        assert!(suggestion_of(5).delta_step >= 1, "Gen 4.1 should grow");
        assert!(
            suggestion_of(0).latency_gradient > suggestion_of(5).latency_gradient,
            "older SKUs must carry the steeper latency gradient"
        );

        // §5.2.2 mechanics: the optimizer predicts a capacity gain at
        // unchanged latency, the deployment passes its guardrail, and
        // the measured world shows no serious regression. Measured
        // *magnitudes* are validated by the sec52 repro bench, which
        // pools several worlds for statistical power.
        assert!(
            outcome.optimization.predicted_capacity_gain > 0.0,
            "predicted gain: {}",
            outcome.optimization.predicted_capacity_gain
        );
        assert!(
            outcome.optimization.predicted_latency
                <= outcome.optimization.baseline_latency * (1.0 + 1e-9),
            "latency budget respected by the plan"
        );
        assert!(
            outcome.deployment.approved,
            "latency guardrail must pass: {:?}",
            outcome.deployment.guardrails
        );
        assert!(
            outcome.throughput_change_pct > -2.0,
            "no serious throughput regression: {}%",
            outcome.throughput_change_pct
        );
        assert!(outcome.throughput_t.is_finite());
        let _ = outcome.capacity_change_pct;
        let _ = outcome.latency_change_pct;

        // Level II: every testable recurring template keeps its implicit
        // SLO (the deployment was approved, after all).
        assert!(
            outcome.slo.all_hold,
            "implicit SLO violations: {:#?}",
            outcome
                .slo
                .templates
                .iter()
                .filter(|t| !t.holds)
                .collect::<Vec<_>>()
        );

        // Figure 11: benchmark comparisons exist for the three templates.
        assert!(!outcome.benchmarks.is_empty());
        for b in &outcome.benchmarks {
            assert!(!b.before_runtimes_s.is_empty());
            assert!(!b.after_runtimes_s.is_empty());
        }
    }
}
