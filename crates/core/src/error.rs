//! Error type for the KEA pipeline.

use std::fmt;

/// Errors surfaced by KEA's modules.
#[derive(Debug, Clone, PartialEq)]
pub enum KeaError {
    /// The telemetry window held no usable observations for a group.
    NoObservations {
        /// Description of what was being looked for.
        what: String,
    },
    /// A model failed to fit.
    Model(kea_ml::MlError),
    /// A statistical routine failed.
    Stats(kea_stats::StatsError),
    /// The optimizer failed.
    Opt(kea_opt::OptError),
    /// An experiment design could not be realised (e.g. not enough
    /// machines in a rack for the ideal setting).
    Design(String),
    /// A guardrail rejected a deployment.
    GuardrailViolated(String),
}

impl fmt::Display for KeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeaError::NoObservations { what } => write!(f, "no observations: {what}"),
            KeaError::Model(e) => write!(f, "model fitting failed: {e}"),
            KeaError::Stats(e) => write!(f, "statistical analysis failed: {e}"),
            KeaError::Opt(e) => write!(f, "optimization failed: {e}"),
            KeaError::Design(msg) => write!(f, "experiment design infeasible: {msg}"),
            KeaError::GuardrailViolated(msg) => write!(f, "guardrail violated: {msg}"),
        }
    }
}

impl std::error::Error for KeaError {}

impl From<kea_ml::MlError> for KeaError {
    fn from(e: kea_ml::MlError) -> Self {
        KeaError::Model(e)
    }
}

impl From<kea_stats::StatsError> for KeaError {
    fn from(e: kea_stats::StatsError) -> Self {
        KeaError::Stats(e)
    }
}

impl From<kea_opt::OptError> for KeaError {
    fn from(e: kea_opt::OptError) -> Self {
        KeaError::Opt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: KeaError = kea_ml::MlError::SingularSystem.into();
        assert!(e.to_string().contains("singular"));
        let e: KeaError = kea_stats::StatsError::EmptyInput.into();
        assert!(e.to_string().contains("empty"));
        let e: KeaError = kea_opt::OptError::Infeasible.into();
        assert!(e.to_string().contains("infeasible"));
        let e = KeaError::NoObservations {
            what: "group (0,1)".to_string(),
        };
        assert!(e.to_string().contains("group (0,1)"));
    }
}
