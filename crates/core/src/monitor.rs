//! The Performance Monitor (§4.1).
//!
//! "Joins data from various Cosmos sources and calculates the performance
//! metrics of interest, providing a fundamental building block for all the
//! analysis." Our sources are the simulator's telemetry store; the monitor
//! adds the derived views every downstream module consumes: fleet-level
//! utilization series (Figure 1), per-group machine counts and utilization
//! (Figure 2), the scatter view (Figure 8), and daily training aggregates
//! (Figure 9).

use crate::error::KeaError;
use kea_stats::Summary;
use kea_telemetry::{
    daily_group_aggregates, scatter, DailyAggregate, GroupKey, Metric, ScatterPoint,
    TelemetryStore,
};

pub use kea_telemetry::GroupUtilization;

/// Read-only analytical facade over a telemetry window.
///
/// Every derived view delegates to the fused aggregation kernels of
/// `kea-telemetry`, which run over the store's sealed run + delta pair —
/// streaming appends land in the delta and queries merge the two sorted
/// sides, so a live window never pays a full index rebuild.
#[derive(Debug)]
pub struct PerformanceMonitor<'a> {
    store: &'a TelemetryStore,
}

impl<'a> PerformanceMonitor<'a> {
    /// Wraps a telemetry window.
    pub fn new(store: &'a TelemetryStore) -> Self {
        PerformanceMonitor { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &TelemetryStore {
        self.store
    }

    /// Fleet-wide mean of `metric` per hour — the Figure 1 series,
    /// served by the hour-indexed column kernel.
    ///
    /// # Errors
    /// The store must be non-empty.
    pub fn hourly_fleet_series(&self, metric: Metric) -> Result<Vec<(u64, f64)>, KeaError> {
        let series = kea_telemetry::hourly_fleet_series(self.store, metric);
        if series.is_empty() {
            return Err(KeaError::NoObservations {
                what: "empty telemetry store".to_string(),
            });
        }
        Ok(series)
    }

    /// Machine counts and mean utilization per group — Figure 2's two
    /// panels, sorted by group key (i.e. hardware generation). Served by
    /// the per-group-partition kernel (contiguous column sums plus a
    /// dense-id seen-bitmap for the machine counts).
    pub fn group_utilization(&self) -> Vec<GroupUtilization> {
        kea_telemetry::group_utilization(self.store)
    }

    /// The scatter view of Figure 8 for one group.
    pub fn scatter_view(
        &self,
        group: GroupKey,
        x_metric: Metric,
        y_metric: Metric,
    ) -> Vec<ScatterPoint> {
        scatter(self.store, group, x_metric, y_metric)
    }

    /// Daily per-machine aggregates — the training rows of §5.2.1.
    pub fn daily_aggregates(&self) -> Vec<DailyAggregate> {
        daily_group_aggregates(self.store)
    }

    /// Distribution summary of a metric for one group.
    ///
    /// # Errors
    /// The group must have observations.
    pub fn group_metric_summary(
        &self,
        group: GroupKey,
        metric: Metric,
    ) -> Result<Summary, KeaError> {
        kea_telemetry::group_summary(self.store, group, metric).ok_or_else(|| {
            KeaError::NoObservations {
                what: format!("group {group:?} metric {metric}"),
            }
        })
    }

    /// Cluster-wide mean of a metric over `[start_hour, end_hour)`,
    /// weighting every machine-hour equally (the paper's roll-out
    /// evaluation unit).
    ///
    /// # Errors
    /// The window must contain observations.
    pub fn window_mean(
        &self,
        metric: Metric,
        start_hour: u64,
        end_hour: u64,
    ) -> Result<f64, KeaError> {
        let mut sum = 0.0;
        let mut n = 0u64;
        for rec in self.store.by_hours(start_hour, end_hour) {
            sum += metric.value(&rec.metrics);
            n += 1;
        }
        if n == 0 {
            return Err(KeaError::NoObservations {
                what: format!("window [{start_hour}, {end_hour}) for {metric}"),
            });
        }
        Ok(sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kea_telemetry::{MachineHourRecord, MachineId, MetricValues, ScId, SkuId};

    fn store() -> TelemetryStore {
        let mut s = TelemetryStore::new();
        for m in 0..4u32 {
            for h in 0..10u64 {
                let sku = if m < 2 { 0 } else { 1 };
                s.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: GroupKey::new(SkuId(sku), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        cpu_utilization: 50.0 + sku as f64 * 10.0 + h as f64,
                        avg_running_containers: 5.0 + sku as f64,
                        total_data_read_gb: 10.0 * (h + 1) as f64,
                        ..Default::default()
                    },
                });
            }
        }
        s
    }

    #[test]
    fn fleet_series_has_one_point_per_hour() {
        let s = store();
        let mon = PerformanceMonitor::new(&s);
        let series = mon.hourly_fleet_series(Metric::CpuUtilization).unwrap();
        assert_eq!(series.len(), 10);
        // Hour 0: mean of 50,50,60,60 = 55.
        assert!((series[0].1 - 55.0).abs() < 1e-12);
        // Increasing by 1 per hour.
        assert!((series[9].1 - 64.0).abs() < 1e-12);
    }

    #[test]
    fn fleet_series_empty_store_errors() {
        let s = TelemetryStore::new();
        let mon = PerformanceMonitor::new(&s);
        assert!(mon.hourly_fleet_series(Metric::CpuUtilization).is_err());
    }

    #[test]
    fn group_utilization_counts_machines() {
        let s = store();
        let mon = PerformanceMonitor::new(&s);
        let groups = mon.group_utilization();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].machines, 2);
        assert_eq!(groups[1].machines, 2);
        assert!(groups[1].mean_cpu_utilization > groups[0].mean_cpu_utilization);
        assert!((groups[0].mean_running_containers - 5.0).abs() < 1e-12);
    }

    #[test]
    fn window_mean_and_errors() {
        let s = store();
        let mon = PerformanceMonitor::new(&s);
        let m = mon.window_mean(Metric::TotalDataRead, 0, 1).unwrap();
        assert!((m - 10.0).abs() < 1e-12);
        assert!(mon.window_mean(Metric::TotalDataRead, 50, 60).is_err());
    }

    #[test]
    fn scatter_and_daily_views_delegate() {
        let s = store();
        let mon = PerformanceMonitor::new(&s);
        let pts = mon.scatter_view(
            GroupKey::new(SkuId(0), ScId(1)),
            Metric::CpuUtilization,
            Metric::TotalDataRead,
        );
        assert_eq!(pts.len(), 20);
        let daily = mon.daily_aggregates();
        assert_eq!(daily.len(), 4, "4 machines × 1 day");
        let summary = mon
            .group_metric_summary(GroupKey::new(SkuId(0), ScId(1)), Metric::CpuUtilization)
            .unwrap();
        assert_eq!(summary.count, 20);
        assert!(mon
            .group_metric_summary(GroupKey::new(SkuId(7), ScId(1)), Metric::CpuUtilization)
            .is_err());
    }
}
