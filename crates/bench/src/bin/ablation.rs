//! Quality ablations for the design choices called out in DESIGN.md.
//!
//! ```text
//! cargo run --release -p kea-bench --bin ablation -- all
//! cargo run --release -p kea-bench --bin ablation -- huber designs
//! ```
//!
//! Unlike the criterion benches (runtime), these compare *result quality*
//! across design alternatives:
//!
//! * `huber` — Huber vs OLS slope recovery under outlier contamination
//! * `modes` — observational tuning vs naive experimental search: cost
//!   in production-experiment hours for comparable gains
//! * `designs` — ideal vs hybrid vs time-slicing: bias and variance of
//!   the estimated SC2 effect
//! * `backlog` — with vs without the opportunistic backlog: is cluster
//!   throughput elastic in capacity?

use kea_bench::Report;
use kea_core::apps::sc_selection::{run_sc_selection, ScSelectionParams};
use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::{
    analyze, hybrid_groups, optimize_max_containers, time_slices, MachineSplit,
    OperatingPoint, PerformanceMonitor,
};
use kea_ml::LinearModel1D;
use kea_sim::{
    run, ClusterSpec, ConfigPatch, ConfigPlan, Flight, SimConfig, WorkloadSpec, SC1, SC2,
};
use kea_telemetry::{MachineId, Metric, SkuId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);
    if want("huber") {
        huber_vs_ols().print();
    }
    if want("modes") {
        tuning_modes().print();
    }
    if want("designs") {
        experiment_designs().print();
    }
    if want("backlog") {
        backlog_elasticity().print();
    }
}

/// Huber vs OLS slope recovery as gross outliers contaminate telemetry
/// (machines draining for repair): the reason §5.2.1 uses Huber.
fn huber_vs_ols() -> Report {
    let mut r = Report::new(
        "Ablation: Huber vs OLS under contamination",
        "§5.2.1 picks Huber because it is robust to outliers",
    );
    r.headers(&["huber |err|", "ols |err|", "huber wins"]);
    let mut rng = StdRng::seed_from_u64(404);
    for contamination in [0.0, 0.05, 0.10, 0.20] {
        let mut huber_err = 0.0;
        let mut ols_err = 0.0;
        let trials = 20;
        for _ in 0..trials {
            // Ground truth y = 10 + 2x with noise; contaminated points
            // jump by +50..150 (a draining machine reporting nonsense).
            let xs: Vec<f64> = (0..300).map(|i| i as f64 * 0.2).collect();
            let ys: Vec<f64> = xs
                .iter()
                .map(|&x| {
                    let mut y = 10.0 + 2.0 * x + rng.gen_range(-1.0..1.0);
                    if rng.gen_range(0.0..1.0) < contamination {
                        y += rng.gen_range(50.0..150.0);
                    }
                    y
                })
                .collect();
            let huber = LinearModel1D::fit_huber(&xs, &ys).expect("fits");
            let ols = LinearModel1D::fit_ols(&xs, &ys).expect("fits");
            huber_err += (huber.slope() - 2.0).abs();
            ols_err += (ols.slope() - 2.0).abs();
        }
        huber_err /= trials as f64;
        ols_err /= trials as f64;
        r.row(
            &format!("contamination {:>2.0}%", contamination * 100.0),
            vec![huber_err, ols_err, f64::from(u8::from(huber_err <= ols_err))],
        );
    }
    r.note("at 0% both are fine; from 5% up Huber's slope error stays an order of magnitude lower".to_string());
    r
}

/// Observational tuning (model + LP from one passive window) vs a naive
/// experimental search that perturbs the config and measures each
/// candidate in production. The currency is *production experiment
/// hours* — the thing §5 says is prohibitively expensive at scale.
fn tuning_modes() -> Report {
    let cluster = ClusterSpec::tiny();
    let occupancy = 1.02;
    let mut r = Report::new(
        "Ablation: observational vs experimental tuning",
        "observational tuning avoids rounds of production experiments (§4.2/§5)",
    );
    r.headers(&["pred. gain %", "experiment h", "configs tried"]);

    // Observational: one passive window (it would exist anyway), then
    // model + LP. Zero experiment hours.
    let out = run(&SimConfig {
        cluster: cluster.clone(),
        workload: WorkloadSpec::default_for(&cluster, occupancy),
        plan: ConfigPlan::baseline(&cluster.skus, SC1),
        duration_hours: 48,
        seed: 500,
        task_log_every: 0,
        adhoc_job_log_every: 0,
    });
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let engine =
        WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24).expect("fits");
    let counts: BTreeMap<_, _> = monitor
        .group_utilization()
        .into_iter()
        .map(|g| (g.group, g.machines))
        .collect();
    let opt = optimize_max_containers(&engine, &counts, 1.0, OperatingPoint::Median)
        .expect("solvable");
    r.row(
        "observational (model+LP)",
        vec![opt.predicted_capacity_gain * 100.0, 0.0, 1.0],
    );

    // Experimental: greedy ±1 search, each candidate measured with a
    // 24-hour production deployment. Objective: total containers at a
    // latency no worse than baseline.
    let mut rng = StdRng::seed_from_u64(501);
    let baseline = ConfigPlan::baseline(&cluster.skus, SC1);
    let measure = |plan: &ConfigPlan, seed: u64| -> (f64, f64) {
        let out = run(&SimConfig {
            cluster: cluster.clone(),
            workload: WorkloadSpec::default_for(&cluster, occupancy),
            plan: plan.clone(),
            duration_hours: 24,
            seed,
            task_log_every: 0,
            adhoc_job_log_every: 0,
        });
        let mon = PerformanceMonitor::new(&out.telemetry);
        (
            mon.window_mean(Metric::AverageRunningContainers, 2, 24)
                .expect("telemetry"),
            mon.window_mean(Metric::AverageTaskLatency, 2, 24)
                .expect("telemetry"),
        )
    };
    let (base_cap, base_lat) = measure(&baseline, 510);
    let mut best = baseline.clone();
    let (mut best_cap, mut experiment_hours, mut tried) = (base_cap, 24.0, 1u32);
    for round in 0..6 {
        let mut candidate = best.clone();
        let sku = SkuId(rng.gen_range(0..cluster.skus.len() as u16));
        let cur = candidate.base[&sku].max_running_containers;
        let delta: i64 = if rng.gen_range(0.0..1.0) < 0.5 { 1 } else { -1 };
        candidate.set_max_containers(sku, (cur as i64 + delta).max(1) as u32);
        let (cap, lat) = measure(&candidate, 520 + round);
        experiment_hours += 24.0;
        tried += 1;
        if cap > best_cap && lat <= base_lat * 1.02 {
            best = candidate;
            best_cap = cap;
        }
    }
    r.row(
        "experimental (greedy ±1)",
        vec![
            (best_cap / base_cap - 1.0) * 100.0,
            experiment_hours,
            tried as f64,
        ],
    );
    r.note("the experimental column's hours are live production deployments; the paper's clusters need weeks per configuration and cannot afford bad candidates".to_string());
    r
}

/// Compares the three §7 experiment settings estimating the same known
/// effect (SC2 vs SC1) with the same machine budget: the ideal setting
/// has the least variance, time-slicing pays for workload drift.
fn experiment_designs() -> Report {
    let cluster = ClusterSpec::small();
    let mut r = Report::new(
        "Ablation: ideal vs hybrid vs time-slicing designs",
        "§7: the ideal setting controls workload best; time-slicing suffers drift",
    );
    r.headers(&["mean est %", "std across seeds", "seeds"]);
    let seeds = [600u64, 601, 602, 603, 604];
    let hours = 36;
    let warmup = 4;

    // Ideal: alternate machines of the Gen 1.1 racks.
    let mut ideal_estimates = Vec::new();
    for &seed in &seeds {
        let params = ScSelectionParams {
            cluster: cluster.clone(),
            sku: SkuId(0),
            n_racks: 2,
            duration_hours: hours,
            warmup_hours: warmup,
            seed,
        };
        let outcome = run_sc_selection(&params).expect("runs");
        ideal_estimates.push(outcome.table4[0].change_pct);
    }
    push_summary(&mut r, "ideal (every other machine)", &ideal_estimates);

    // Hybrid: two disjoint random groups of the same SKU, one flighted
    // to SC2 for the full window.
    let mut hybrid_estimates = Vec::new();
    for &seed in &seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let groups =
            hybrid_groups(&cluster, SkuId(0), 2, 14, &mut rng).expect("enough machines");
        let mut plan = ConfigPlan::baseline(&cluster.skus, SC1);
        plan.add_flight(Flight {
            label: "sc2".into(),
            machines: groups[1].clone(),
            start_hour: 0,
            end_hour: hours,
            patch: ConfigPatch {
                sc: Some(SC2),
                ..Default::default()
            },
        });
        let out = run(&SimConfig {
            cluster: cluster.clone(),
            workload: WorkloadSpec::default_for(&cluster, 0.95),
            plan,
            duration_hours: hours,
            seed,
            task_log_every: 0,
            adhoc_job_log_every: 0,
        });
        let split = MachineSplit {
            control: groups[0].clone(),
            treatment: groups[1].clone(),
        };
        let res = analyze(&out.telemetry, &split, warmup, hours, Metric::TotalDataRead)
            .expect("analyzable");
        hybrid_estimates.push(res.effect.percent_change());
    }
    push_summary(&mut r, "hybrid (separate groups)", &hybrid_estimates);

    // Time-slicing: the same machines alternate SC1/SC2 in 5-hour slices
    // (the interval the paper names); estimate = treatment-slice mean vs
    // control-slice mean. Workload drift between slices is the noise.
    let mut slicing_estimates = Vec::new();
    for &seed in &seeds {
        let machines: BTreeSet<MachineId> = cluster
            .machines_of_sku(SkuId(0))
            .take(28)
            .map(|m| m.id)
            .collect();
        let slices = time_slices(hours, 5).expect("valid schedule");
        let mut plan = ConfigPlan::baseline(&cluster.skus, SC1);
        for slice in &slices {
            if slice.treatment {
                plan.add_flight(Flight {
                    label: "sc2-slice".into(),
                    machines: machines.clone(),
                    start_hour: slice.start_hour,
                    end_hour: slice.end_hour,
                    patch: ConfigPatch {
                        sc: Some(SC2),
                        ..Default::default()
                    },
                });
            }
        }
        let out = run(&SimConfig {
            cluster: cluster.clone(),
            workload: WorkloadSpec::default_for(&cluster, 0.95),
            plan,
            duration_hours: hours,
            seed,
            task_log_every: 0,
            adhoc_job_log_every: 0,
        });
        let res = kea_core::analyze_time_slices(
            &out.telemetry,
            &machines,
            &slices,
            warmup,
            Metric::TotalDataRead,
        )
        .expect("slices analyzable");
        slicing_estimates.push(res.effect.percent_change());
    }
    push_summary(&mut r, "time-slicing (5h slices)", &slicing_estimates);
    r.note("all three see a positive SC2 effect; the spread across seeds is the design's noise floor".to_string());
    r
}

fn push_summary(r: &mut Report, label: &str, estimates: &[f64]) {
    let n = estimates.len() as f64;
    let mean = estimates.iter().sum::<f64>() / n;
    let var = estimates.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / (n - 1.0);
    r.row(label, vec![mean, var.sqrt(), n]);
}

/// With the opportunistic backlog, cluster throughput responds to extra
/// container capacity; without it, throughput is demand-bound and the
/// knob is inert — the substitution DESIGN.md documents.
fn backlog_elasticity() -> Report {
    let cluster = ClusterSpec::tiny();
    let mut r = Report::new(
        "Ablation: throughput elasticity with/without the backlog",
        "real clusters run opportunistic work; without it, capacity changes cannot move Total Data Read",
    );
    r.headers(&["base GB/h", "+2 cont GB/h", "change %"]);
    for (label, with_backlog) in [("with backlog", true), ("open-loop only", false)] {
        let workload = {
            let w = WorkloadSpec::default_for(&cluster, 1.02);
            if with_backlog {
                w
            } else {
                w.without_backlog()
            }
        };
        let measure = |plan: ConfigPlan| {
            let out = run(&SimConfig {
                cluster: cluster.clone(),
                workload: workload.clone(),
                plan,
                duration_hours: 48,
                seed: 700,
                task_log_every: 0,
                adhoc_job_log_every: 0,
            });
            PerformanceMonitor::new(&out.telemetry)
                .window_mean(Metric::TotalDataRead, 4, 48)
                .expect("telemetry")
        };
        let base = measure(ConfigPlan::baseline(&cluster.skus, SC1));
        let mut tuned_plan = ConfigPlan::baseline(&cluster.skus, SC1);
        for sku in &cluster.skus {
            tuned_plan.set_max_containers(sku.id, sku.default_max_containers + 2);
        }
        let tuned = measure(tuned_plan);
        r.row(label, vec![base, tuned, (tuned / base - 1.0) * 100.0]);
    }
    r.note("the +2-containers probe is a pure capacity increase; only the backlogged cluster converts it into throughput".to_string());
    r
}
