//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p kea-bench --bin repro -- all          # everything
//! cargo run --release -p kea-bench --bin repro -- fig9 fig10   # a subset
//! cargo run --release -p kea-bench --bin repro -- --full all   # headline scale
//! ```

use kea_bench::experiments::ALL;
use kea_bench::ExperimentScale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::Quick;
    let mut names: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--full" => scale = ExperimentScale::Full,
            "--quick" => scale = ExperimentScale::Quick,
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() || names.iter().any(|n| n == "all") {
        names = ALL.iter().map(|(n, _)| n.to_string()).collect();
    }
    let mut unknown = Vec::new();
    for name in &names {
        match ALL.iter().find(|(n, _)| n == name) {
            Some((_, f)) => {
                let started = std::time::Instant::now();
                let report = f(scale);
                report.print();
                println!("  ({}; {:.1?})", name, started.elapsed());
            }
            None => unknown.push(name.clone()),
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiments: {unknown:?}; available: {:?}",
            ALL.iter().map(|(n, _)| *n).collect::<Vec<_>>()
        );
        std::process::exit(2);
    }
}
