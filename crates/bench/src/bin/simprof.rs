//! Quick wall-clock profiling of the simulation engines at arbitrary
//! scale, without the bench harness. Useful for calibrating `sim_scale`
//! fixtures and for before/after checks on engine changes.
//!
//! ```text
//! simprof <engine> [machines] [hours] [coarsen] [shards] [flight_pct]
//!   engine     reference | fleet | federated
//!   machines   target machine count (default 64000)
//!   hours      simulated duration   (default 24)
//!   coarsen    scaled_tasks factor  (default 8)
//!   shards     worker count for `federated` (default 4; 0 = per-domain)
//!   flight_pct percent of machines under active flights (default 0)
//!   n_flights  number of concurrent flights sharing that share (default 1)
//! ```

use kea_sim::engine::reference;
use kea_sim::{run_with_exec, ClusterSpec, ConfigPatch, ExecConfig, Flight, SimConfig, SC2};
use kea_telemetry::MachineId;
use std::collections::BTreeSet;
use std::time::Instant;

fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let engine = std::env::args().nth(1).unwrap_or_else(|| "fleet".into());
    let machines: u32 = arg(2, 64_000);
    let hours: u64 = arg(3, 24);
    let coarsen: u32 = arg(4, 8);
    let shards: usize = arg(5, 4);
    let flight_pct: u32 = arg(6, 0);
    let n_flights: u32 = arg(7, 1);

    let mut skus = kea_sim::default_skus(1);
    let base: u32 = skus.iter().map(|s| s.machine_count).sum();
    let mult = machines.div_ceil(base).max(1);
    for s in &mut skus {
        s.machine_count *= mult;
    }
    let cluster = ClusterSpec::build(skus, 8);
    let mut cfg = SimConfig::baseline(cluster, hours, 4242);
    cfg.workload = cfg.workload.scaled_tasks(coarsen);
    cfg.task_log_every = 1_000;
    cfg.adhoc_job_log_every = 64;
    if flight_pct > 0 {
        // `n_flights` disjoint machine sets jointly covering `flight_pct`
        // percent of the fleet, each with its own patch — the shape of a
        // production tuning service running several A/B tests at once.
        let step = (100 * n_flights.max(1) / flight_pct.clamp(1, 100)).max(1) as usize;
        for f in 0..n_flights.max(1) as usize {
            let targets: BTreeSet<MachineId> = cfg
                .cluster
                .machines
                .iter()
                .skip(f)
                .step_by(step)
                .map(|m| m.id)
                .collect();
            cfg.plan.add_flight(Flight {
                label: format!("simprof-flight-{f}"),
                machines: targets,
                start_hour: hours / 4,
                end_hour: hours - hours / 4,
                patch: ConfigPatch {
                    power_cap_fraction: Some(0.05 + 0.05 * (f % 3) as f64),
                    feature_on: Some(f % 2 == 0),
                    sc: Some(SC2),
                    ..ConfigPatch::default()
                },
            });
        }
    }
    println!(
        "fixture: {} machines, {} h, coarsen {coarsen}, engine {engine}, flight {flight_pct}%",
        cfg.cluster.n_machines(),
        hours
    );

    let t0 = Instant::now();
    let out = match engine.as_str() {
        "reference" => reference::run(&cfg),
        "fleet" => run_with_exec(
            &cfg,
            ExecConfig {
                shards: 1,
                emit_window_hours: 24,
            },
        ),
        _ => run_with_exec(
            &cfg,
            ExecConfig {
                shards,
                emit_window_hours: 24,
            },
        ),
    };
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "wall {dt:.2}s  tasks {}  tasks/s {:.0}  records {}  jobs {}",
        out.counters.total,
        out.counters.total as f64 / dt,
        out.telemetry.len(),
        out.jobs.len()
    );
}
