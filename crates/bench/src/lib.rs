//! Reproduction harness for the KEA paper's evaluation.
//!
//! Every table and figure in the paper's evaluation maps to a module in
//! [`experiments`]; `cargo run --release -p kea-bench --bin repro -- all`
//! regenerates the full set, printing the same rows/series the paper
//! reports. `EXPERIMENTS.md` at the repository root records
//! paper-vs-measured for each.
//!
//! Absolute numbers differ from the paper — the substrate is a simulator,
//! not the Cosmos production fleet — but the *shape* of every result
//! (who wins, directionality, where crossovers fall) is the reproduction
//! target.

pub mod common;
pub mod experiments;

pub use common::{ExperimentScale, Report};
