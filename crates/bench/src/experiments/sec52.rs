//! §5.2.2 — flighting pilots and the production roll-out: +9% Total Data
//! Read at the same latency, +2% sellable capacity, t = 4.45 / 7.13.

use crate::common::{ExperimentScale, Report};
use kea_core::apps::yarn_config::{run_yarn_tuning, YarnTuningParams};
use kea_core::FlightingTool;
use kea_core::experiment::{analyze, MachineSplit};
use kea_sim::{
    engine::run as run_sim, ClusterSpec, ConfigPatch, ConfigPlan, SimConfig, SubClusterId,
    WorkloadSpec, SC1,
};
use kea_telemetry::{MachineId, Metric, SkuId};
use std::collections::BTreeSet;

/// Regenerates the §5.2.2 numbers: the first two pilot flights (config
/// effectiveness checks) and the full roll-out treatment effects.
pub fn run(scale: ExperimentScale) -> Report {
    let cluster = scale.cluster();
    let mut r = Report::new(
        "Section 5.2.2: pilots and production roll-out",
        "+9% Total Data Read at same latency; +2% capacity; t = 4.45 / 7.13",
    );

    // ---- Pilot flights 1 & 2: does the knob actually move the metric? --
    let (p1, p2) = pilot_flights(&cluster, 29);
    r.headers(&["change % / thr", "t / lat", "- / cap"]);
    r.row("pilot 1: Gen1.1 max-1, containers", vec![p1.0, p1.1, f64::NAN]);
    r.row("pilot 2: Gen4.1 max+4, containers", vec![p2.0, p2.1, f64::NAN]);

    // ---- Pilots 3 & 4: sub-cluster validation ---------------------------
    // Deploy the tuned configuration to one sub-cluster and compare its
    // throughput against an untouched sub-cluster over the same window
    // ("the third piloting experiment was on two sub-clusters … the
    // fourth validated the benefits of tuning").
    let (p3_thr, p3_t) = subcluster_pilot(&cluster, 31);
    r.row("pilot 3+4: tuned sub-cluster thr", vec![p3_thr, p3_t, f64::NAN]);

    // ---- Full roll-out -------------------------------------------------
    // The paper evaluates one cluster over a month; a scaled-down world
    // lacks that statistical power, so we pool several independent
    // simulated worlds (seeds) and report per-seed plus mean effects.
    let seeds: &[u64] = match scale {
        ExperimentScale::Quick => &[30, 31, 32, 33],
        ExperimentScale::Full => &[30, 31],
    };
    let mut thr = Vec::new();
    let mut lat = Vec::new();
    let mut cap = Vec::new();
    let mut approved = 0;
    for &seed in seeds {
        let mut params = YarnTuningParams::quick(cluster.clone(), seed);
        params.observe_hours = scale.observe_hours();
        params.eval_hours = scale.observe_hours();
        let outcome = run_yarn_tuning(&params).expect("pipeline runs");
        r.row(
            &format!("rollout[{seed}]: thr/lat/cap %"),
            vec![
                outcome.throughput_change_pct,
                outcome.latency_change_pct,
                outcome.capacity_change_pct,
            ],
        );
        thr.push(outcome.throughput_change_pct);
        lat.push(outcome.latency_change_pct);
        cap.push(outcome.capacity_change_pct);
        approved += u32::from(outcome.deployment.approved);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    r.row(
        "rollout MEAN: thr/lat/cap %",
        vec![mean(&thr), mean(&lat), mean(&cap)],
    );
    r.note(format!(
        "latency guardrail passed in {approved}/{} worlds (≤ +2% at α = 0.05)",
        seeds.len()
    ));
    r.note(
        "paper: +9% Total Data Read, ~0% latency, +2% capacity; direction is the repro target"
            .to_string(),
    );
    // §5.3: convert the mean capacity gain into money at the paper's
    // fleet scale (300k machines).
    let mut skus = kea_sim::default_skus(1);
    for s in &mut skus {
        s.machine_count *= 200;
    }
    let fleet = ClusterSpec::build(skus, 3);
    if let Ok(value) = kea_core::capacity_gain_value(
        &fleet,
        &kea_core::FleetCostModel::default(),
        mean(&cap) / 100.0,
        260.0,
    ) {
        r.note(format!(
            "at the paper's 300k-machine scale, a {:+.2}% capacity gain is worth ${:.1}M/year (paper: tens of millions)",
            mean(&cap),
            value.total_per_year / 1e6
        ));
    }
    r
}

/// Pilots 3 & 4: apply a conservative tuned configuration (slow SKUs −1,
/// fast SKUs +1) to sub-cluster 0 only, and compare its Total Data Read
/// against sub-cluster 1 over the same saturated window. Returns
/// (throughput change %, t).
fn subcluster_pilot(cluster: &ClusterSpec, seed: u64) -> (f64, f64) {
    let hours = 30;
    let warmup = 4;
    let sub0: BTreeSet<MachineId> = cluster
        .machines_of_subcluster(SubClusterId(0))
        .map(|m| m.id)
        .collect();
    let sub1: BTreeSet<MachineId> = cluster
        .machines_of_subcluster(SubClusterId(1))
        .map(|m| m.id)
        .collect();
    let mut plan = ConfigPlan::baseline(&cluster.skus, SC1);
    for sku in &cluster.skus {
        // The Figure-10 direction, applied wholesale: oldest two SKUs
        // down one, newest three up one.
        let delta: i64 = match sku.id.0 {
            0 | 1 => -1,
            2 => 0,
            _ => 1,
        };
        if delta == 0 {
            continue;
        }
        let targets: BTreeSet<MachineId> = sub0
            .iter()
            .copied()
            .filter(|id| cluster.machine(*id).sku == sku.id)
            .collect();
        if targets.is_empty() {
            continue;
        }
        let new_max = (sku.default_max_containers as i64 + delta).max(1) as u32;
        plan.add_flight(
            kea_core::FlightingTool::flight(
                &format!("pilot3-{}", sku.name),
                targets,
                0,
                hours,
                ConfigPatch {
                    max_running_containers: Some(new_max),
                    ..Default::default()
                },
            )
            .expect("valid flight"),
        );
    }
    let out = run_sim(&SimConfig {
        cluster: cluster.clone(),
        workload: WorkloadSpec::default_for(cluster, 1.05),
        plan,
        duration_hours: hours,
        seed,
        task_log_every: 0,
        adhoc_job_log_every: 0,
    });
    let split = MachineSplit {
        control: sub1,
        treatment: sub0,
    };
    let res = analyze(&out.telemetry, &split, warmup, hours, Metric::TotalDataRead)
        .expect("sub-clusters populated");
    (res.effect.percent_change(), res.effect.test.t)
}

/// Pilots 1 and 2: flight a max-container change on one SKU's machines
/// and verify the observed running containers move accordingly.
/// Returns ((pilot1 change %, t), (pilot2 change %, t)).
fn pilot_flights(cluster: &ClusterSpec, seed: u64) -> ((f64, f64), (f64, f64)) {
    let hours = 48;
    let mut plan = ConfigPlan::baseline(&cluster.skus, SC1);
    let gen11: BTreeSet<MachineId> = cluster
        .machines_of_sku(SkuId(0))
        .take(40)
        .map(|m| m.id)
        .collect();
    let gen41: BTreeSet<MachineId> = cluster
        .machines_of_sku(SkuId(5))
        .take(40)
        .map(|m| m.id)
        .collect();
    let old_max_11 = plan.base[&SkuId(0)].max_running_containers;
    let old_max_41 = plan.base[&SkuId(5)].max_running_containers;
    plan.add_flight(
        FlightingTool::flight(
            "pilot-1",
            gen11.clone(),
            hours / 2,
            hours,
            ConfigPatch {
                max_running_containers: Some(old_max_11 - 1),
                ..Default::default()
            },
        )
        .expect("valid flight"),
    );
    plan.add_flight(
        FlightingTool::flight(
            "pilot-2",
            gen41.clone(),
            hours / 2,
            hours,
            ConfigPatch {
                max_running_containers: Some(old_max_41 + 4),
                ..Default::default()
            },
        )
        .expect("valid flight"),
    );
    let out = run_sim(&SimConfig {
        cluster: cluster.clone(),
        workload: WorkloadSpec::default_for(cluster, 1.05),
        plan: plan.clone(),
        duration_hours: hours,
        seed,
        task_log_every: 0,
        adhoc_job_log_every: 0,
    });
    let eff = |machines: &BTreeSet<MachineId>, flight_idx: usize| {
        let e = FlightingTool::before_after(
            &out.telemetry,
            &plan.flights[flight_idx],
            2,
            Metric::AverageRunningContainers,
        )
        .expect("windows populated");
        let _ = machines;
        (e.percent_change(), e.test.t)
    };
    (eff(&gen11, 0), eff(&gen41, 1))
}
