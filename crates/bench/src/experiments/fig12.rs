//! Figure 12 — number of queued containers and p99 queueing latency per
//! SKU: faster machines de-queue faster, so queues differ sharply.

use crate::common::{observe, ExperimentScale, Report};
use kea_sim::SC1;
use kea_telemetry::{GroupKey, Metric};

/// Regenerates the queueing panels. Queues only exist under saturation,
/// so this experiment runs at elevated demand (the regime the paper's
/// discussion §5.3 targets).
pub fn run(scale: ExperimentScale) -> Report {
    let cluster = scale.cluster();
    let out = observe(&cluster, 1.02, scale.observe_hours().min(72), 31);
    let mut r = Report::new(
        "Figure 12: queued containers & p99 queueing latency per SKU",
        "queue length and latency vary significantly across SKUs",
    );
    r.headers(&["mean queued", "p99 wait ms", "machine-hours"]);
    for sku in &cluster.skus {
        let group = GroupKey::new(sku.id, SC1);
        let recs: Vec<_> = out
            .telemetry
            .by_group(group)
            .filter(|rec| rec.hour >= 4)
            .collect();
        let mean_q = recs
            .iter()
            .map(|rec| Metric::QueuedContainers.value(&rec.metrics))
            .sum::<f64>()
            / recs.len() as f64;
        // p99 of the hourly p99s is noisy; report the mean of non-zero
        // hourly p99s, which tracks the paper's per-SKU ordering.
        let waits: Vec<f64> = recs
            .iter()
            .map(|rec| Metric::QueueLatencyP99.value(&rec.metrics))
            .filter(|w| *w > 0.0)
            .collect();
        let mean_wait = if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<f64>() / waits.len() as f64
        };
        r.row(&sku.name, vec![mean_q, mean_wait, recs.len() as f64]);
    }
    r.note("slower generations hold longer queues and higher p99 waits — the headroom the queue-length tuning of §5.3 exploits".to_string());
    r
}
