//! §5.3 extension — queue-length tuning: "as faster machines have faster
//! de-queue rate, we can allow more containers to be queued on them".

use crate::common::{ExperimentScale, Report};
use kea_core::apps::queue_tuning::{run_queue_tuning, QueueTuningParams};

/// Regenerates the queue-tuning study: per-group caps and the before/
/// after p99-wait distribution.
pub fn run(scale: ExperimentScale) -> Report {
    let mut params = QueueTuningParams::quick(scale.cluster(), 37);
    params.window_hours = match scale {
        ExperimentScale::Quick => 36,
        ExperimentScale::Full => 72,
    };
    let outcome = run_queue_tuning(&params).expect("queues exist at 1.1 occupancy");
    let mut r = Report::new(
        "Section 5.3: queue-length tuning (extension)",
        "allow more queued containers on faster machines to even out queueing latency",
    );
    r.headers(&["cap", "before p99 ms", "after p99 ms"]);
    for (model, row) in outcome.models.iter().zip(&outcome.rows) {
        r.row(
            &format!("sku {:?}", model.group.sku.0),
            vec![
                model.suggested_cap as f64,
                row.before_wait_ms,
                row.after_wait_ms,
            ],
        );
    }
    r.note(format!(
        "across-group p99 spread: {:.0} → {:.0} ms (target {:.0} ms); task latency {:+.2}%",
        outcome.wait_spread_before,
        outcome.wait_spread_after,
        outcome.target_wait_ms,
        outcome.task_latency_change_pct
    ));
    r
}
