//! Figure 5 — task execution time by SKU and critical-path membership:
//! tasks on slower machines are disproportionately likely to be on the
//! critical path.

use crate::common::{observe, ExperimentScale, Report, STANDARD_OCCUPANCY};
use kea_core::conceptualization::validate_critical_path;

/// Regenerates Figure 5's per-SKU panels.
pub fn run(scale: ExperimentScale) -> Report {
    let cluster = scale.cluster();
    let out = observe(&cluster, STANDARD_OCCUPANCY, scale.observe_hours(), 23);
    let report = validate_critical_path(&cluster, &out).expect("tasks ran on every SKU");
    let mut r = Report::new(
        "Figure 5: task time & critical-path probability by SKU",
        "tasks on slower machines are more likely to be on the critical path",
    );
    r.headers(&["tasks", "mean dur s", "P(critical)"]);
    for stat in &report.by_sku {
        r.row(
            &stat.sku_name,
            vec![
                stat.tasks as f64,
                stat.mean_duration_s,
                stat.critical_probability,
            ],
        );
    }
    r.note(format!(
        "critical-path skew confirmed: {}",
        report.skew_confirmed
    ));
    r
}
