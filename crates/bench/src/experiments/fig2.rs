//! Figure 2 — machine count (left) and utilization (right) per hardware
//! generation: older generations are substantially more utilized.

use crate::common::{observe, ExperimentScale, Report, STANDARD_OCCUPANCY};
use kea_core::PerformanceMonitor;

/// Regenerates both panels of Figure 2.
pub fn run(scale: ExperimentScale) -> Report {
    let cluster = scale.cluster();
    let out = observe(&cluster, STANDARD_OCCUPANCY, scale.observe_hours(), 22);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let mut r = Report::new(
        "Figure 2: machines & utilization per generation",
        "older generations (tuned longer) are substantially more utilized",
    );
    r.headers(&["machines", "mean util %", "mean containers"]);
    for g in monitor.group_utilization() {
        let name = &cluster.sku(g.group.sku).name;
        r.row(
            name,
            vec![
                g.machines as f64,
                g.mean_cpu_utilization,
                g.mean_running_containers,
            ],
        );
    }
    let groups = monitor.group_utilization();
    let oldest = groups.first().expect("non-empty").mean_cpu_utilization;
    let newest = groups.last().expect("non-empty").mean_cpu_utilization;
    r.note(format!(
        "Gen 1.1 runs at {oldest:.1}% vs Gen 4.1 at {newest:.1}% — the manual-tuning gap KEA closes"
    ));
    r
}
