//! Figure 14 — expected cost with respect to different (SSD, RAM)
//! configurations for the future 128-core SKU: a sweet spot between
//! stranding penalties and idle-capacity waste.

use crate::common::{observe, ExperimentScale, Report, STANDARD_OCCUPANCY};
use kea_core::apps::sku_design::{run_sku_design, CostModel, SkuDesignParams};
use kea_core::PerformanceMonitor;
use kea_sim::SC1;
use kea_telemetry::{GroupKey, SkuId};

/// Regenerates the cost surface and the winning design.
pub fn run(scale: ExperimentScale) -> Report {
    let cluster = scale.cluster();
    let out = observe(&cluster, STANDARD_OCCUPANCY, scale.observe_hours(), 33);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let params = SkuDesignParams {
        source_group: GroupKey::new(SkuId(4), SC1),
        future_cores: 128,
        // Grids bracket the Figure 13 projection (~1.2 TB SSD, ~0.5 TB
        // RAM at 128 cores) so the sweet spot is interior.
        candidate_ssd_gb: vec![768.0, 1024.0, 1280.0, 1536.0, 2048.0, 3072.0],
        candidate_ram_gb: vec![384.0, 448.0, 512.0, 576.0, 640.0, 768.0],
        cost: CostModel::default(),
        draws: 1000,
        seed: 34,
    };
    let outcome = run_sku_design(&monitor, &params).expect("study runs");
    let mut r = Report::new(
        "Figure 14: expected cost per (SSD, RAM) design, 128-core SKU",
        "under-provisioning is dominated by stranding penalties; over-provisioning by idle cost; a sweet spot minimizes",
    );
    // Rows = SSD candidates, columns = RAM candidates (normalized cost).
    let headers: Vec<String> = params
        .candidate_ram_gb
        .iter()
        .map(|ram| format!("{ram:.0}GB RAM"))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    r.headers(&header_refs);
    let best_cost = outcome.best.expected_cost;
    for ssd in &params.candidate_ssd_gb {
        let cells: Vec<f64> = params
            .candidate_ram_gb
            .iter()
            .map(|ram| {
                outcome
                    .surface
                    .iter()
                    .find(|d| d.ssd_gb == *ssd && d.ram_gb == *ram)
                    .map(|d| d.expected_cost / best_cost)
                    .expect("full grid")
            })
            .collect();
        r.row(&format!("{ssd:.0}GB SSD"), cells);
    }
    r.note(format!(
        "sweet spot: {:.0} GB SSD, {:.0} GB RAM (normalized cost 1.0); usage models p: {:.1}+{:.2}c, q: {:.1}+{:.2}c from {} observations",
        outcome.best.ssd_gb,
        outcome.best.ram_gb,
        outcome.ssd_model.intercept(),
        outcome.ssd_model.slope(),
        outcome.ram_model.intercept(),
        outcome.ram_model.slope(),
        outcome.n_observations,
    ));
    r
}
