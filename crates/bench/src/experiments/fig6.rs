//! Figure 6 — task-type distributions across racks (left) and SKUs
//! (right) are very similar: machines fairly receive a representative
//! workload mix (the Level IV/V abstraction).

use crate::common::{observe, ExperimentScale, Report, STANDARD_OCCUPANCY};
use kea_core::conceptualization::validate_uniformity;
use kea_sim::{RackId, TaskType};

/// Regenerates Figure 6's two panels plus the deviation summary.
pub fn run(scale: ExperimentScale) -> Report {
    let cluster = scale.cluster();
    let out = observe(&cluster, STANDARD_OCCUPANCY, scale.observe_hours(), 24);
    let report =
        validate_uniformity(&cluster, &out, 500, 0.10).expect("tasks completed");
    let mut r = Report::new(
        "Figure 6: task-type shares across racks and SKUs",
        "distributions are very similar across racks and SKUs",
    );
    r.headers(&["Extract", "Process", "Aggregate", "Partition"]);
    r.row("cluster-wide", report.global_shares.to_vec());
    for sku in &cluster.skus {
        if let Some(shares) = out.counters.type_shares_by_sku(sku.id) {
            r.row(&format!("sku {}", sku.name), shares.to_vec());
        }
    }
    // A few representative racks.
    let mut shown = 0;
    for rack in 0..cluster.n_racks() {
        if let Some(shares) = out.counters.type_shares_by_rack(RackId(rack)) {
            r.row(&format!("rack {rack}"), shares.to_vec());
            shown += 1;
            if shown >= 4 {
                break;
            }
        }
    }
    r.note(format!(
        "max deviation from global mix: racks {:.3}, SKUs {:.3} (uniform: {})",
        report.max_rack_deviation, report.max_sku_deviation, report.uniform
    ));
    let _ = TaskType::ALL; // reporting order documented by the headers
    r
}
