//! Table 1 — Cosmos statistics, reproduced at simulator scale.

use crate::common::{observe, ExperimentScale, Report, STANDARD_OCCUPANCY};
use kea_sim::{engine::run as run_sim, ConfigPlan, SimConfig, WorkloadSpec, SC1};

/// Regenerates Table 1 on the simulated cluster (24-hour window, all jobs
/// logged so the per-day counts are exact).
pub fn run(scale: ExperimentScale) -> Report {
    let cluster = scale.cluster();
    let out = run_sim(&SimConfig {
        cluster: cluster.clone(),
        workload: WorkloadSpec::default_for(&cluster, STANDARD_OCCUPANCY),
        plan: ConfigPlan::baseline(&cluster.skus, SC1),
        duration_hours: 24,
        seed: 11,
        task_log_every: 0,
        adhoc_job_log_every: 1, // exact job counts
    });
    // Scale factor between our cluster and the paper's >45k machines.
    let scale_factor = 45_000.0 / cluster.n_machines() as f64;
    let mut r = Report::new(
        "Table 1: cluster statistics",
        ">600k jobs/day, >4B tasks/day, >45k machines/cluster (at 1:1 scale)",
    );
    r.headers(&["simulated", "x scale", "paper"]);
    let jobs = out.jobs.len() as f64 + out.jobs_in_flight_at_end as f64;
    let tasks = out.counters.total as f64 + out.tasks_in_flight_at_end as f64;
    r.row("jobs per day", vec![jobs, jobs * scale_factor, 600_000.0]);
    r.row(
        "tasks per day",
        vec![tasks, tasks * scale_factor, 4_000_000_000.0],
    );
    r.row(
        "machines per cluster",
        vec![cluster.n_machines() as f64, 45_000.0, 45_000.0],
    );
    r.row(
        "hardware generations",
        vec![cluster.skus.len() as f64, cluster.skus.len() as f64, 6.0],
    );
    r.note(format!(
        "simulated cluster is a 1:{:.0} scale model; scaled job volume is \
         workload-mix dependent, not calibrated to the paper's absolute count",
        scale_factor
    ));
    // Keep the quick/full distinction visible in the report.
    let _ = observe; // (observe() is used by sibling experiments)
    r
}
