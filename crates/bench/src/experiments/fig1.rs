//! Figure 1 — CPU utilization for a typical week (>60% average).

use crate::common::{observe, ExperimentScale, Report, STANDARD_OCCUPANCY};
use kea_core::PerformanceMonitor;
use kea_telemetry::Metric;

/// Regenerates the weekly utilization series. At Quick scale the window
/// is 48 hours; Full runs the paper's full week.
pub fn run(scale: ExperimentScale) -> Report {
    let cluster = scale.cluster();
    let hours = scale.observe_hours();
    let out = observe(&cluster, STANDARD_OCCUPANCY, hours, 21);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let series = monitor
        .hourly_fleet_series(Metric::CpuUtilization)
        .expect("non-empty telemetry");

    let mut r = Report::new(
        "Figure 1: CPU utilization for a typical week",
        ">60% average CPU utilization with diurnal swings",
    );
    r.headers(&["mean util %"]);
    // Print 6-hour resolution to keep the report readable.
    for chunk in series.chunks(6) {
        let mean = chunk.iter().map(|(_, u)| u).sum::<f64>() / chunk.len() as f64;
        r.row(&format!("hours {:>3}-{:>3}", chunk[0].0, chunk.last().unwrap().0), vec![mean]);
    }
    // Skip warm-up when reporting the average.
    let steady: Vec<f64> = series.iter().skip(4).map(|(_, u)| *u).collect();
    let avg = steady.iter().sum::<f64>() / steady.len() as f64;
    let min = steady.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = steady.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    r.note(format!(
        "steady-state average {avg:.1}% (paper: >60%), range {min:.1}%–{max:.1}%"
    ));
    r
}
