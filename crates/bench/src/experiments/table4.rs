//! Table 4 — performance metrics for the two software configurations:
//! SC2 (temp store on SSD) dominates SC1 (on HDD).

use crate::common::{ExperimentScale, Report};
use kea_core::apps::sc_selection::{run_sc_selection, ScSelectionParams};
use kea_telemetry::SkuId;

/// Regenerates Table 4 with the ideal every-other-machine setting.
pub fn run(scale: ExperimentScale) -> Report {
    let params = ScSelectionParams {
        cluster: scale.cluster(),
        sku: SkuId(0),
        n_racks: match scale {
            ExperimentScale::Quick => 2,
            ExperimentScale::Full => 4,
        },
        duration_hours: match scale {
            ExperimentScale::Quick => 36,
            ExperimentScale::Full => 120, // five workdays, as in the paper
        },
        warmup_hours: 4,
        seed: 35,
    };
    let outcome = run_sc_selection(&params).expect("experiment runs");
    let mut r = Report::new(
        "Table 4: SC1 vs SC2 (ideal setting)",
        "Total Data Read +10.9% (t=40.4); task execution time −5.2% (t=27.1)",
    );
    r.headers(&["SC1", "SC2", "change %", "t"]);
    for row in &outcome.table4 {
        r.row(
            row.metric.name(),
            vec![row.sc1_mean, row.sc2_mean, row.change_pct, row.t_value],
        );
    }
    r.note(format!(
        "{} machines per group; recommendation: {}",
        outcome.machines_per_group, outcome.recommendation
    ));
    r
}
