//! Figure 8 — the scatter view: Total Data Read vs CPU utilization is
//! linear, with a distribution that varies across machine groups.

use crate::common::{observe, ExperimentScale, Report, STANDARD_OCCUPANCY};
use kea_core::PerformanceMonitor;
use kea_ml::LinearModel1D;
use kea_sim::SC1;
use kea_telemetry::{GroupKey, Metric};

/// Regenerates the Figure 8 scatter per group, summarized as a fitted
/// line plus correlation (a printed report cannot carry 50k dots).
pub fn run(scale: ExperimentScale) -> Report {
    let cluster = scale.cluster();
    let out = observe(&cluster, STANDARD_OCCUPANCY, scale.observe_hours(), 25);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let mut r = Report::new(
        "Figure 8: Total Data Read vs CPU utilization (scatter view)",
        "a linear trend between throughput and utilization, varying by group",
    );
    r.headers(&["points", "slope GB/%", "intercept", "corr"]);
    for sku in &cluster.skus {
        let group = GroupKey::new(sku.id, SC1);
        let pts = monitor.scatter_view(group, Metric::CpuUtilization, Metric::TotalDataRead);
        let busy: Vec<_> = pts.iter().filter(|p| p.y > 0.0).collect();
        let xs: Vec<f64> = busy.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = busy.iter().map(|p| p.y).collect();
        let line = LinearModel1D::fit_ols(&xs, &ys).expect("enough busy hours");
        r.row(
            &sku.name,
            vec![
                busy.len() as f64,
                line.slope(),
                line.intercept(),
                correlation(&xs, &ys),
            ],
        );
    }
    r.note("positive slope for every group: throughput rises linearly with utilization".to_string());
    r
}

fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    cov / (vx.sqrt() * vy.sqrt())
}
