//! Figure 9 — the set of calibrated Huber models per SC-SKU: running
//! containers vs CPU utilization and task execution time vs CPU
//! utilization, with the median operating point.

use crate::common::{observe, ExperimentScale, Report, STANDARD_OCCUPANCY};
use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::PerformanceMonitor;

/// Regenerates the calibrated-model panel.
pub fn run(scale: ExperimentScale) -> Report {
    let cluster = scale.cluster();
    let out = observe(&cluster, STANDARD_OCCUPANCY, scale.observe_hours(), 26);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
        .expect("enough telemetry");
    let mut r = Report::new(
        "Figure 9: calibrated models per SC-SKU (Huber)",
        "containers→util and util→task-time lines per group, with median dot",
    );
    r.headers(&[
        "g slope",
        "g intcpt",
        "g R2",
        "f slope",
        "f intcpt",
        "f R2",
        "median m",
        "median u",
    ]);
    for g in engine.groups() {
        let name = &cluster.sku(g.group.sku).name;
        r.row(
            name,
            vec![
                g.g_containers_to_util.slope(),
                g.g_containers_to_util.intercept(),
                g.r2.0,
                g.f_util_to_latency.slope(),
                g.f_util_to_latency.intercept(),
                g.r2.2,
                g.current_containers,
                g.current_util,
            ],
        );
    }
    r.note("all slopes positive: utilization rises with containers, task time with utilization".to_string());
    r
}
