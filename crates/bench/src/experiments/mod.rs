//! One module per table/figure of the paper's evaluation.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — Cosmos statistics |
//! | [`fig1`] | Figure 1 — CPU utilization for a typical week |
//! | [`fig2`] | Figure 2 — machine count & utilization per generation |
//! | [`fig5`] | Figure 5 — task time distribution & critical-path skew |
//! | [`fig6`] | Figure 6 — task-type uniformity across racks/SKUs |
//! | [`fig8`] | Figure 8 — scatter view: throughput vs CPU utilization |
//! | [`fig9`] | Figure 9 — calibrated Huber models per SC-SKU |
//! | [`fig10`] | Figure 10 — suggested configuration change |
//! | [`fig11`] | Figure 11 — benchmark-job runtimes before/after |
//! | [`sec52`] | §5.2.2 — roll-out: +throughput, flat latency, +capacity |
//! | [`sec53`] | §5.3 — queue-length tuning extension |
//! | [`fig12`] | Figure 12 — queued containers & p99 queueing latency |
//! | [`fig13`] | Figure 13 — SSD/RAM usage vs CPU cores used |
//! | [`fig14`] | Figure 14 — expected cost vs (SSD, RAM) design |
//! | [`table4`] | Table 4 — SC1 vs SC2 |
//! | [`fig15`] | Figure 15 — performance impact of power capping |

pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod sec52;
pub mod sec53;
pub mod table1;
pub mod table4;

use crate::common::{ExperimentScale, Report};

/// An experiment entry point.
pub type ExperimentFn = fn(ExperimentScale) -> Report;

/// All experiments in paper order, with their CLI names.
pub const ALL: [(&str, ExperimentFn); 16] = [
    ("table1", table1::run),
    ("fig1", fig1::run),
    ("fig2", fig2::run),
    ("fig5", fig5::run),
    ("fig6", fig6::run),
    ("fig8", fig8::run),
    ("fig9", fig9::run),
    ("fig10", fig10::run),
    ("fig11", fig11::run),
    ("sec52", sec52::run),
    ("sec53", sec53::run),
    ("fig12", fig12::run),
    ("fig13", fig13::run),
    ("fig14", fig14::run),
    ("table4", table4::run),
    ("fig15", fig15::run),
];
