//! Figure 15 — performance impact of power capping at 10–30% below the
//! provisioned level, with and without the processor Feature.

use crate::common::{ExperimentScale, Report};
use kea_core::apps::power_capping::{run_power_capping, Arm, PowerCappingParams};
use kea_telemetry::SkuId;

/// Regenerates the capping-level sweep (hybrid setting, 4 arms).
pub fn run(scale: ExperimentScale) -> Report {
    let params = PowerCappingParams {
        cluster: scale.cluster(),
        sku: SkuId(0),
        cap_levels: match scale {
            ExperimentScale::Quick => vec![0.10, 0.20, 0.30],
            ExperimentScale::Full => vec![0.10, 0.15, 0.20, 0.25, 0.30],
        },
        group_size: match scale {
            ExperimentScale::Quick => 7,
            ExperimentScale::Full => 18,
        },
        hours_per_round: match scale {
            ExperimentScale::Quick => 24,
            ExperimentScale::Full => 30, // "more than 24 hours"
        },
        warmup_hours: 3,
        seed: 36,
    };
    let outcome = run_power_capping(&params).expect("study runs");
    let mut r = Report::new(
        "Figure 15: performance impact of power capping (vs arm A)",
        "Feature on improves perf ~5%; light caps are ~free, deep caps degrade; Feature softens capping",
    );
    r.headers(&["B/CPU-t %", "B/s %", "t", "power W"]);
    for cell in &outcome.cells {
        let label = format!(
            "cap {:>2.0}% {}",
            cell.cap_level * 100.0,
            match cell.arm {
                Arm::B => "Feature",
                Arm::C => "cap only",
                Arm::D => "cap+Feature",
                Arm::A => "baseline",
            }
        );
        r.row(
            &label,
            vec![
                cell.bytes_per_cpu_change_pct,
                cell.bytes_per_sec_change_pct,
                cell.t_bytes_per_cpu,
                cell.mean_power_w,
            ],
        );
    }
    r.note("the paper's conservative roll-out harvested ~10 MW of provisioned power".to_string());
    r
}
