//! Figure 10 — the suggested configuration change: decrease containers
//! on slower generations, increase on faster ones; the direction agrees
//! between the median-load and high-percentile runs.

use crate::common::{observe, ExperimentScale, Report, STANDARD_OCCUPANCY};
use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::{optimize_max_containers, OperatingPoint, PerformanceMonitor};
use std::collections::BTreeMap;

/// Regenerates the suggested-change bar chart (as a signed-step table)
/// plus the high-load sensitivity run.
pub fn run(scale: ExperimentScale) -> Report {
    let cluster = scale.cluster();
    let out = observe(&cluster, STANDARD_OCCUPANCY, scale.observe_hours(), 27);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
        .expect("enough telemetry");
    let counts: BTreeMap<_, _> = monitor
        .group_utilization()
        .into_iter()
        .map(|g| (g.group, g.machines))
        .collect();
    let median = optimize_max_containers(&engine, &counts, 1.0, OperatingPoint::Median)
        .expect("solvable LP");
    let p90 = optimize_max_containers(&engine, &counts, 1.0, OperatingPoint::Percentile(90.0))
        .expect("solvable LP");

    let mut r = Report::new(
        "Figure 10: suggested max-container change per SKU",
        "decrease for slower (Gen 1.1), increase for faster (Gen 4.1); same direction under heavy load",
    );
    r.headers(&["step@median", "step@p90", "grad s/cont", "machines"]);
    let mut agree = true;
    for (m, p) in median.suggestions.iter().zip(&p90.suggestions) {
        let name = &cluster.sku(m.group.sku).name;
        if m.delta_step.signum() != p.delta_step.signum()
            && m.delta_step != 0
            && p.delta_step != 0
        {
            agree = false;
        }
        r.row(
            name,
            vec![
                m.delta_step as f64,
                p.delta_step as f64,
                m.latency_gradient,
                m.n_machines as f64,
            ],
        );
    }
    r.note(format!(
        "direction agreement between median and p90 runs: {agree} (paper: same direction)"
    ));
    r.note(format!(
        "predicted capacity gain {:.2}% at unchanged cluster latency ({:.1}s → {:.1}s predicted)",
        median.predicted_capacity_gain * 100.0,
        median.baseline_latency,
        median.predicted_latency,
    ));
    // The paper's next round allowed ±2 containers and expected ~5% more
    // capacity; project it with the same models.
    if let Ok(round2) = optimize_max_containers(&engine, &counts, 2.0, OperatingPoint::Median) {
        r.note(format!(
            "round 2 (±2 containers): predicted capacity gain {:.2}% (paper expected ~5% more)",
            round2.predicted_capacity_gain * 100.0
        ));
    }
    r
}
