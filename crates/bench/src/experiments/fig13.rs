//! Figure 13 — resource utilization for SSD and RAM vs CPU cores used:
//! both are affine in cores, giving the usage models `p` and `q` of §6.1.

use crate::common::{observe, ExperimentScale, Report, STANDARD_OCCUPANCY};
use kea_core::PerformanceMonitor;
use kea_ml::LinearModel1D;
use kea_sim::SC1;
use kea_telemetry::{GroupKey, Metric, SkuId};

/// Regenerates the two panels as fitted lines. The paper fits on
/// per-second samples (10.4M records); our substitution uses machine-hour
/// gauges, which preserve the affine relationship (documented in
/// DESIGN.md).
pub fn run(scale: ExperimentScale) -> Report {
    let cluster = scale.cluster();
    let out = observe(&cluster, STANDARD_OCCUPANCY, scale.observe_hours(), 32);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    // The paper studies one production SKU; use Gen 3.2 (the reference).
    let group = GroupKey::new(SkuId(4), SC1);
    let mut cores = Vec::new();
    let mut ssd = Vec::new();
    let mut ram = Vec::new();
    let mut net = Vec::new();
    for rec in monitor.store().by_group(group) {
        if rec.metrics.cores_used > 0.5 {
            cores.push(rec.metrics.cores_used);
            ssd.push(Metric::SsdUsed.value(&rec.metrics));
            ram.push(Metric::RamUsed.value(&rec.metrics));
            net.push(Metric::NetworkUsed.value(&rec.metrics));
        }
    }
    let p = LinearModel1D::fit_huber(&cores, &ssd).expect("enough observations");
    let q = LinearModel1D::fit_huber(&cores, &ram).expect("enough observations");
    let n = LinearModel1D::fit_huber(&cores, &net).expect("enough observations");
    let mut r = Report::new(
        "Figure 13: SSD and RAM usage vs CPU cores used (Gen 3.2)",
        "both resources are affine in cores used: s = α_s + β_s·c, r = α_r + β_r·c",
    );
    r.headers(&["intercept GB", "slope GB/core", "observations"]);
    r.row("SSD = p(c)", vec![p.intercept(), p.slope(), cores.len() as f64]);
    r.row("RAM = q(c)", vec![q.intercept(), q.slope(), cores.len() as f64]);
    r.row("NET = n(c) [§6.2 ext]", vec![n.intercept(), n.slope(), cores.len() as f64]);
    r.note(format!(
        "projected demand at 128 cores: SSD {:.0} GB, RAM {:.0} GB",
        p.predict(128.0),
        q.predict(128.0)
    ));
    r
}
