//! Figure 11 — runtime distribution of the three benchmark jobs before
//! and after the KEA deployment (paper: 6% mean improvement).

use crate::common::{ExperimentScale, Report};
use kea_core::apps::yarn_config::{pooled_benchmark_test, run_yarn_tuning, YarnTuningParams};

/// Regenerates the benchmark-job comparison by running the full
/// observational-tuning pipeline.
pub fn run(scale: ExperimentScale) -> Report {
    let mut params = YarnTuningParams::quick(scale.cluster(), 28);
    params.observe_hours = scale.observe_hours();
    params.eval_hours = scale.observe_hours();
    let outcome = run_yarn_tuning(&params).expect("pipeline runs");
    let mut r = Report::new(
        "Figure 11: benchmark-job runtimes before/after deployment",
        "average benchmark job runtime improved by 6%",
    );
    r.headers(&["n before", "n after", "mean before s", "mean after s", "change %"]);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    for b in &outcome.benchmarks {
        r.row(
            &b.name,
            vec![
                b.before_runtimes_s.len() as f64,
                b.after_runtimes_s.len() as f64,
                mean(&b.before_runtimes_s),
                mean(&b.after_runtimes_s),
                b.mean_change_pct,
            ],
        );
    }
    if let Ok(test) = pooled_benchmark_test(&outcome.benchmarks) {
        r.note(format!(
            "pooled Welch test (after < before): t = {:.2}, p = {:.3}",
            test.t, test.p_value
        ));
    }
    r
}
