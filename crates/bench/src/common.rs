//! Shared plumbing for the reproduction experiments.

use kea_sim::{run, ClusterSpec, ConfigPlan, SimConfig, SimOutput, WorkloadSpec, SC1};

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// CI-friendly: small cluster, short windows (seconds of wall time).
    Quick,
    /// The headline reproduction: medium cluster, week-long windows.
    Full,
}

impl ExperimentScale {
    /// The cluster used at this scale.
    pub fn cluster(&self) -> ClusterSpec {
        match self {
            ExperimentScale::Quick => ClusterSpec::small(),
            ExperimentScale::Full => ClusterSpec::medium(),
        }
    }

    /// Observation-window length in hours.
    pub fn observe_hours(&self) -> u64 {
        match self {
            ExperimentScale::Quick => 48,
            ExperimentScale::Full => 168,
        }
    }
}

/// A printed experiment report: a title, labelled rows, and free-form
/// notes. Everything the `repro` binary prints goes through this type so
/// integration tests can assert on structured values instead of scraping
/// stdout.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id, e.g. "Figure 9".
    pub id: String,
    /// What the paper reported (for side-by-side reading).
    pub paper_claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows: label + numeric cells.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Free-form observations.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, paper_claim: &str) -> Self {
        Report {
            id: id.to_string(),
            paper_claim: paper_claim.to_string(),
            ..Default::default()
        }
    }

    /// Sets the column headers.
    pub fn headers(&mut self, headers: &[&str]) -> &mut Self {
        self.headers = headers.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Appends a row.
    pub fn row(&mut self, label: &str, cells: Vec<f64>) -> &mut Self {
        self.rows.push((label.to_string(), cells));
        self
    }

    /// Appends a note.
    pub fn note(&mut self, note: String) -> &mut Self {
        self.notes.push(note);
        self
    }

    /// Looks up a row by label.
    pub fn get(&self, label: &str) -> Option<&[f64]> {
        self.rows
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, cells)| cells.as_slice())
    }

    /// Renders the report to stdout in a fixed-width layout.
    pub fn print(&self) {
        println!("\n=== {} ===", self.id);
        println!("paper: {}", self.paper_claim);
        if !self.headers.is_empty() {
            print!("{:<28}", "");
            for h in &self.headers {
                print!("{h:>14}");
            }
            println!();
        }
        for (label, cells) in &self.rows {
            print!("{label:<28}");
            for c in cells {
                if c.abs() >= 1000.0 {
                    print!("{c:>14.0}");
                } else {
                    print!("{c:>14.3}");
                }
            }
            println!();
        }
        for note in &self.notes {
            println!("  · {note}");
        }
    }
}

/// Runs a baseline observation window: manual-tuning config, SC1, the
/// default workload at the given demand pressure.
pub fn observe(
    cluster: &ClusterSpec,
    occupancy: f64,
    hours: u64,
    seed: u64,
) -> SimOutput {
    run(&SimConfig {
        cluster: cluster.clone(),
        workload: WorkloadSpec::default_for(cluster, occupancy),
        plan: ConfigPlan::baseline(&cluster.skus, SC1),
        duration_hours: hours,
        seed,
        task_log_every: 10,
        adhoc_job_log_every: 8,
    })
}

/// The demand pressure used by observational experiments: high enough
/// that peaks saturate (queues exist, Figure 12) while troughs keep the
/// operating-point spread of Figures 8–9.
pub const STANDARD_OCCUPANCY: f64 = 0.95;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_rows() {
        let mut r = Report::new("Test", "claim");
        r.headers(&["a", "b"]);
        r.row("x", vec![1.0, 2.0]);
        r.note("hello".to_string());
        assert_eq!(r.get("x"), Some(&[1.0, 2.0][..]));
        assert_eq!(r.get("missing"), None);
        r.print(); // must not panic
    }

    #[test]
    fn scales_differ() {
        assert!(
            ExperimentScale::Quick.cluster().n_machines()
                < ExperimentScale::Full.cluster().n_machines()
        );
        assert!(ExperimentScale::Quick.observe_hours() < ExperimentScale::Full.observe_hours());
    }
}
