//! Criterion ablation benches for the design choices DESIGN.md calls
//! out: estimator choice (Huber vs OLS), tuning mode cost (observational
//! model+LP vs a round of experimental search), and experiment-design
//! analysis cost. Quality-of-result ablations (accuracy rather than
//! runtime) live in `--bin ablation`.

use criterion::{criterion_group, criterion_main, Criterion};
use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::{optimize_max_containers, OperatingPoint, PerformanceMonitor};
use kea_sim::{run, ClusterSpec, SimConfig};
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_fit_methods(c: &mut Criterion) {
    let out = run(&SimConfig::baseline(ClusterSpec::tiny(), 48, 3));
    let monitor = PerformanceMonitor::new(&out.telemetry);
    for (name, method) in [("huber", FitMethod::Huber), ("ols", FitMethod::Ols)] {
        c.bench_function(&format!("whatif_fit_hourly_{name}"), |b| {
            b.iter(|| {
                WhatIfEngine::fit_at(
                    black_box(&monitor),
                    method,
                    Granularity::Hourly,
                    24,
                )
                .unwrap()
            })
        });
    }
}

fn bench_observational_vs_experimental(c: &mut Criterion) {
    // Observational tuning: one telemetry window, then model + LP.
    let out = run(&SimConfig::baseline(ClusterSpec::tiny(), 48, 4));
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let engine =
        WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24).unwrap();
    let counts: BTreeMap<_, _> = monitor
        .group_utilization()
        .into_iter()
        .map(|g| (g.group, g.machines))
        .collect();
    c.bench_function("observational_model_plus_lp", |b| {
        b.iter(|| {
            optimize_max_containers(
                black_box(&engine),
                black_box(&counts),
                1.0,
                OperatingPoint::Median,
            )
            .unwrap()
        })
    });
    // Experimental tuning: every candidate evaluation costs a production
    // experiment — here, a full simulated flighting round. One round is
    // enough to show the orders-of-magnitude cost gap the paper's §5
    // argues motivates observational tuning.
    let mut group = c.benchmark_group("experimental");
    group.sample_size(10);
    group.bench_function("one_flighting_round", |b| {
        b.iter(|| run(&SimConfig::baseline(black_box(ClusterSpec::tiny()), 24, 6)))
    });
    group.finish();
}

criterion_group!(benches, bench_fit_methods, bench_observational_vs_experimental);
criterion_main!(benches);
