//! Fleet-scale simulation benchmarks: the rewritten engine against the
//! preserved reference, plus the calendar event queue against the
//! `BinaryHeap` it replaced.
//!
//! * `event_queue`: the classic hold model at simulation shape — a
//!   steady-state population of 100k pending events, one million
//!   pop-advance-push cycles with exponentially distributed gaps. The
//!   calendar queue's O(1) ring pushes vs the binary heap's O(log n)
//!   sift on every operation, on byte-identical event streams.
//! * `sim_engine`: a 64k-machine simulated day (workload coarsened 8×
//!   by `scaled_tasks`, which preserves offered load), run twice — on
//!   the static baseline plan, and under ten concurrent flights
//!   covering a quarter of the fleet (the steady state of a tuning
//!   service running several A/B tests at once, per §4.1). The
//!   reference engine re-resolves `ConfigPlan::effective` per event —
//!   a `BTreeMap` walk plus one `BTreeSet` probe *per live flight* —
//!   while the fleet engine serves every lookup from precomputed model
//!   tables through a per-machine-hour config cache, so its cost is
//!   independent of flight count. Acceptance bar for the PR: federated
//!   ≥4× over reference at ≥4 shards on the flighted day.
//! * `sim_week`: the headline 300k-machine week (168 h, coarsened 32×),
//!   end to end through the tuning loop — simulate → PerformanceMonitor
//!   → What-if fit → `optimize_max_containers`. ~50M machine-hour
//!   records flow through the windowed ingest path. Heavyweight, so it
//!   only runs when `KEA_BENCH_SIM_FULL=1` (the committed
//!   `BENCH_sim.json` carries its numbers; CI runs the lighter groups).
//!
//! Numbers are recorded in `BENCH_sim.json` (written when
//! `KEA_BENCH_JSON` is set; CI uploads it as an artifact).

use criterion::{criterion_group, criterion_main, Criterion};
use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::{optimize_max_containers, OperatingPoint, PerformanceMonitor};
use kea_sim::engine::reference;
use kea_sim::{
    run_with_exec, CalendarQueue, ClusterSpec, ConfigPatch, ExecConfig, Flight, SimConfig, SC1,
    SC2,
};
use kea_telemetry::{GroupKey, MachineId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::hint::black_box;

// ---------------------------------------------------------------------
// Event queue hold model
// ---------------------------------------------------------------------

const HOLD_POPULATION: usize = 100_000;
const HOLD_CYCLES: usize = 1_000_000;

/// Deterministic xorshift64* stream.
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Exponential-ish gap in seconds (mean ~2s), the shape of Poisson
/// candidate chains and task finishes.
fn next_gap(state: &mut u64) -> f64 {
    let u = (next_u64(state) >> 11) as f64 / (1u64 << 53) as f64;
    -2.0 * (1.0 - u).max(1e-12).ln()
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(10);
    group.bench_function("calendar_hold_1m", |b| {
        b.iter(|| {
            let mut q: CalendarQueue<u32> = CalendarQueue::new();
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for i in 0..HOLD_POPULATION {
                q.push(next_gap(&mut state), i as u32);
            }
            let mut acc = 0u64;
            for _ in 0..HOLD_CYCLES {
                let Some((now, payload)) = q.pop() else { break };
                acc = acc.wrapping_add(payload as u64);
                q.push(now + next_gap(&mut state), payload);
            }
            black_box(acc)
        })
    });
    group.bench_function("binary_heap_hold_1m", |b| {
        b.iter(|| {
            let mut q: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            let mut seq = 0u64;
            for i in 0..HOLD_POPULATION {
                seq += 1;
                q.push(Reverse((next_gap(&mut state).to_bits(), seq, i as u32)));
            }
            let mut acc = 0u64;
            for _ in 0..HOLD_CYCLES {
                let Some(Reverse((bits, _, payload))) = q.pop() else { break };
                let now = f64::from_bits(bits);
                acc = acc.wrapping_add(payload as u64);
                seq += 1;
                q.push(Reverse(((now + next_gap(&mut state)).to_bits(), seq, payload)));
            }
            black_box(acc)
        })
    });
    group.finish();
}

// ---------------------------------------------------------------------
// Engine-scale fixtures
// ---------------------------------------------------------------------

/// A cluster of at least `total_machines`, built by multiplying the
/// default catalog's per-SKU counts (keeping the fleet mix).
fn cluster_of(total_machines: u32, n_subclusters: u32) -> ClusterSpec {
    let mut skus = kea_sim::default_skus(1);
    let base: u32 = skus.iter().map(|s| s.machine_count).sum();
    let mult = total_machines.div_ceil(base).max(1);
    for s in &mut skus {
        s.machine_count *= mult;
    }
    ClusterSpec::build(skus, n_subclusters)
}

fn sim_config(machines: u32, subclusters: u32, hours: u64, coarsen: u32, seed: u64) -> SimConfig {
    let cluster = cluster_of(machines, subclusters);
    let mut cfg = SimConfig::baseline(cluster, hours, seed);
    cfg.workload = cfg.workload.scaled_tasks(coarsen);
    // Keep the sampled logs proportionate at fleet scale.
    cfg.task_log_every = 1_000;
    cfg.adhoc_job_log_every = 64;
    cfg
}

/// Adds `n_flights` concurrent flights jointly covering `pct` percent of
/// the fleet (disjoint machine sets, each with its own patch) — the
/// shape of a production tuning service running several A/B experiments
/// at once.
fn with_flights(cfg: &mut SimConfig, pct: u32, n_flights: u32) {
    let hours = cfg.duration_hours;
    let step = (100 * n_flights.max(1) / pct.clamp(1, 100)).max(1) as usize;
    for f in 0..n_flights.max(1) as usize {
        let targets: BTreeSet<MachineId> = cfg
            .cluster
            .machines
            .iter()
            .skip(f)
            .step_by(step)
            .map(|m| m.id)
            .collect();
        cfg.plan.add_flight(Flight {
            label: format!("bench-flight-{f}"),
            machines: targets,
            start_hour: hours / 4,
            end_hour: hours - hours / 4,
            patch: ConfigPatch {
                power_cap_fraction: Some(0.05 + 0.05 * (f % 3) as f64),
                feature_on: Some(f % 2 == 0),
                sc: Some(SC2),
                ..ConfigPatch::default()
            },
        });
    }
}

fn bench_sim_engine(c: &mut Criterion) {
    let cfg = sim_config(64_000, 8, 24, 8, 4242);
    println!(
        "sim_engine fixture: {} machines, {} sub-clusters, {} h",
        cfg.cluster.n_machines(),
        cfg.cluster.n_subclusters,
        cfg.duration_hours
    );
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(2);
    group.bench_function("reference_64k_day", |b| {
        b.iter(|| black_box(reference::run(&cfg)).counters.total)
    });
    group.bench_function("fleet_1shard_64k_day", |b| {
        b.iter(|| {
            black_box(run_with_exec(
                &cfg,
                ExecConfig {
                    shards: 1,
                    emit_window_hours: 24,
                },
            ))
            .counters
            .total
        })
    });
    group.bench_function("federated_4shard_64k_day", |b| {
        b.iter(|| {
            black_box(run_with_exec(
                &cfg,
                ExecConfig {
                    shards: 4,
                    emit_window_hours: 24,
                },
            ))
            .counters
            .total
        })
    });
    // The same day under ten concurrent flights covering 25% of the
    // fleet — the fixture the PR's ≥4× acceptance bar is measured on.
    let mut flighted = sim_config(64_000, 8, 24, 8, 4242);
    with_flights(&mut flighted, 25, 10);
    group.bench_function("reference_64k_day_flighted", |b| {
        b.iter(|| black_box(reference::run(&flighted)).counters.total)
    });
    group.bench_function("federated_4shard_64k_day_flighted", |b| {
        b.iter(|| {
            black_box(run_with_exec(
                &flighted,
                ExecConfig {
                    shards: 4,
                    emit_window_hours: 24,
                },
            ))
            .counters
            .total
        })
    });
    group.finish();
}

fn bench_sim_week(c: &mut Criterion) {
    if std::env::var("KEA_BENCH_SIM_FULL").map_or(true, |v| v != "1") {
        println!("sim_week: skipped (set KEA_BENCH_SIM_FULL=1 to run the 300k-machine week)");
        return;
    }
    let cfg = sim_config(300_000, 8, 168, 32, 777);
    let counts: BTreeMap<GroupKey, usize> = cfg
        .cluster
        .skus
        .iter()
        .map(|s| (GroupKey::new(s.id, SC1), s.machine_count as usize))
        .collect();
    println!(
        "sim_week fixture: {} machines, 168 h (~{}M machine-hour records)",
        cfg.cluster.n_machines(),
        cfg.cluster.n_machines() * 168 / 1_000_000
    );
    let mut group = c.benchmark_group("sim_week");
    group.sample_size(2);
    group.bench_function("fleet_300k_week_end_to_end", |b| {
        b.iter(|| {
            let out = run_with_exec(
                &cfg,
                ExecConfig {
                    shards: 0,
                    emit_window_hours: 24,
                },
            );
            let monitor = PerformanceMonitor::new(&out.telemetry);
            let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
                .expect("fleet telemetry fits");
            let plan = optimize_max_containers(&engine, &counts, 1.0, OperatingPoint::Median)
                .expect("optimizer finds a plan");
            black_box((out.counters.total, plan.steps().len()))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_sim_engine,
    bench_sim_week
);
criterion_main!(benches);
