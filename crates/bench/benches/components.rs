//! Criterion micro-benchmarks for KEA's computational components: the
//! estimators, the LP solver, telemetry aggregation, statistics, and the
//! simulation engine itself. These are throughput benches (how fast is
//! the machinery), not reproduction benches (see `--bin repro`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kea_ml::{HuberRegressor, LinearRegression};
use kea_opt::{LpProblem, Relation};
use kea_sim::{run, ClusterSpec, SimConfig};
use kea_stats::{t_test_welch, Alternative, Summary};
use kea_telemetry::daily_group_aggregates;
use std::hint::black_box;

fn regression_data(n: usize, outliers: bool) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.1]).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let base = 5.0 + 2.0 * i as f64 * 0.1 + ((i * 37) % 11) as f64 * 0.05;
            if outliers && i % 10 == 3 {
                base + 100.0
            } else {
                base
            }
        })
        .collect();
    (x, y)
}

fn bench_estimators(c: &mut Criterion) {
    let (x, y) = regression_data(1000, true);
    c.bench_function("ols_fit_1000", |b| {
        b.iter(|| LinearRegression::fit(black_box(&x), black_box(&y)).unwrap())
    });
    c.bench_function("huber_fit_1000", |b| {
        b.iter(|| HuberRegressor::fit(black_box(&x), black_box(&y)).unwrap())
    });
}

fn bench_simplex(c: &mut Criterion) {
    // The YARN LP shape: K variables (one per group), one latency
    // constraint, box bounds.
    for k in [6usize, 20, 50] {
        c.bench_function(&format!("simplex_yarn_lp_k{k}"), |b| {
            b.iter(|| {
                let mut lp = LpProblem::maximize((0..k).map(|i| 10.0 + i as f64).collect())
                    .constraint((0..k).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect(), Relation::Le, 0.0)
                    .unwrap();
                for i in 0..k {
                    lp = lp.bounds(i, -1.0, Some(1.0)).unwrap();
                }
                black_box(lp.solve().unwrap())
            })
        });
    }
}

fn bench_statistics(c: &mut Criterion) {
    let a: Vec<f64> = (0..5000).map(|i| 100.0 + ((i * 17) % 23) as f64).collect();
    let b2: Vec<f64> = (0..5000).map(|i| 101.0 + ((i * 13) % 23) as f64).collect();
    c.bench_function("welch_t_5000x5000", |b| {
        b.iter(|| t_test_welch(black_box(&a), black_box(&b2), Alternative::TwoSided).unwrap())
    });
    c.bench_function("summary_5000", |b| {
        b.iter_batched(
            || a.clone(),
            |data| Summary::of(black_box(&data)).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_telemetry(c: &mut Criterion) {
    let out = run(&SimConfig::baseline(ClusterSpec::tiny(), 48, 5));
    c.bench_function("daily_aggregation_tiny_48h", |b| {
        b.iter(|| daily_group_aggregates(black_box(&out.telemetry)))
    });
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("sim_tiny_24h", |b| {
        b.iter(|| run(&SimConfig::baseline(black_box(ClusterSpec::tiny()), 24, 9)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_estimators,
    bench_simplex,
    bench_statistics,
    bench_telemetry,
    bench_engine
);
criterion_main!(benches);
