//! Telemetry scan benchmarks: the columnar, indexed store and its fused
//! aggregation kernels against the preserved pre-columnar reference
//! (`store::reference` + `aggregate::reference`), in the same process on
//! the same record stream.
//!
//! * `telemetry_scan`: a Performance-Monitor-shaped window — 8 groups ×
//!   32 machines/group × 14 days of hourly records (86,016 rows) — timed
//!   through `daily_group_aggregates`, `group_utilization`,
//!   `hourly_fleet_series`, and `group_summary`, columnar vs reference.
//! * `telemetry_scan_64k`: a wide-fleet case (65,536 machines × 6 hours,
//!   393,216 rows) where hour-window reads are a binary search plus a
//!   contiguous run for the columnar store and a full predicate scan for
//!   the reference.
//! * `telemetry_seal`: the one-off cost of building the columnar index,
//!   so the amortization story is on the record next to the query wins.
//!
//! Methodology and current numbers are recorded in the repository README
//! ("Performance") and `BENCH_telemetry.json` (written when
//! `KEA_BENCH_JSON` is set; CI uploads it as an artifact).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kea_telemetry::store::reference::TelemetryStore as RefStore;
use kea_telemetry::{
    aggregate, daily_group_aggregates, group_summary, group_utilization, hourly_fleet_series,
    GroupKey, MachineHourRecord, MachineId, Metric, MetricValues, ScId, SkuId, TelemetryStore,
};
use std::hint::black_box;

const N_GROUPS: u16 = 8;
const MACHINES_PER_GROUP: u32 = 32; // 8 × 32 = 256 machines
const DAYS: u64 = 14;
const HOURS: u64 = DAYS * 24; // 336 hourly records per machine

/// One hour of fleet telemetry: 256 machine-hour rows (8 groups × 32
/// machines) with smooth per-group dynamics, the shape of one streaming
/// ingest batch.
fn hour_batch(h: u64) -> Vec<MachineHourRecord> {
    let mut records = Vec::with_capacity((N_GROUPS as usize) * (MACHINES_PER_GROUP as usize));
    for g in 0..N_GROUPS {
        let group = GroupKey::new(SkuId(g), ScId(1));
        for m in 0..MACHINES_PER_GROUP {
            let machine = MachineId(g as u32 * 10_000 + m);
            let phase = (h % 24) as f64 / 24.0;
            let util = 30.0 + g as f64 * 5.0 + 40.0 * phase + (m % 5) as f64;
            records.push(MachineHourRecord {
                machine,
                group,
                hour: h,
                metrics: MetricValues {
                    cpu_utilization: util.min(100.0),
                    avg_running_containers: 4.0 + (m % 7) as f64 + 3.0 * phase,
                    tasks_finished: 50.0 + util,
                    total_data_read_gb: 2.0 + 0.1 * util,
                    task_exec_time_s: 3000.0 + 10.0 * util,
                    cpu_time_s: 1500.0 + 5.0 * util,
                    avg_task_latency_s: 100.0 + util,
                    power_draw_w: 200.0 + util,
                    ..Default::default()
                },
            });
        }
    }
    records
}

/// The monitor-window fleet: 86,016 machine-hour rows (14 days of
/// [`hour_batch`]es), so summaries and roll-ups exercise real spreads.
fn monitor_window() -> Vec<MachineHourRecord> {
    (0..HOURS).flat_map(hour_batch).collect()
}

fn build_columnar(records: &[MachineHourRecord]) -> TelemetryStore {
    let mut store = TelemetryStore::new();
    store.extend(records.iter().copied());
    store.seal(); // index built here, outside every timed region
    store
}

fn build_reference(records: &[MachineHourRecord]) -> RefStore {
    let mut store = RefStore::new();
    store.extend(records.iter().copied());
    store
}

/// Sanity: columnar kernels must agree with the reference before any
/// timing is believed. Mirrors the optimizer-scale bench's guard.
fn assert_agreement(columnar: &TelemetryStore, reference: &RefStore) {
    let cd = daily_group_aggregates(columnar);
    let rd = aggregate::reference::daily_group_aggregates(reference);
    assert_eq!(cd.len(), rd.len(), "daily aggregate count diverged");
    for (c, r) in cd.iter().zip(&rd) {
        assert_eq!((c.group, c.machine, c.day), (r.group, r.machine, r.day));
        let (cm, rm) = (c.mean(Metric::NumberOfTasks), r.mean(Metric::NumberOfTasks));
        assert!((cm - rm).abs() <= 1e-9 * rm.abs().max(1.0), "daily means diverged");
    }
    let cu = group_utilization(columnar);
    let ru = aggregate::reference::group_utilization(reference);
    assert_eq!(cu.len(), ru.len(), "group count diverged");
    for (c, r) in cu.iter().zip(&ru) {
        assert_eq!((c.group, c.machines), (r.group, r.machines));
        assert!(
            (c.mean_cpu_utilization - r.mean_cpu_utilization).abs() <= 1e-9 * r.mean_cpu_utilization,
            "group utilization diverged"
        );
    }
}

fn bench_monitor_window(c: &mut Criterion) {
    let records = monitor_window();
    let columnar = build_columnar(&records);
    let reference = build_reference(&records);
    assert_agreement(&columnar, &reference);

    let mut group = c.benchmark_group("telemetry_scan");
    group.sample_size(20);
    group.bench_function("daily_group_aggregates_columnar", |b| {
        b.iter(|| daily_group_aggregates(black_box(&columnar)))
    });
    group.bench_function("daily_group_aggregates_reference", |b| {
        b.iter(|| aggregate::reference::daily_group_aggregates(black_box(&reference)))
    });
    group.bench_function("group_utilization_columnar", |b| {
        b.iter(|| group_utilization(black_box(&columnar)))
    });
    group.bench_function("group_utilization_reference", |b| {
        b.iter(|| aggregate::reference::group_utilization(black_box(&reference)))
    });
    group.bench_function("hourly_fleet_series_columnar", |b| {
        b.iter(|| hourly_fleet_series(black_box(&columnar), Metric::CpuUtilization))
    });
    group.bench_function("hourly_fleet_series_reference", |b| {
        b.iter(|| {
            aggregate::reference::hourly_fleet_series(black_box(&reference), Metric::CpuUtilization)
        })
    });
    let probe = GroupKey::new(SkuId(3), ScId(1));
    group.bench_function("group_summary_columnar", |b| {
        b.iter(|| group_summary(black_box(&columnar), probe, Metric::CpuUtilization))
    });
    group.bench_function("group_summary_reference", |b| {
        b.iter(|| {
            aggregate::reference::group_summary(black_box(&reference), probe, Metric::CpuUtilization)
        })
    });
    group.finish();
}

const WIDE_MACHINES: u32 = 65_536;
const WIDE_HOURS: u64 = 6;

/// The wide fleet: 64k machines × 6 hours across 16 groups.
fn wide_fleet() -> Vec<MachineHourRecord> {
    let mut records = Vec::with_capacity((WIDE_MACHINES as usize) * WIDE_HOURS as usize);
    for m in 0..WIDE_MACHINES {
        let group = GroupKey::new(SkuId((m % 16) as u16), ScId(1));
        for h in 0..WIDE_HOURS {
            records.push(MachineHourRecord {
                machine: MachineId(m),
                group,
                hour: h,
                metrics: MetricValues {
                    cpu_utilization: 20.0 + (m % 61) as f64 + h as f64,
                    tasks_finished: 10.0 + (m % 13) as f64,
                    avg_running_containers: 3.0 + (m % 5) as f64,
                    ..Default::default()
                },
            });
        }
    }
    records
}

fn bench_wide_fleet(c: &mut Criterion) {
    let records = wide_fleet();
    let columnar = build_columnar(&records);
    let reference = build_reference(&records);

    // Sanity on the window view itself before timing it.
    let col_n = columnar.by_hours(2, 4).count();
    let ref_n = reference.by_hours(2, 4).count();
    assert_eq!(col_n, ref_n, "hour-window cardinality diverged");

    let mut group = c.benchmark_group("telemetry_scan_64k");
    group.sample_size(10);
    group.bench_function("hour_window_sum_columnar", |b| {
        b.iter(|| {
            black_box(&columnar)
                .by_hours(2, 4)
                .map(|r| r.metrics.cpu_utilization)
                .sum::<f64>()
        })
    });
    group.bench_function("hour_window_sum_reference", |b| {
        b.iter(|| {
            black_box(&reference)
                .by_hours(2, 4)
                .map(|r| r.metrics.cpu_utilization)
                .sum::<f64>()
        })
    });
    group.bench_function("group_utilization_columnar", |b| {
        b.iter(|| group_utilization(black_box(&columnar)))
    });
    group.bench_function("group_utilization_reference", |b| {
        b.iter(|| aggregate::reference::group_utilization(black_box(&reference)))
    });
    group.finish();
}

fn bench_seal(c: &mut Criterion) {
    let records = monitor_window();
    let mut group = c.benchmark_group("telemetry_seal");
    group.sample_size(10);
    // Bulk extend now compacts inside the call, so the timed region is
    // the whole ingest: copy-in, sort, and index build.
    group.bench_function("seal_86k_records", |b| {
        b.iter_batched(
            || records.clone(),
            |rs| {
                let mut store = TelemetryStore::new();
                store.extend(rs);
                store.seal();
                store
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Streaming-append benches: the run+delta store against the
/// append-then-rebuild world it replaces.
///
/// * `append_one_hour_then_query_delta`: the steady state — a sealed 86k
///   store takes one fresh hour (256 rows, far under the compaction
///   threshold) and answers `group_utilization` by merging run + delta.
/// * `append_one_hour_then_query_rebuild`: what the same arrival cost
///   before incremental re-seal — re-sort and re-index all 86k+256 rows
///   before the query can run.
/// * `seal_4096_row_delta`: compacting a near-threshold delta via the
///   O(n+d) two-sorted-sequence merge, against `telemetry_seal`'s
///   from-scratch build of the same data.
/// * `replay_14_days_hourly`: the full ingest loop — 336 per-hour
///   batches, a fleet query after every batch, automatic compactions
///   included.
fn bench_stream(c: &mut Criterion) {
    let records = monitor_window();
    let sealed = build_columnar(&records);
    let batch = hour_batch(HOURS); // the next hour arriving

    // Sanity: the delta-merged answer must equal the reference over the
    // combined stream before any timing is believed.
    {
        let mut streamed = sealed.clone();
        streamed.extend(batch.iter().copied());
        assert!(!streamed.is_sealed(), "one hour must stay in the delta");
        let mut all = records.clone();
        all.extend(batch.iter().copied());
        let reference = build_reference(&all);
        assert_agreement(&streamed, &reference);
    }

    let mut group = c.benchmark_group("telemetry_stream");
    group.sample_size(10);
    group.bench_function("append_one_hour_then_query_delta", |b| {
        b.iter_batched(
            || {
                // A fresh clone's record log is allocated exactly-sized;
                // pre-reserve so the timed region measures the streaming
                // append, not a one-off realloc of the whole log.
                let mut store = sealed.clone();
                store.reserve(batch.len());
                store
            },
            |mut store| {
                store.extend(batch.iter().copied());
                group_utilization(black_box(&store))
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("append_one_hour_then_query_rebuild", |b| {
        b.iter_batched(
            || {
                let mut all = records.clone();
                all.extend(batch.iter().copied());
                all
            },
            |all| {
                let mut store = TelemetryStore::new();
                store.extend(all);
                store.seal();
                group_utilization(black_box(&store))
            },
            BatchSize::LargeInput,
        )
    });
    // 16 hours of arrivals (4,096 rows) sit just under the 5% compaction
    // threshold at this run size, so the whole delta compacts in one
    // explicit seal.
    group.bench_function("seal_4096_row_delta", |b| {
        b.iter_batched(
            || {
                let mut store = sealed.clone();
                for h in 0..16 {
                    store.extend(hour_batch(HOURS + h));
                }
                assert!(!store.is_sealed(), "4,096 rows must stay in the delta");
                store
            },
            |mut store| {
                store.seal();
                store
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("replay_14_days_hourly", |b| {
        b.iter(|| {
            let mut store = TelemetryStore::new();
            let mut acc = 0.0;
            for h in 0..HOURS {
                store.extend(hour_batch(h));
                acc += group_utilization(black_box(&store))
                    .iter()
                    .map(|g| g.mean_cpu_utilization)
                    .sum::<f64>();
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_monitor_window,
    bench_wide_fleet,
    bench_seal,
    bench_stream
);
criterion_main!(benches);
