//! Durable-telemetry benchmarks: the WAL + segment persistence layer
//! against the flat-CSV path it supersedes for restart recovery.
//!
//! * `wal_append`: one streaming hour (256 rows) appended and fsynced —
//!   the steady-state durability cost per ingest batch — plus the bulk
//!   86k-row append that a cold backfill pays.
//! * `telemetry_persist`: restart cost at the monitor-window size
//!   (86,016 rows). `segment_load_86k` opens a directory whose sealed
//!   run was spilled to a segment file — since segment bodies decode
//!   lazily, this times manifest + header validation (microseconds);
//!   the restart-to-first-answer cost lives in `telemetry_retention`
//!   below. `csv_reingest_86k` re-parses the same records from CSV and
//!   rebuilds the index from scratch; `recovery_with_wal_tail` adds a
//!   256-row WAL tail on top of the segment to show replay cost is
//!   marginal.
//!
//! * `telemetry_retention`: month-scale retention (30 days × 256
//!   machines = 184,320 rows, ingested day by day so the ladder leaves
//!   a multi-segment directory). `day_query_pruned` opens the store and
//!   answers a one-day windowed roll-up — hour-bound pruning decodes
//!   only the segment(s) covering that day; `day_query_full_load`
//!   forces every segment resident first (the open-everything restart
//!   the pruning replaces; acceptance bar: pruned ≥5× faster);
//!   `rotate_spill_one_day` seals + syncs one new day against the month
//!   of history, timing a rotation whose write amplification is bounded
//!   to the new run (asserted: unchanged segments are not rewritten).
//!
//! Numbers are recorded in `BENCH_persist.json` (written when
//! `KEA_BENCH_JSON` is set; CI uploads it as an artifact).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kea_telemetry::{
    daily_group_aggregates_window, read_csv, write_csv, GroupKey, MachineHourRecord, MachineId,
    MetricValues, ScId, SkuId, TelemetryStore,
};
use std::hint::black_box;
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const N_GROUPS: u16 = 8;
const MACHINES_PER_GROUP: u32 = 32; // 8 × 32 = 256 machines
const DAYS: u64 = 14;
const HOURS: u64 = DAYS * 24; // 336 hourly records per machine

/// One hour of fleet telemetry: 256 machine-hour rows, the shape of one
/// streaming ingest batch (mirrors `telemetry_scan`'s generator).
fn hour_batch(h: u64) -> Vec<MachineHourRecord> {
    let mut records = Vec::with_capacity((N_GROUPS as usize) * (MACHINES_PER_GROUP as usize));
    for g in 0..N_GROUPS {
        let group = GroupKey::new(SkuId(g), ScId(1));
        for m in 0..MACHINES_PER_GROUP {
            let machine = MachineId(g as u32 * 10_000 + m);
            let phase = (h % 24) as f64 / 24.0;
            let util = 30.0 + g as f64 * 5.0 + 40.0 * phase + (m % 5) as f64;
            records.push(MachineHourRecord {
                machine,
                group,
                hour: h,
                metrics: MetricValues {
                    cpu_utilization: util.min(100.0),
                    avg_running_containers: 4.0 + (m % 7) as f64 + 3.0 * phase,
                    tasks_finished: 50.0 + util,
                    total_data_read_gb: 2.0 + 0.1 * util,
                    task_exec_time_s: 3000.0 + 10.0 * util,
                    cpu_time_s: 1500.0 + 5.0 * util,
                    avg_task_latency_s: 100.0 + util,
                    power_draw_w: 200.0 + util,
                    ..Default::default()
                },
            });
        }
    }
    records
}

/// The monitor-window fleet: 86,016 machine-hour rows (14 days of
/// [`hour_batch`]es).
fn monitor_window() -> Vec<MachineHourRecord> {
    (0..HOURS).flat_map(hour_batch).collect()
}

/// A scratch store directory under the system temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "kea-bench-persist-{}-{tag}-{n}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Builds a durable store directory holding the sealed monitor window in
/// a segment file, with an empty WAL. Returns the scratch guard.
fn sealed_store_dir(records: &[MachineHourRecord], tag: &str) -> Scratch {
    let scratch = Scratch::new(tag);
    let mut store = TelemetryStore::open(&scratch.0).expect("open scratch store");
    store.extend(records.iter().copied());
    store.seal();
    store.sync().expect("sync sealed store");
    scratch
}

fn bench_wal_append(c: &mut Criterion) {
    let batch = hour_batch(HOURS);
    let window = monitor_window();

    let mut group = c.benchmark_group("wal_append");
    group.sample_size(20);
    // Steady state: one streaming hour made durable (append + one fsync).
    group.bench_function("sync_one_hour_256_rows", |b| {
        let scratch = Scratch::new("hour");
        let mut store = TelemetryStore::open(&scratch.0).expect("open store");
        let mut h = HOURS;
        b.iter(|| {
            store.extend(hour_batch(h));
            h += 1;
            store.sync().expect("sync hour batch");
        });
    });
    // Cold backfill: the whole window appended and synced in one frame.
    group.bench_function("sync_bulk_86k_rows", |b| {
        b.iter_batched(
            || {
                let scratch = Scratch::new("bulk");
                let store = TelemetryStore::open(&scratch.0).expect("open store");
                (scratch, store)
            },
            |(scratch, mut store)| {
                store.extend(window.iter().copied());
                store.sync().expect("sync bulk");
                drop(store);
                scratch
            },
            BatchSize::PerIteration,
        )
    });
    let _ = black_box(&batch);
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let records = monitor_window();

    // CSV fixture for the re-ingest side.
    let csv_scratch = Scratch::new("csv");
    std::fs::create_dir_all(&csv_scratch.0).expect("create csv dir");
    let csv_path = csv_scratch.0.join("window.csv");
    {
        let mut store = TelemetryStore::new();
        store.extend(records.iter().copied());
        let mut out = Vec::new();
        write_csv(&store, &mut out).expect("render csv");
        std::fs::write(&csv_path, out).expect("write csv fixture");
    }

    // Segment fixture: sealed run spilled to disk, empty WAL.
    let seg_scratch = sealed_store_dir(&records, "segment");

    // Segment + tail fixture: one extra streaming hour in the WAL.
    let tail_scratch = sealed_store_dir(&records, "tail");
    {
        let mut store = TelemetryStore::open(&tail_scratch.0).expect("reopen tail store");
        store.extend(hour_batch(HOURS));
        store.sync().expect("sync tail");
    }

    // Sanity before timing: both restart paths must yield the same rows.
    {
        let from_seg = TelemetryStore::open(&seg_scratch.0).expect("recover segment");
        let from_csv =
            read_csv(BufReader::new(std::fs::File::open(&csv_path).expect("open csv")))
                .expect("re-ingest csv");
        assert_eq!(from_seg.len(), from_csv.len(), "restart paths diverged");
        let from_tail = TelemetryStore::open(&tail_scratch.0).expect("recover tail");
        assert_eq!(from_tail.len(), records.len() + 256, "tail replay diverged");
    }

    let mut group = c.benchmark_group("telemetry_persist");
    group.sample_size(20);
    group.bench_function("segment_load_86k", |b| {
        b.iter(|| TelemetryStore::open(black_box(&seg_scratch.0)).expect("recover segment"))
    });
    group.bench_function("csv_reingest_86k", |b| {
        b.iter(|| {
            let file = std::fs::File::open(black_box(&csv_path)).expect("open csv");
            read_csv(BufReader::new(file)).expect("re-ingest csv")
        })
    });
    group.bench_function("recovery_with_wal_tail", |b| {
        b.iter(|| TelemetryStore::open(black_box(&tail_scratch.0)).expect("recover tail"))
    });
    group.finish();
}

/// Copies a flat store directory (MANIFEST + WAL + segments) so a bench
/// iteration can mutate it without touching the shared fixture.
fn copy_store_dir(src: &PathBuf, tag: &str) -> Scratch {
    let scratch = Scratch::new(tag);
    std::fs::create_dir_all(&scratch.0).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read fixture dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), scratch.0.join(entry.file_name())).expect("copy store file");
    }
    scratch
}

fn bench_retention(c: &mut Criterion) {
    const MONTH_DAYS: u64 = 30;
    const ROWS_PER_DAY: usize = 24 * (N_GROUPS as usize) * (MACHINES_PER_GROUP as usize);

    // A month of fleet history ingested the way a live monitor would:
    // one day at a time, sealed and synced, so the binary-counter ladder
    // leaves a handful of segments of geometrically increasing span and
    // the final day lands in the smallest one.
    let month_scratch = Scratch::new("month");
    {
        let mut store = TelemetryStore::open(&month_scratch.0).expect("open month store");
        for d in 0..MONTH_DAYS {
            store.extend((d * 24..(d + 1) * 24).flat_map(hour_batch));
            store.seal();
            store.sync().expect("sync day");
        }
    }
    let day_start = (MONTH_DAYS - 1) * 24;
    let day_end = MONTH_DAYS * 24;

    // Sanity before timing: pruning must not change answers, and the
    // final day must be answerable without decoding the whole month.
    {
        let store = TelemetryStore::open(&month_scratch.0).expect("reopen month store");
        assert_eq!(store.len(), MONTH_DAYS as usize * ROWS_PER_DAY);
        assert!(store.run_count() > 1, "month fixture must be multi-segment");
        let windowed = daily_group_aggregates_window(&store, day_start, day_end);
        assert!(!windowed.is_empty(), "final day must produce roll-ups");
        assert!(
            store.resident_runs() < store.run_count(),
            "one-day query must leave most segments undecoded"
        );
    }

    let mut group = c.benchmark_group("telemetry_retention");
    group.sample_size(20);
    // Restart + one-day roll-up, hour-bound pruning live: only the
    // segment(s) whose bounds intersect the final day are decoded.
    group.bench_function("day_query_pruned", |b| {
        b.iter(|| {
            let store = TelemetryStore::open(black_box(&month_scratch.0)).expect("open month");
            black_box(daily_group_aggregates_window(&store, day_start, day_end))
        })
    });
    // The open-everything restart this PR replaces: force every segment
    // resident (what eager recovery paid), then the same roll-up.
    group.bench_function("day_query_full_load", |b| {
        b.iter(|| {
            let store = TelemetryStore::open(black_box(&month_scratch.0)).expect("open month");
            store.verify().expect("decode every segment");
            black_box(daily_group_aggregates_window(&store, day_start, day_end))
        })
    });
    // Write amplification per rotation: one new day sealed + synced on
    // top of the month. Only the new run (and whatever the ladder folds
    // it into) may be spilled; the month's history passes through by
    // name.
    group.bench_function("rotate_spill_one_day", |b| {
        b.iter_batched(
            || {
                let scratch = copy_store_dir(&month_scratch.0, "rotate");
                let mut store = TelemetryStore::open(&scratch.0).expect("open copy");
                store.extend((MONTH_DAYS * 24..(MONTH_DAYS + 1) * 24).flat_map(hour_batch));
                store.seal();
                (scratch, store)
            },
            |(scratch, mut store)| {
                let stats = store.sync().expect("rotation sync");
                assert!(stats.rotated, "sealed day must rotate");
                black_box(stats.segment_bytes);
                (scratch, store)
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_wal_append, bench_recovery, bench_retention);
criterion_main!(benches);
