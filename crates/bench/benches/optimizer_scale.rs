//! Scaling benchmark for the tuning hot path: fits a 64-group /
//! 2048-machine synthetic fleet and runs `optimize_max_containers`
//! through both the incremental O(G) implementation and the preserved
//! O(G²) full-recompute reference, so the speedup is measured in the
//! same process on the same engine. Methodology and current numbers are
//! recorded in the repository README ("Performance") and CHANGES.md.

use criterion::{criterion_group, criterion_main, Criterion};
use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::{optimize_max_containers, OperatingPoint, PerformanceMonitor};
use kea_telemetry::{
    GroupKey, MachineHourRecord, MachineId, MetricValues, ScId, SkuId, TelemetryStore,
};
use std::collections::BTreeMap;
use std::hint::black_box;

const N_GROUPS: usize = 64;
const MACHINES_PER_GROUP: u32 = 32; // 64 × 32 = 2048 machines total
const HOURS: u64 = 48;

/// A 64-group fleet whose dynamics vary smoothly across groups, so every
/// group fits cleanly and the optimizer has real gradients to trade on.
fn fleet_store() -> (TelemetryStore, BTreeMap<GroupKey, usize>) {
    let mut store = TelemetryStore::new();
    let mut counts = BTreeMap::new();
    for g in 0..N_GROUPS {
        let group = GroupKey::new(SkuId(g as u16), ScId(1));
        counts.insert(group, MACHINES_PER_GROUP as usize);
        let g_slope = 2.0 + (g % 7) as f64 * 0.7; // containers → util
        let f_slope = 0.5 + (g % 5) as f64 * 1.1; // util → latency
        let h_slope = 0.8 + (g % 3) as f64 * 0.6; // util → tasks
        for m in 0..MACHINES_PER_GROUP {
            for h in 0..HOURS {
                let containers = 5.0 + (m % 4) as f64 + (h % 8) as f64 * 0.5;
                let util = (2.0 + g_slope * containers).min(100.0);
                store.push(MachineHourRecord {
                    machine: MachineId(g as u32 * 1000 + m),
                    group,
                    hour: h,
                    metrics: MetricValues {
                        avg_running_containers: containers,
                        cpu_utilization: util,
                        tasks_finished: (5.0 + h_slope * util).max(0.5),
                        avg_task_latency_s: 80.0 + f_slope * util,
                        ..Default::default()
                    },
                });
            }
        }
    }
    (store, counts)
}

fn bench_fit(c: &mut Criterion) {
    let (store, _) = fleet_store();
    let monitor = PerformanceMonitor::new(&store);
    let mut group = c.benchmark_group("whatif_fit");
    group.sample_size(20);
    group.bench_function("fit_64_groups_2048_machines", |b| {
        b.iter(|| {
            WhatIfEngine::fit_at(
                black_box(&monitor),
                FitMethod::Huber,
                Granularity::Hourly,
                24,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_optimize(c: &mut Criterion) {
    let (store, counts) = fleet_store();
    let monitor = PerformanceMonitor::new(&store);
    let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
        .expect("synthetic fleet always fits");

    // Sanity: both paths must produce the same plan before timing them.
    let fast = optimize_max_containers(&engine, &counts, 1.0, OperatingPoint::Median).unwrap();
    let slow =
        kea_core::optimizer::reference::optimize_max_containers(
            &engine,
            &counts,
            1.0,
            OperatingPoint::Median,
        )
        .unwrap();
    assert_eq!(fast.steps(), slow.steps(), "implementations diverged");

    let mut group = c.benchmark_group("optimize_max_containers");
    group.sample_size(20);
    group.bench_function("incremental_64_groups", |b| {
        b.iter(|| {
            optimize_max_containers(
                black_box(&engine),
                black_box(&counts),
                1.0,
                OperatingPoint::Median,
            )
            .unwrap()
        })
    });
    group.bench_function("reference_full_recompute_64_groups", |b| {
        b.iter(|| {
            kea_core::optimizer::reference::optimize_max_containers(
                black_box(&engine),
                black_box(&counts),
                1.0,
                OperatingPoint::Median,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_optimize);
criterion_main!(benches);
