//! Scaling benchmarks for the tuning hot path.
//!
//! * `whatif_fit` / `optimize_max_containers`: fits a 64-group /
//!   2048-machine synthetic fleet and runs `optimize_max_containers`
//!   through both the incremental O(G) implementation and the preserved
//!   O(G²) full-recompute reference, so the speedup is measured in the
//!   same process on the same engine.
//! * `lp_simplex`: the solver itself at fleet scale — a 256-group
//!   YARN-shaped LP (one latency row, per-group `[−δ, δ]` step boxes)
//!   solved by the row-materialising `simplex::reference`, the
//!   bounded-variable solver cold, and a warm-started 8-point
//!   operating-point sweep vs the same sweep solved cold.
//!
//! Methodology and current numbers are recorded in the repository README
//! ("Performance") and `BENCH_simplex.json` (written when
//! `KEA_BENCH_JSON` is set; CI uploads it as an artifact).

use criterion::{criterion_group, criterion_main, Criterion};
use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::{optimize_max_containers, OperatingPoint, PerformanceMonitor};
use kea_opt::{simplex, LpProblem, Relation};
use kea_telemetry::{
    GroupKey, MachineHourRecord, MachineId, MetricValues, ScId, SkuId, TelemetryStore,
};
use std::collections::BTreeMap;
use std::hint::black_box;

const N_GROUPS: usize = 64;
const MACHINES_PER_GROUP: u32 = 32; // 64 × 32 = 2048 machines total
const HOURS: u64 = 48;

/// A 64-group fleet whose dynamics vary smoothly across groups, so every
/// group fits cleanly and the optimizer has real gradients to trade on.
fn fleet_store() -> (TelemetryStore, BTreeMap<GroupKey, usize>) {
    let mut store = TelemetryStore::new();
    let mut counts = BTreeMap::new();
    for g in 0..N_GROUPS {
        let group = GroupKey::new(SkuId(g as u16), ScId(1));
        counts.insert(group, MACHINES_PER_GROUP as usize);
        let g_slope = 2.0 + (g % 7) as f64 * 0.7; // containers → util
        let f_slope = 0.5 + (g % 5) as f64 * 1.1; // util → latency
        let h_slope = 0.8 + (g % 3) as f64 * 0.6; // util → tasks
        for m in 0..MACHINES_PER_GROUP {
            for h in 0..HOURS {
                let containers = 5.0 + (m % 4) as f64 + (h % 8) as f64 * 0.5;
                let util = (2.0 + g_slope * containers).min(100.0);
                store.push(MachineHourRecord {
                    machine: MachineId(g as u32 * 1000 + m),
                    group,
                    hour: h,
                    metrics: MetricValues {
                        avg_running_containers: containers,
                        cpu_utilization: util,
                        tasks_finished: (5.0 + h_slope * util).max(0.5),
                        avg_task_latency_s: 80.0 + f_slope * util,
                        ..Default::default()
                    },
                });
            }
        }
    }
    (store, counts)
}

fn bench_fit(c: &mut Criterion) {
    let (store, _) = fleet_store();
    let monitor = PerformanceMonitor::new(&store);
    let mut group = c.benchmark_group("whatif_fit");
    group.sample_size(20);
    group.bench_function("fit_64_groups_2048_machines", |b| {
        b.iter(|| {
            WhatIfEngine::fit_at(
                black_box(&monitor),
                FitMethod::Huber,
                Granularity::Hourly,
                24,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_optimize(c: &mut Criterion) {
    let (store, counts) = fleet_store();
    let monitor = PerformanceMonitor::new(&store);
    let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
        .expect("synthetic fleet always fits");

    // Sanity: both paths must produce the same plan before timing them.
    let fast = optimize_max_containers(&engine, &counts, 1.0, OperatingPoint::Median).unwrap();
    let slow =
        kea_core::optimizer::reference::optimize_max_containers(
            &engine,
            &counts,
            1.0,
            OperatingPoint::Median,
        )
        .unwrap();
    assert_eq!(fast.steps(), slow.steps(), "implementations diverged");

    let mut group = c.benchmark_group("optimize_max_containers");
    group.sample_size(20);
    group.bench_function("incremental_64_groups", |b| {
        b.iter(|| {
            optimize_max_containers(
                black_box(&engine),
                black_box(&counts),
                1.0,
                OperatingPoint::Median,
            )
            .unwrap()
        })
    });
    group.bench_function("reference_full_recompute_64_groups", |b| {
        b.iter(|| {
            kea_core::optimizer::reference::optimize_max_containers(
                black_box(&engine),
                black_box(&counts),
                1.0,
                OperatingPoint::Median,
            )
            .unwrap()
        })
    });
    group.finish();
}

const LP_GROUPS: usize = 256;
const SWEEP_POINTS: usize = 8;

/// Deterministic pseudo-varied latency gradients for a 256-group
/// YARN-shaped LP at "operating point" `point` (the sweep perturbs the
/// gradients the way a percentile shift does: same signs, nearby
/// magnitudes).
fn lp_gradients(point: usize) -> Vec<f64> {
    (0..LP_GROUPS)
        .map(|k| {
            let base = 0.2 + ((k * 37 + 11) % 97) as f64 / 97.0 * 4.0;
            base * (1.0 + 0.03 * point as f64) + ((k * 13 + point * 29) % 17) as f64 * 0.01
        })
        .collect()
}

fn lp_machine_counts() -> Vec<f64> {
    (0..LP_GROUPS)
        .map(|k| 16.0 + ((k * 53 + 7) % 31) as f64 * 4.0)
        .collect()
}

/// The §5.2 LP in the step variables at fleet scale: maximize
/// `Σ n_k d_k` s.t. `∇W̄·d ≤ 0`, `−δ ≤ d_k ≤ δ`. One tableau row for the
/// bounded solver; `1 + 2·256` effective rows for the reference.
fn yarn_lp(point: usize) -> LpProblem {
    let n_machines = lp_machine_counts();
    let mut lp = LpProblem::maximize(n_machines)
        .constraint(lp_gradients(point), Relation::Le, 0.0)
        .expect("dimensions match");
    for i in 0..LP_GROUPS {
        lp = lp.bounds(i, -1.0, Some(1.0)).expect("valid bounds");
    }
    lp
}

fn bench_simplex(c: &mut Criterion) {
    // Sanity before timing: all three paths must agree at every sweep
    // point (reference vs bounded-cold vs warm-started).
    let mut warm = None;
    for point in 0..SWEEP_POINTS {
        let lp = yarn_lp(point);
        let refsol = simplex::reference::solve(&lp).expect("reference solves");
        let cold = lp.solve().expect("bounded solves");
        let (warm_sol, basis) = lp.solve_warm(warm.as_ref()).expect("warm solves");
        warm = Some(basis);
        let tol = 1e-9 * (1.0 + refsol.objective.abs());
        assert!(
            (refsol.objective - cold.objective).abs() <= tol,
            "reference vs bounded diverged at point {point}"
        );
        assert!(
            (refsol.objective - warm_sol.objective).abs() <= tol,
            "reference vs warm diverged at point {point}"
        );
    }

    let mut group = c.benchmark_group("lp_simplex");
    group.sample_size(10);
    group.bench_function("reference_256_groups", |b| {
        let lp = yarn_lp(0);
        b.iter(|| simplex::reference::solve(black_box(&lp)).expect("reference solves"))
    });
    group.bench_function("bounded_cold_256_groups", |b| {
        let lp = yarn_lp(0);
        b.iter(|| black_box(&lp).solve().expect("bounded solves"))
    });
    // The sweep benches re-cost the LP per point (fresh problem build
    // each iteration for both, so the only difference on the clock is
    // cold start vs warm start).
    group.bench_function("cold_sweep_8_points_256_groups", |b| {
        b.iter(|| {
            let mut last = None;
            for point in 0..SWEEP_POINTS {
                last = Some(yarn_lp(point).solve().expect("bounded solves"));
            }
            last
        })
    });
    group.bench_function("warm_sweep_8_points_256_groups", |b| {
        b.iter(|| {
            let mut warm = None;
            let mut last = None;
            for point in 0..SWEEP_POINTS {
                let (sol, basis) = yarn_lp(point)
                    .solve_warm(warm.as_ref())
                    .expect("warm solves");
                warm = Some(basis);
                last = Some(sol);
            }
            last
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_optimize, bench_simplex);
criterion_main!(benches);
