//! Inline suppression directives.
//!
//! The contract (documented in CONTRIBUTING.md):
//!
//! * `// kea-lint: allow(<rule>[, <rule>…]) — <reason>` silences the
//!   named rule(s) on the directive's own line and on the line
//!   immediately below it. The reason is **mandatory**.
//! * `// kea-lint: allow-file(<rule>[, <rule>…]) — <reason>` silences
//!   the named rule(s) for the whole file; intended for dense numeric
//!   kernels where a per-line directive per index would drown the code.
//! * The reason separator is an em dash (`—`), `--`, `-`, or `:`.
//! * A malformed directive (unknown rule, missing reason, bad syntax)
//!   is itself reported as `bad-suppression` and cannot be silenced.
//! * A **stale** directive — one that suppresses zero diagnostics — is
//!   also a `bad-suppression`: dead allows hide real regressions behind
//!   a wall of noise and must be deleted (`--fix` removes them).

use crate::diag::Diagnostic;

/// Rule id for malformed or stale suppression directives.
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// One parsed `allow`/`allow-file` directive.
#[derive(Debug)]
struct Directive {
    /// 1-based line the directive comment lives on.
    line: u32,
    /// Rules it names, with a per-rule "suppressed something" mark.
    rules: Vec<(String, bool)>,
    /// `allow-file` scope?
    file_scoped: bool,
}

/// Parsed suppression state for one file.
#[derive(Debug, Default)]
pub struct Suppressions {
    directives: Vec<Directive>,
    /// Diagnostics for malformed directives.
    pub bad: Vec<Diagnostic>,
}

impl Suppressions {
    /// Does a directive cover `rule` at `line`? (Read-only form — does
    /// not mark usage; [`Suppressions::filter`] does.)
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.directive_for(rule, line).is_some()
    }

    /// Index of `(directive, rule-slot)` covering `rule` at `line`.
    ///
    /// Line-scoped allows cover the directive's own line and the next
    /// line, so both trailing (`stmt; // kea-lint: allow(...) — r`) and
    /// leading (directive on its own line above) placements work.
    ///
    /// Binding order matters for stale tracking: a trailing directive on
    /// the diagnostic's own line binds tighter than a leading one on the
    /// line above, which binds tighter than file scope — otherwise two
    /// consecutive trailing allows shadow each other and the second one
    /// is falsely reported stale.
    fn directive_for(&self, rule: &str, line: u32) -> Option<(usize, usize)> {
        if rule == BAD_SUPPRESSION {
            return None;
        }
        for pass in 0..3 {
            for (di, d) in self.directives.iter().enumerate() {
                let scope_hit = match pass {
                    0 => !d.file_scoped && d.line == line,
                    1 => !d.file_scoped && d.line + 1 == line,
                    _ => d.file_scoped,
                };
                if !scope_hit {
                    continue;
                }
                if let Some(ri) = d.rules.iter().position(|(r, _)| r == rule) {
                    return Some((di, ri));
                }
            }
        }
        None
    }

    /// Drop every suppressed diagnostic from `diags`, marking the
    /// directives that did the suppressing.
    pub fn filter(&mut self, diags: &mut Vec<Diagnostic>) {
        diags.retain(|d| match self.directive_for(&d.rule, d.line) {
            Some((di, ri)) => {
                self.directives[di].rules[ri].1 = true;
                false
            }
            None => true,
        });
    }

    /// One `bad-suppression` diagnostic per allow that suppressed
    /// nothing. Call after [`Suppressions::filter`].
    pub fn stale(&self, file: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for d in &self.directives {
            for (rule, used) in &d.rules {
                if *used {
                    continue;
                }
                let scope = if d.file_scoped { "allow-file" } else { "allow" };
                out.push(Diagnostic::new(
                    BAD_SUPPRESSION,
                    file,
                    d.line,
                    1,
                    format!(
                        "stale suppression: `{scope}({rule})` suppresses no diagnostic — \
                         delete it (or run `kea-lint --fix`)"
                    ),
                ));
            }
        }
        out
    }

    /// Lines whose directive is stale for *every* rule it names — the
    /// mechanically removable set `--fix` deletes.
    pub fn fully_stale_lines(&self) -> Vec<u32> {
        self.directives
            .iter()
            .filter(|d| d.rules.iter().all(|(_, used)| !used))
            .map(|d| d.line)
            .collect()
    }
}

/// Parse every `kea-lint:` directive out of a file's line comments.
///
/// `known_rules` is the set of valid rule ids; referencing anything else
/// is a `bad-suppression` diagnostic.
pub fn parse(file: &str, comments: &[(u32, String)], known_rules: &[&str]) -> Suppressions {
    let mut sup = Suppressions::default();
    for (line, text) in comments {
        let Some(at) = text.find("kea-lint:") else {
            continue;
        };
        let body = text[at + "kea-lint:".len()..].trim_start();
        match parse_directive(body, known_rules) {
            Ok((rules, file_scoped)) => sup.directives.push(Directive {
                line: *line,
                rules: rules.into_iter().map(|r| (r, false)).collect(),
                file_scoped,
            }),
            Err(why) => sup.bad.push(Diagnostic::new(
                BAD_SUPPRESSION,
                file,
                *line,
                1,
                format!("malformed kea-lint directive: {why}"),
            )),
        }
    }
    sup
}

/// Parse `allow(<rules>) <sep> <reason>` / `allow-file(...)`; returns
/// the rule list and whether the directive is file-scoped.
fn parse_directive(body: &str, known_rules: &[&str]) -> Result<(Vec<String>, bool), String> {
    let (file_scoped, rest) = if let Some(r) = body.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = body.strip_prefix("allow") {
        (false, r)
    } else {
        return Err(format!(
            "expected `allow(...)` or `allow-file(...)`, found `{}`",
            body.chars().take(30).collect::<String>()
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after allow".into());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed rule list — missing `)`".into());
    };
    let mut rules = Vec::new();
    for raw in rest[..close].split(',') {
        let rule = raw.trim();
        if rule.is_empty() {
            return Err("empty rule name in allow list".into());
        }
        if !known_rules.contains(&rule) {
            return Err(format!(
                "unknown rule `{rule}` (known: {})",
                known_rules.join(", ")
            ));
        }
        rules.push(rule.to_string());
    }
    // Reason: mandatory, after a separator.
    let tail = rest[close + 1..].trim_start();
    let reason = ["—", "--", "-", ":"]
        .iter()
        .find_map(|sep| tail.strip_prefix(sep))
        .map(str::trim);
    match reason {
        Some(r) if !r.is_empty() => Ok((rules, file_scoped)),
        _ => Err("missing reason — write `allow(<rule>) — <why this is safe>`".into()),
    }
}
