//! Inline suppression directives.
//!
//! The contract (documented in CONTRIBUTING.md):
//!
//! * `// kea-lint: allow(<rule>[, <rule>…]) — <reason>` silences the
//!   named rule(s) on the directive's own line and on the line
//!   immediately below it. The reason is **mandatory**.
//! * `// kea-lint: allow-file(<rule>[, <rule>…]) — <reason>` silences
//!   the named rule(s) for the whole file; intended for dense numeric
//!   kernels where a per-line directive per index would drown the code.
//! * The reason separator is an em dash (`—`), `--`, `-`, or `:`.
//! * A malformed directive (unknown rule, missing reason, bad syntax)
//!   is itself reported as `bad-suppression` and cannot be silenced.

use crate::diag::Diagnostic;

/// Rule id for malformed suppression directives.
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// Parsed suppression state for one file.
#[derive(Debug, Default)]
pub struct Suppressions {
    /// `(directive line, rule)` pairs from line-scoped `allow(...)`.
    line_allows: Vec<(u32, String)>,
    /// Rules allowed for the entire file via `allow-file(...)`.
    file_allows: Vec<String>,
    /// Diagnostics for malformed directives.
    pub bad: Vec<Diagnostic>,
}

impl Suppressions {
    /// Does a directive cover `rule` at `line`?
    ///
    /// Line-scoped allows cover the directive's own line and the next
    /// line, so both trailing (`stmt; // kea-lint: allow(...) — r`) and
    /// leading (directive on its own line above) placements work.
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        if rule == BAD_SUPPRESSION {
            return false;
        }
        if self.file_allows.iter().any(|r| r == rule) {
            return true;
        }
        self.line_allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || l + 1 == line))
    }
}

/// Parse every `kea-lint:` directive out of a file's line comments.
///
/// `known_rules` is the set of valid rule ids; referencing anything else
/// is a `bad-suppression` diagnostic.
pub fn parse(file: &str, comments: &[(u32, String)], known_rules: &[&str]) -> Suppressions {
    let mut sup = Suppressions::default();
    for (line, text) in comments {
        let Some(at) = text.find("kea-lint:") else {
            continue;
        };
        let body = text[at + "kea-lint:".len()..].trim_start();
        match parse_directive(body, known_rules) {
            Ok((rules, file_scoped)) => {
                for r in rules {
                    if file_scoped {
                        sup.file_allows.push(r);
                    } else {
                        sup.line_allows.push((*line, r));
                    }
                }
            }
            Err(why) => sup.bad.push(Diagnostic::new(
                BAD_SUPPRESSION,
                file,
                *line,
                1,
                format!("malformed kea-lint directive: {why}"),
            )),
        }
    }
    sup
}

/// Parse `allow(<rules>) <sep> <reason>` / `allow-file(...)`; returns
/// the rule list and whether the directive is file-scoped.
fn parse_directive(body: &str, known_rules: &[&str]) -> Result<(Vec<String>, bool), String> {
    let (file_scoped, rest) = if let Some(r) = body.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = body.strip_prefix("allow") {
        (false, r)
    } else {
        return Err(format!(
            "expected `allow(...)` or `allow-file(...)`, found `{}`",
            body.chars().take(30).collect::<String>()
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after allow".into());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed rule list — missing `)`".into());
    };
    let mut rules = Vec::new();
    for raw in rest[..close].split(',') {
        let rule = raw.trim();
        if rule.is_empty() {
            return Err("empty rule name in allow list".into());
        }
        if !known_rules.contains(&rule) {
            return Err(format!(
                "unknown rule `{rule}` (known: {})",
                known_rules.join(", ")
            ));
        }
        rules.push(rule.to_string());
    }
    // Reason: mandatory, after a separator.
    let tail = rest[close + 1..].trim_start();
    let reason = ["—", "--", "-", ":"]
        .iter()
        .find_map(|sep| tail.strip_prefix(sep))
        .map(str::trim);
    match reason {
        Some(r) if !r.is_empty() => Ok((rules, file_scoped)),
        _ => Err("missing reason — write `allow(<rule>) — <why this is safe>`".into()),
    }
}
