//! `kea-lint` CLI.
//!
//! ```text
//! kea-lint --workspace [--format human|json]
//! kea-lint [--format human|json] <file.rs>...
//! ```
//!
//! `--workspace` locates the workspace root from the current directory
//! and lints the library crates under the standing policy (see
//! [`kea_lint::walk`]). Explicit file arguments are linted *as library
//! code* regardless of where they live — this is how the fixture corpus
//! under `crates/lint/tests/fixtures/` is exercised.
//!
//! Exit codes: `0` clean, `1` diagnostics reported, `2` usage or I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format_json = false;
    let mut workspace = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("human") => format_json = false,
                other => {
                    eprintln!(
                        "kea-lint: --format expects `human` or `json`, got {:?}",
                        other.unwrap_or("<none>")
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: kea-lint --workspace [--format human|json]\n       \
                     kea-lint [--format human|json] <file.rs>...\n\n\
                     Rules: {}",
                    kea_lint::rules::ALL_RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => {
                eprintln!("kea-lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let diags = if workspace {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("kea-lint: cannot read current dir: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = kea_lint::walk::find_workspace_root(&cwd) else {
            eprintln!("kea-lint: no workspace Cargo.toml above {}", cwd.display());
            return ExitCode::from(2);
        };
        match kea_lint::lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("kea-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if files.is_empty() {
        eprintln!("kea-lint: nothing to lint — pass --workspace or file paths (try --help)");
        return ExitCode::from(2);
    } else {
        let mut diags = Vec::new();
        for f in &files {
            let path = PathBuf::from(f);
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("kea-lint: reading {f}: {e}");
                    return ExitCode::from(2);
                }
            };
            diags.extend(kea_lint::lint_source(f, &src));
        }
        kea_lint::diag::sort(&mut diags);
        diags
    };

    if format_json {
        print!("{}", kea_lint::diag::render_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.human());
        }
        if diags.is_empty() {
            println!("kea-lint: clean");
        } else {
            println!(
                "kea-lint: {} diagnostic{} — the tuning loop must not panic",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" }
            );
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
