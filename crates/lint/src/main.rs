//! `kea-lint` CLI.
//!
//! ```text
//! kea-lint --workspace [--format human|json|sarif]
//! kea-lint [--format human|json|sarif] <file.rs>...
//! kea-lint --workspace --fix [--scaffold-allows]
//! kea-lint --workspace --fix-dry-run
//! ```
//!
//! `--workspace` locates the workspace root from the current directory
//! and lints the library crates under the standing policy (see
//! [`kea_lint::walk`]). Explicit file arguments are linted *as library
//! code* regardless of where they live — this is how the fixture corpus
//! under `crates/lint/tests/fixtures/` is exercised.
//!
//! `--fix` applies the mechanical rewrites from [`kea_lint::fix`] in
//! place (idempotent — a second run is a no-op), then reports what
//! remains. `--fix-dry-run` prints the planned edits without writing;
//! CI runs it as a non-blocking drift check. `--scaffold-allows`
//! additionally inserts `FIXME`-reasoned allow directives above the
//! findings no rewrite covers — a burn-down aid, not a way to ship.
//!
//! `--format json` includes `elapsed_ms` (lint wall-clock, for the
//! bench artifacts); `--format sarif` emits SARIF 2.1.0 for code
//! scanning upload.
//!
//! Exit codes: `0` clean (or dry-run with nothing to do), `1`
//! diagnostics reported (or dry-run with pending edits), `2` usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut workspace = false;
    let mut fix = false;
    let mut fix_dry_run = false;
    let mut scaffold = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--fix" => fix = true,
            "--fix-dry-run" => fix_dry_run = true,
            "--scaffold-allows" => scaffold = true,
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("human") => format = Format::Human,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "kea-lint: --format expects `human`, `json`, or `sarif`, got {:?}",
                        other.unwrap_or("<none>")
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: kea-lint --workspace [--format human|json|sarif]\n       \
                     kea-lint [--format human|json|sarif] <file.rs>...\n       \
                     kea-lint --workspace --fix [--scaffold-allows]\n       \
                     kea-lint --workspace --fix-dry-run\n\nRules:"
                );
                for r in kea_lint::rules::ALL_RULES {
                    eprintln!("  {r:<26} {}", kea_lint::rules::describe(r));
                }
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => {
                eprintln!("kea-lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if scaffold && !(fix || fix_dry_run) {
        eprintln!("kea-lint: --scaffold-allows requires --fix or --fix-dry-run");
        return ExitCode::from(2);
    }
    if fix && fix_dry_run {
        eprintln!("kea-lint: --fix and --fix-dry-run are mutually exclusive");
        return ExitCode::from(2);
    }

    // Resolve the file set: (diagnostic label, absolute path).
    let targets: Vec<(String, PathBuf)> = if workspace {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("kea-lint: cannot read current dir: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = kea_lint::walk::find_workspace_root(&cwd) else {
            eprintln!("kea-lint: no workspace Cargo.toml above {}", cwd.display());
            return ExitCode::from(2);
        };
        match kea_lint::walk::library_sources(&root) {
            Ok(rels) => rels
                .into_iter()
                .map(|rel| {
                    let label = rel.to_string_lossy().replace('\\', "/");
                    (label, root.join(rel))
                })
                .collect(),
            Err(e) => {
                eprintln!("kea-lint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else if files.is_empty() {
        eprintln!("kea-lint: nothing to lint — pass --workspace or file paths (try --help)");
        return ExitCode::from(2);
    } else {
        files.iter().map(|f| (f.clone(), PathBuf::from(f))).collect()
    };

    // Fix modes plan per file; `--fix` writes the result back.
    if fix || fix_dry_run {
        let mut planned = 0usize;
        for (label, path) in &targets {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("kea-lint: reading {label}: {e}");
                    return ExitCode::from(2);
                }
            };
            let edits = kea_lint::fix::plan(label, &src, scaffold);
            if edits.is_empty() {
                continue;
            }
            planned += edits.len();
            for e in &edits {
                println!("{}", e.human(label));
            }
            if fix {
                let out = kea_lint::fix::apply(&src, &edits);
                if let Err(e) = std::fs::write(path, out) {
                    eprintln!("kea-lint: writing {label}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        let verb = if fix { "applied" } else { "would apply" };
        println!(
            "kea-lint: {verb} {planned} edit{}",
            if planned == 1 { "" } else { "s" }
        );
        if fix_dry_run {
            return if planned == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
        // fall through: lint the (now fixed) files and report what's left
    }

    let started = Instant::now();
    let mut diags = Vec::new();
    for (label, path) in &targets {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("kea-lint: reading {label}: {e}");
                return ExitCode::from(2);
            }
        };
        diags.extend(kea_lint::lint_source(label, &src));
    }
    kea_lint::diag::sort(&mut diags);
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    match format {
        Format::Json => print!(
            "{}",
            kea_lint::diag::render_json_timed(&diags, Some(elapsed_ms))
        ),
        Format::Sarif => print!("{}", kea_lint::diag::render_sarif(&diags)),
        Format::Human => {
            for d in &diags {
                println!("{}", d.human());
            }
            if diags.is_empty() {
                println!("kea-lint: clean");
            } else {
                println!(
                    "kea-lint: {} diagnostic{} — the tuning loop must not panic",
                    diags.len(),
                    if diags.len() == 1 { "" } else { "s" }
                );
            }
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
