//! Workspace discovery and the lint policy.
//!
//! Policy: the panic-free/NaN-safe invariants apply to the **library
//! crates** that sit on KEA's always-on tuning path. Test files
//! (`tests/`, `benches/`), examples, the bench harness, vendored
//! dependency stand-ins, and this lint crate itself are out of scope —
//! aborting a test on a violated invariant is exactly what tests are
//! for.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees the lints apply to.
pub const LIBRARY_CRATES: &[&str] = &["core", "ml", "opt", "sim", "stats", "telemetry"];

/// Locate the workspace root by walking up from `start` until a
/// directory containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every `.rs` file under the library crates' `src/` directories,
/// workspace-relative, sorted for deterministic output.
pub fn library_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for krate in LIBRARY_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out)?;
        }
    }
    for p in &mut out {
        if let Ok(rel) = p.strip_prefix(root) {
            *p = rel.to_path_buf();
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
