//! A minimal hand-rolled Rust lexer.
//!
//! `kea-lint` deliberately avoids `syn`/`proc-macro2` (the build
//! environment vendors every dependency, and a full parse is not needed
//! for the rule set). The lexer produces a flat token stream with
//! comments captured out-of-band so suppression directives — which live
//! in line comments — can be matched against diagnostics by line.
//!
//! Fidelity notes:
//! * strings (plain, raw, byte, byte-raw), char literals, and lifetimes
//!   are recognized so that `'` and `"` content never leaks tokens;
//! * block comments nest, as in real Rust;
//! * common multi-character operators (`::`, `==`, `!=`, `..`, `->`,
//!   `=>`, …) are fused into single [`TokKind::Op`] tokens so rules can
//!   match `a == b` without reassembling punctuation;
//! * numeric literals are classified int vs. float (suffix- and
//!   exponent-aware) because two rules key off float literals.

/// Lexical class of a [`Tok`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `let`, `r#loop` → `loop`).
    Ident,
    /// Lifetime such as `'a` (the quote is consumed).
    Lifetime,
    /// Integer literal, including hex/octal/binary and suffixed forms.
    Int,
    /// Float literal (`1.5`, `1e-3`, `2f64`, `1.`).
    Float,
    /// String literal of any flavor (contents are kept but unescaped).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Fused multi-character operator (`::`, `==`, `..=`, …).
    Op,
    /// Any single punctuation character not fused into an `Op`.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Raw text of the token (for `Op`/`Punct`, the operator itself).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation/operator `s`.
    pub fn is_sym(&self, s: &str) -> bool {
        (self.kind == TokKind::Punct || self.kind == TokKind::Op) && self.text == s
    }
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// The token stream, comments and whitespace removed.
    pub toks: Vec<Tok>,
    /// Line comments as `(line, text-after-“//”)`, in file order.
    /// Doc comments (`///`, `//!`) are included; block comments are not
    /// (suppression directives are line comments by contract).
    pub line_comments: Vec<(u32, String)>,
}

/// Multi-character operators fused by the lexer, longest first.
const OPS: &[&str] = &[
    "..=", "<<=", ">>=", "::", "==", "!=", "<=", ">=", "->", "=>", "..", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
];

/// Lex `src` into tokens plus out-of-band line comments.
pub fn lex(src: &str) -> LexOutput {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: LexOutput::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: LexOutput,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.bytes[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn push(&mut self, kind: TokKind, text: &str, line: u32, col: u32) {
        self.out.toks.push(Tok {
            kind,
            text: text.to_string(),
            line,
            col,
        });
    }

    fn run(mut self) -> LexOutput {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string_lit(line, col),
                b'\'' => self.quote(line, col),
                b'0'..=b'9' => self.number(line, col),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(line, col),
                _ if b >= 0x80 => {
                    // Non-ASCII outside strings/comments: consume the
                    // whole UTF-8 sequence as an opaque punct.
                    let start = self.pos;
                    self.bump();
                    while self.pos < self.bytes.len() && self.peek(0) & 0xC0 == 0x80 {
                        self.bump();
                    }
                    let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.push(TokKind::Punct, &text, line, col);
                }
                _ => self.operator(line, col),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = self.src[start..self.pos].to_string();
        self.out.line_comments.push((line, text));
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
    }

    /// Plain `"..."` string starting at the opening quote.
    fn string_lit(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let start = self.pos;
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = self.src[start..self.pos].to_string();
        if self.pos < self.bytes.len() {
            self.bump(); // closing quote
        }
        self.push(TokKind::Str, &text, line, col);
    }

    /// Raw string `r##"..."##` starting at the first `#` or `"`.
    fn raw_string(&mut self, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        let start = self.pos;
        let end;
        'outer: loop {
            if self.pos >= self.bytes.len() {
                end = self.pos;
                break;
            }
            if self.peek(0) == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    end = self.pos;
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break 'outer;
                }
            }
            self.bump();
        }
        let text = self.src[start..end].to_string();
        self.push(TokKind::Str, &text, line, col);
    }

    /// `'` — lifetime or char literal.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump(); // the quote
        let b = self.peek(0);
        if (b.is_ascii_alphabetic() || b == b'_') && b != 0 {
            // Scan the identifier run; a trailing quote means a char
            // literal like 'a', otherwise it is a lifetime.
            let mut k = 0;
            while {
                let c = self.peek(k);
                c.is_ascii_alphanumeric() || c == b'_'
            } {
                k += 1;
            }
            if self.peek(k) == b'\'' {
                let start = self.pos;
                for _ in 0..=k {
                    self.bump();
                }
                let text = self.src[start..self.pos - 1].to_string();
                self.push(TokKind::Char, &text, line, col);
            } else {
                let start = self.pos;
                for _ in 0..k {
                    self.bump();
                }
                let text = self.src[start..self.pos].to_string();
                self.push(TokKind::Lifetime, &text, line, col);
            }
        } else {
            // Char literal with an escape, punctuation, or multibyte
            // content: scan to the closing quote.
            let start = self.pos;
            while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
                if self.peek(0) == b'\\' {
                    self.bump();
                }
                if self.pos < self.bytes.len() {
                    self.bump();
                }
            }
            let text = self.src[start..self.pos].to_string();
            if self.pos < self.bytes.len() {
                self.bump(); // closing quote
            }
            self.push(TokKind::Char, &text, line, col);
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        let mut is_float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump();
            self.bump();
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
        } else {
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
            // Fractional part: `1.5` or trailing-dot `1.` — but not the
            // range `1..2` or a method call `1.max(2)`.
            if self.peek(0) == b'.' {
                let after = self.peek(1);
                if after.is_ascii_digit() {
                    is_float = true;
                    self.bump();
                    while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                        self.bump();
                    }
                } else if after != b'.' && !after.is_ascii_alphabetic() && after != b'_' {
                    is_float = true;
                    self.bump();
                }
            }
            // Exponent.
            if matches!(self.peek(0), b'e' | b'E') {
                let (s1, s2) = (self.peek(1), self.peek(2));
                if s1.is_ascii_digit() || ((s1 == b'+' || s1 == b'-') && s2.is_ascii_digit()) {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(0), b'+' | b'-') {
                        self.bump();
                    }
                    while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                        self.bump();
                    }
                }
            }
            // Type suffix: `1.0f64`, `3usize`.
            if self.peek(0) == b'f' && self.peek(1).is_ascii_digit() {
                is_float = true;
            }
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        let text = self.src[start..self.pos].to_string();
        let kind = if is_float { TokKind::Float } else { TokKind::Int };
        self.push(kind, &text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while {
            let c = self.peek(0);
            c.is_ascii_alphanumeric() || c == b'_'
        } {
            self.bump();
        }
        let text = self.src[start..self.pos].to_string();
        // String/char prefixes and raw identifiers.
        match text.as_str() {
            "r" | "br" => {
                if self.peek(0) == b'"' || (self.peek(0) == b'#' && self.raw_ahead_is_string()) {
                    self.raw_string(line, col);
                    return;
                }
                if text == "r" && self.peek(0) == b'#' {
                    // Raw identifier `r#loop`.
                    self.bump();
                    let istart = self.pos;
                    while {
                        let c = self.peek(0);
                        c.is_ascii_alphanumeric() || c == b'_'
                    } {
                        self.bump();
                    }
                    let raw = self.src[istart..self.pos].to_string();
                    self.push(TokKind::Ident, &raw, line, col);
                    return;
                }
            }
            "b" => {
                if self.peek(0) == b'"' {
                    self.string_lit(line, col);
                    return;
                }
                if self.peek(0) == b'\'' {
                    self.quote(line, col);
                    return;
                }
            }
            _ => {}
        }
        self.push(TokKind::Ident, &text, line, col);
    }

    /// After an `r`/`br` ident, are we looking at `#…#"` (raw string)
    /// rather than a raw identifier?
    fn raw_ahead_is_string(&self) -> bool {
        let mut k = 0;
        while self.peek(k) == b'#' {
            k += 1;
        }
        self.peek(k) == b'"'
    }

    fn operator(&mut self, line: u32, col: u32) {
        for op in OPS {
            let rest = &self.bytes[self.pos..];
            if rest.len() >= op.len() && &rest[..op.len()] == op.as_bytes() {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokKind::Op, op, line, col);
                return;
            }
        }
        let b = self.bump();
        self.push(TokKind::Punct, &(b as char).to_string(), line, col);
    }
}
