//! A lightweight syntax layer over the flat token stream.
//!
//! `kea-lint` still avoids `syn` (the offline build environment rules
//! out registry deps), but the dataflow and concurrency rule packs need
//! more structure than adjacent-token matching: function boundaries and
//! parameter lists, `let`/`static` bindings with a coarse local type,
//! closure bodies (to tell closure-local state from captured state),
//! and method-call receivers. This module recovers exactly that much —
//! a brace-tree-shaped pass, not a parse — and nothing more:
//!
//! * **Functions** are found by scanning for `fn <ident>`, skipping
//!   generic parameter lists, and brace-matching the body. Nested
//!   functions appear both as their own [`FnInfo`] and inside the
//!   enclosing body; rules de-duplicate identical diagnostics instead
//!   of modelling scopes.
//! * **Type propagation** is local and nominal: a binding's type comes
//!   from its annotation (`let x: Vec<f64>`) or the shape of its
//!   initializer (`Vec::new()`, `vec![…]`, a float literal, a trailing
//!   `as usize` cast, `Mutex::new(…)`, …) and collapses into the coarse
//!   [`VarType`] buckets the rules key off. Anything unrecognized is
//!   [`VarType::Unknown`], and every rule treats `Unknown`
//!   conservatively in its own flagging direction.
//! * **Closures** are recognized at expression positions (`|args| body`
//!   and the empty-parameter `||` form); a closure's body range lets a
//!   rule ask whether a binding was declared inside or captured from
//!   the enclosing function.

use crate::lexer::{Tok, TokKind};
use std::ops::Range;

/// Coarse nominal type buckets for local bindings and parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarType {
    /// `f64`/`f32` (annotation, float-literal initializer, `as f64`).
    Float,
    /// Any integer type, or an initializer ending in an `as <int>` cast.
    Int,
    /// `bool`.
    Bool,
    /// `String`/`&str`.
    Str,
    /// `Vec`, `VecDeque`, arrays and slices — positional containers
    /// whose `insert`/`remove` take indices.
    VecLike,
    /// `HashMap`/`BTreeMap`/`HashSet`/`BTreeSet` — keyed containers
    /// whose `insert`/`remove` take keys.
    MapLike,
    /// `AtomicUsize`, `AtomicU64`, `AtomicBool`, … .
    Atomic,
    /// `Mutex`/`RwLock` (and `Arc`) — synchronization wrappers.
    SyncWrapper,
    /// `OnceLock`.
    OnceLock,
    /// A recognized user-defined nominal type (capitalized path root).
    Other,
    /// Could not be classified; rules must stay conservative.
    Unknown,
}

/// One parameter or `let`/`static` binding.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Bound name (simple-identifier patterns only).
    pub name: String,
    /// Coarse type bucket.
    pub ty: VarType,
    /// Token index of the name (bindings shadow earlier ones from here).
    pub at: usize,
}

/// A closure expression inside a function body.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Parameter names bound by the closure head.
    pub params: Vec<String>,
    /// Token index of the opening `|` (or fused `||`).
    pub start: usize,
    /// Token range of the body (inside braces for block bodies,
    /// the expression tokens otherwise).
    pub body: Range<usize>,
}

/// One `fn` item: signature plus the body-local facts rules consume.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// `(name, type)` per simple-identifier parameter (`self` and
    /// destructuring patterns are skipped).
    pub params: Vec<(String, VarType)>,
    /// Token range strictly inside the body braces.
    pub body: Range<usize>,
    /// `let`/`static`/`const` bindings anywhere in the body (including
    /// inside nested closures), in token order.
    pub bindings: Vec<Binding>,
    /// Closures anywhere in the body, in token order.
    pub closures: Vec<Closure>,
}

impl FnInfo {
    /// Type of `name` as seen at token `at`: the latest binding before
    /// `at`, else the parameter of that name, else `Unknown`.
    pub fn type_of(&self, name: &str, at: usize) -> VarType {
        if let Some(b) = self
            .bindings
            .iter()
            .rev()
            .find(|b| b.name == name && b.at < at)
        {
            return b.ty;
        }
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
            .unwrap_or(VarType::Unknown)
    }

    /// The innermost closure whose body contains token `idx`.
    pub fn enclosing_closure(&self, idx: usize) -> Option<&Closure> {
        self.closures
            .iter()
            .filter(|c| c.body.contains(&idx))
            .min_by_key(|c| c.body.end - c.body.start)
    }

    /// Was `name` declared (as a closure parameter or a `let`) inside
    /// the closure that encloses token `idx`? Captured state is state
    /// this returns `false` for.
    pub fn declared_in_closure(&self, closure: &Closure, name: &str) -> bool {
        if closure.params.iter().any(|p| p == name) {
            return true;
        }
        self.bindings
            .iter()
            .any(|b| b.name == name && closure.body.contains(&b.at))
    }
}

/// The syntax facts for one file.
#[derive(Debug, Default)]
pub struct Syntax {
    /// Every `fn` item found, in token order (nested fns included).
    pub fns: Vec<FnInfo>,
    /// Token ranges of `if`/`while`/`match` conditions and scrutinees —
    /// the region between the keyword and its body `{`.
    pub conditions: Vec<Range<usize>>,
}

impl Syntax {
    /// The innermost function whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&idx))
            .min_by_key(|f| f.body.end - f.body.start)
    }

    /// Is token `idx` inside an `if`/`while`/`match` condition?
    pub fn in_condition(&self, idx: usize) -> bool {
        self.conditions.iter().any(|r| r.contains(&idx))
    }
}

/// Build the syntax facts for one token stream.
pub fn analyze(toks: &[Tok]) -> Syntax {
    let mut syn = Syntax::default();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
        {
            if let Some(f) = parse_fn(toks, i) {
                // Continue *inside* the body so nested fns are found too.
                let resume = f.body.start;
                syn.fns.push(f);
                i = resume;
                continue;
            }
        }
        i += 1;
    }
    syn.conditions = condition_ranges(toks);
    syn
}

/// Token ranges between `if`/`while`/`match` and the `{` opening their
/// body, at zero relative bracket depth. `if let`/`while let` included.
fn condition_ranges(toks: &[Tok]) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("if") || t.is_ident("while") || t.is_ident("match")) {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            let tj = &toks[j];
            if tj.is_sym("(") || tj.is_sym("[") {
                depth += 1;
            } else if tj.is_sym(")") || tj.is_sym("]") {
                depth -= 1;
            } else if tj.is_sym("{") && depth == 0 {
                break;
            } else if tj.is_sym(";") && depth == 0 {
                // `if` used as an expression head we failed to track —
                // bail rather than spanning past the statement.
                break;
            }
            j += 1;
        }
        if j > i + 1 && j < toks.len() {
            out.push(i + 1..j);
        }
    }
    out
}

/// Parse the `fn` item starting at `at` (`toks[at]` is the `fn`
/// keyword). Returns `None` for bodyless signatures (trait methods).
fn parse_fn(toks: &[Tok], at: usize) -> Option<FnInfo> {
    let name = toks[at + 1].text.clone();
    let mut i = at + 2;
    // Generic parameter list: `<` … `>` with `>>` closing two levels.
    if i < toks.len() && toks[i].is_sym("<") {
        let mut depth = 0i64;
        while i < toks.len() {
            match toks[i].text.as_str() {
                "<" | "<<" if toks[i].kind != TokKind::Ident => {
                    depth += if toks[i].text == "<<" { 2 } else { 1 }
                }
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    if i >= toks.len() || !toks[i].is_sym("(") {
        return None;
    }
    let params_open = i;
    let params_close = matching_close(toks, params_open, "(", ")")?;
    let params = parse_params(&toks[params_open + 1..params_close]);
    // Body `{` (skipping return type and where clause); a `;` first
    // means a bodyless signature.
    let mut j = params_close + 1;
    while j < toks.len() && !toks[j].is_sym("{") && !toks[j].is_sym(";") {
        j += 1;
    }
    if j >= toks.len() || toks[j].is_sym(";") {
        return None;
    }
    let body_open = j;
    let body_close = matching_close(toks, body_open, "{", "}")?;
    let body = body_open + 1..body_close;
    let bindings = parse_bindings(toks, body.clone());
    let closures = parse_closures(toks, body.clone());
    Some(FnInfo {
        name,
        params,
        body,
        bindings,
        closures,
    })
}

/// Index of the closer matching the opener at `open`.
fn matching_close(toks: &[Tok], open: usize, op: &str, cl: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_sym(op) {
            depth += 1;
        } else if t.is_sym(cl) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Split a parameter-list token slice on top-level commas and extract
/// `(name, type)` for simple `name: Type` parameters.
fn parse_params(toks: &[Tok]) -> Vec<(String, VarType)> {
    let mut out = Vec::new();
    let mut depth = 0i64; // ( [ nesting
    let mut angle = 0i64; // < > nesting (commas inside generics)
    let mut start = 0usize;
    let mut chunks: Vec<&[Tok]> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            ">>" => angle = (angle - 2).max(0),
            "->" => {}
            "," if depth == 0 && angle == 0 => {
                chunks.push(&toks[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        chunks.push(&toks[start..]);
    }
    for chunk in chunks {
        // Skip `mut`/`ref` prefixes; reject `self` and pattern params.
        let mut k = 0;
        while k < chunk.len() && (chunk[k].is_ident("mut") || chunk[k].is_ident("ref")) {
            k += 1;
        }
        if k + 1 < chunk.len()
            && chunk[k].kind == TokKind::Ident
            && !chunk[k].is_ident("self")
            && chunk[k + 1].is_sym(":")
        {
            let ty = classify_type(&chunk[k + 2..]);
            out.push((chunk[k].text.clone(), ty));
        }
    }
    out
}

/// Classify a type's token run by its first meaningful token.
fn classify_type(toks: &[Tok]) -> VarType {
    let mut k = 0;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_sym("&") || t.is_ident("mut") || t.kind == TokKind::Lifetime || t.is_ident("dyn") {
            k += 1;
            continue;
        }
        break;
    }
    let Some(t) = toks.get(k) else {
        return VarType::Unknown;
    };
    if t.is_sym("[") {
        return VarType::VecLike;
    }
    if t.kind != TokKind::Ident {
        return VarType::Unknown;
    }
    classify_root(&t.text)
}

/// Classify a nominal path root (`Vec`, `AtomicUsize`, `f64`, …).
fn classify_root(root: &str) -> VarType {
    match root {
        "f64" | "f32" => VarType::Float,
        "u8" | "u16" | "u32" | "u64" | "u128" | "usize" | "i8" | "i16" | "i32" | "i64"
        | "i128" | "isize" => VarType::Int,
        "bool" => VarType::Bool,
        "String" | "str" => VarType::Str,
        "Vec" | "VecDeque" => VarType::VecLike,
        "HashMap" | "BTreeMap" | "HashSet" | "BTreeSet" => VarType::MapLike,
        "Mutex" | "RwLock" | "Arc" => VarType::SyncWrapper,
        "OnceLock" => VarType::OnceLock,
        _ if root.starts_with("Atomic") => VarType::Atomic,
        _ if root.starts_with(char::is_uppercase) => VarType::Other,
        _ => VarType::Unknown,
    }
}

/// Classify an initializer's token run.
fn classify_init(toks: &[Tok]) -> VarType {
    let Some(t0) = toks.first() else {
        return VarType::Unknown;
    };
    // `vec![…]`
    if t0.is_ident("vec") && toks.get(1).map(|t| t.is_sym("!")).unwrap_or(false) {
        return VarType::VecLike;
    }
    // `Root::assoc(..)` / `Root { .. }` — nominal constructors.
    if t0.kind == TokKind::Ident {
        let rooted = classify_root(&t0.text);
        let next = toks.get(1);
        let is_path = next.map(|t| t.is_sym("::")).unwrap_or(false);
        let is_struct_lit = next.map(|t| t.is_sym("{")).unwrap_or(false);
        if (is_path || is_struct_lit) && rooted != VarType::Unknown {
            // `std::…` paths: classify the segment after `std::`(`…::`).
            if t0.is_ident("std") || rooted == VarType::Other {
                if let Some(seg) = toks
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .find(|t| classify_root(&t.text) != VarType::Other
                        && classify_root(&t.text) != VarType::Unknown)
                {
                    return classify_root(&seg.text);
                }
            }
            return rooted;
        }
    }
    // A trailing `as <ty>` cast decides the produced type.
    if let Some(pos) = toks.iter().rposition(|t| t.is_ident("as")) {
        if let Some(t) = toks.get(pos + 1) {
            let c = classify_root(&t.text);
            if c == VarType::Float || c == VarType::Int {
                return c;
            }
        }
    }
    // Any float literal in an arithmetic initializer makes it a float.
    if toks.iter().any(|t| t.kind == TokKind::Float) {
        return VarType::Float;
    }
    match t0.kind {
        TokKind::Int => VarType::Int,
        TokKind::Str => VarType::Str,
        _ if t0.is_ident("true") || t0.is_ident("false") => VarType::Bool,
        _ => VarType::Unknown,
    }
}

/// Scan a body range for `let`/`static`/`const` simple bindings.
fn parse_bindings(toks: &[Tok], body: Range<usize>) -> Vec<Binding> {
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        if !(toks[i].is_ident("let") || toks[i].is_ident("static") || toks[i].is_ident("const")) {
            i += 1;
            continue;
        }
        let mut k = i + 1;
        while k < body.end && (toks[k].is_ident("mut") || toks[k].is_ident("ref")) {
            k += 1;
        }
        if k >= body.end || toks[k].kind != TokKind::Ident {
            i += 1;
            continue; // destructuring pattern — skip
        }
        let name_at = k;
        let name = toks[k].text.clone();
        k += 1;
        let mut ty = VarType::Unknown;
        if k < body.end && toks[k].is_sym(":") {
            let ty_start = k + 1;
            let mut depth = 0i64;
            k = ty_start;
            while k < body.end {
                let t = &toks[k];
                if t.is_sym("(") || t.is_sym("[") {
                    depth += 1;
                } else if t.is_sym(")") || t.is_sym("]") {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if (t.is_sym("=") || t.is_sym(";")) && depth == 0 {
                    break;
                }
                k += 1;
            }
            ty = classify_type(&toks[ty_start..k]);
        }
        if ty == VarType::Unknown && k < body.end && toks[k].is_sym("=") {
            let init_start = k + 1;
            let mut depth = 0i64;
            k = init_start;
            while k < body.end {
                let t = &toks[k];
                if t.is_sym("(") || t.is_sym("[") || t.is_sym("{") {
                    depth += 1;
                } else if t.is_sym(")") || t.is_sym("]") || t.is_sym("}") {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if t.is_sym(";") && depth == 0 {
                    break;
                }
                k += 1;
            }
            ty = classify_init(&toks[init_start..k]);
        }
        out.push(Binding {
            name,
            ty,
            at: name_at,
        });
        i = name_at + 1;
    }
    out
}

/// Tokens that may directly precede a closure head `|` at expression
/// position. Anything value-like before `|` means bitwise-or instead.
fn closure_position(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let p = &toks[i - 1];
    if p.kind == TokKind::Ident {
        return matches!(p.text.as_str(), "move" | "return" | "else" | "in" | "if" | "while" | "match");
    }
    matches!(
        p.text.as_str(),
        "(" | "," | "{" | ";" | "=" | "=>" | "&&" | "||" | "!" | ":" | "+" | "-" | "*" | ".."
    )
}

/// Scan a body range for closures.
fn parse_closures(toks: &[Tok], body: Range<usize>) -> Vec<Closure> {
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        let (params, body_start) = if t.is_sym("||") && closure_position(toks, i) {
            (Vec::new(), i + 1)
        } else if t.is_sym("|") && closure_position(toks, i) {
            // Parameters until the closing `|` at zero paren depth.
            let mut params = Vec::new();
            let mut depth = 0i64;
            let mut k = i + 1;
            let mut expecting_name = true;
            while k < body.end {
                let tk = &toks[k];
                if tk.is_sym("(") || tk.is_sym("[") {
                    depth += 1;
                } else if tk.is_sym(")") || tk.is_sym("]") {
                    depth -= 1;
                } else if tk.is_sym("|") && depth == 0 {
                    break;
                } else if tk.is_sym(",") && depth == 0 {
                    expecting_name = true;
                    k += 1;
                    continue;
                } else if tk.is_sym(":") && depth == 0 {
                    expecting_name = false;
                } else if expecting_name && tk.kind == TokKind::Ident && !tk.is_ident("mut") {
                    params.push(tk.text.clone());
                    expecting_name = false;
                }
                k += 1;
            }
            if k >= body.end {
                i += 1;
                continue;
            }
            (params, k + 1)
        } else {
            i += 1;
            continue;
        };
        // Body: a brace block, or the expression up to `,`/`)`/`;`.
        let range = if body_start < body.end && toks[body_start].is_sym("{") {
            match matching_close(toks, body_start, "{", "}") {
                Some(close) => body_start + 1..close,
                None => body_start + 1..body.end,
            }
        } else {
            let mut depth = 0i64;
            let mut k = body_start;
            while k < body.end {
                let tk = &toks[k];
                if tk.is_sym("(") || tk.is_sym("[") || tk.is_sym("{") {
                    depth += 1;
                } else if tk.is_sym(")") || tk.is_sym("]") || tk.is_sym("}") {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if (tk.is_sym(",") || tk.is_sym(";")) && depth == 0 {
                    break;
                }
                k += 1;
            }
            body_start..k
        };
        out.push(Closure {
            params,
            start: i,
            body: range.clone(),
        });
        i = if range.start > i { range.start } else { i + 1 };
    }
    out
}

/// The dotted receiver path ending at the `.` token at `dot` —
/// `self.delta.take()` yields `"self.delta"` for the `.` before `take`.
/// Complex receivers (`(expr).m()`, `xs[i].m()`) yield `None`.
pub fn receiver_path(toks: &[Tok], dot: usize) -> Option<String> {
    let mut segs: Vec<&str> = Vec::new();
    let mut i = dot;
    loop {
        if i == 0 || !toks[i].is_sym(".") {
            break;
        }
        let prev = &toks[i - 1];
        if prev.kind != TokKind::Ident {
            return None;
        }
        segs.push(&prev.text);
        if i >= 2 && toks[i - 2].is_sym(".") {
            i -= 2;
            continue;
        }
        break;
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    Some(segs.join("."))
}

/// The root identifier of the receiver chain ending at the `.` at `dot`
/// (`self.delta.take()` → `self`; `rank.floor()` → `rank`), plus its
/// token index.
pub fn receiver_root(toks: &[Tok], dot: usize) -> Option<(usize, String)> {
    let mut i = dot;
    loop {
        if i == 0 || !toks[i].is_sym(".") {
            return None;
        }
        let prev = &toks[i - 1];
        if prev.kind != TokKind::Ident {
            return None;
        }
        if i >= 2 && toks[i - 2].is_sym(".") {
            i -= 2;
            continue;
        }
        return Some((i - 1, prev.text.clone()));
    }
}
