//! The **concurrency** rule pack.
//!
//! PRs 4–5 gave the workspace a real concurrency surface — scoped
//! work-stealing fan-outs, atomic claim cursors, `OnceLock`-cached
//! indexes — and the `kead` daemon will multiply it. These rules encode
//! the patterns that surface relies on:
//!
//! * atomic claim tickets (`fetch_add`) are fine Relaxed — the returned
//!   value itself is the claim; a **Relaxed `load` gating control flow**
//!   is not, because it publishes no happens-before edge;
//! * scoped workers return their results and the parent merges after
//!   `join` — a closure **mutating captured state** races instead;
//! * `OnceLock` is either read through `get_or_init` or invalidated
//!   through `&mut`/`take()` — a **`get()`-then-`set()`** sequence is a
//!   check-then-act race.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::rules::in_spans;
use crate::syntax::{receiver_path, receiver_root, Syntax, VarType};

/// Rule id: `.load(Ordering::Relaxed)` inside an `if`/`while`/`match`
/// gate.
pub const RELAXED_ATOMIC_GATE: &str = "relaxed-atomic-gate";
/// Rule id: a closure passed to `.spawn(…)` mutating captured state
/// without a sync wrapper.
pub const SCOPED_MUT_CAPTURE: &str = "scoped-mut-capture";
/// Rule id: `get()` then `set(…)` on one `OnceLock` — a
/// check-then-act race `get_or_init` exists to close.
pub const ONCELOCK_GET_THEN_SET: &str = "oncelock-get-then-set";

/// Mutating container/string methods: a call through a captured
/// receiver inside a spawned closure is a cross-worker write.
const MUTATING_METHODS: &[&str] = &[
    "push",
    "push_str",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
    "clear",
    "remove",
    "pop",
    "truncate",
    "resize",
    "retain",
    "drain",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "swap",
];

/// Run the concurrency pack over one file.
pub fn run(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    syn: &Syntax,
    diags: &mut Vec<Diagnostic>,
) {
    relaxed_atomic_gate(file, toks, spans, syn, diags);
    scoped_mut_capture(file, toks, spans, syn, diags);
    oncelock_get_then_set(file, toks, spans, syn, diags);
}

fn relaxed_atomic_gate(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    syn: &Syntax,
    diags: &mut Vec<Diagnostic>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if !t.is_ident("load")
            || i == 0
            || !toks[i - 1].is_sym(".")
            || i + 1 >= toks.len()
            || !toks[i + 1].is_sym("(")
        {
            continue;
        }
        let close = crate::rules::skip_parens(toks, i + 1);
        let relaxed = toks[i + 1..close.min(toks.len())]
            .iter()
            .any(|a| a.is_ident("Relaxed"));
        if !relaxed || !syn.in_condition(i) {
            continue;
        }
        if in_spans(spans, t.line) {
            continue;
        }
        diags.push(Diagnostic::new(
            RELAXED_ATOMIC_GATE,
            file,
            t.line,
            t.col,
            format!(
                "`.load(Ordering::Relaxed)` gates control flow here but publishes no \
                 happens-before edge with the writes it observes — data behind the flag \
                 may not be visible yet; use `Acquire` (pair the stores with `Release`), \
                 or add `// kea-lint: allow({RELAXED_ATOMIC_GATE}) — <reason>` if the \
                 value is a pure counter",
            ),
        ));
    }
}

fn scoped_mut_capture(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    syn: &Syntax,
    diags: &mut Vec<Diagnostic>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        // `.spawn(` — scoped spawns share references with the parent;
        // plain `thread::spawn` closures are `'static` (moves), which
        // the borrow checker already polices.
        if !t.is_ident("spawn")
            || i == 0
            || !toks[i - 1].is_sym(".")
            || i + 1 >= toks.len()
            || !toks[i + 1].is_sym("(")
        {
            continue;
        }
        let Some(f) = syn.enclosing_fn(i) else {
            continue;
        };
        // The closure argument starts right after `(`, optionally
        // behind `move`.
        let Some(closure) = f
            .closures
            .iter()
            .find(|c| c.start == i + 2 || c.start == i + 3)
        else {
            continue;
        };
        for k in closure.body.clone() {
            let tk = &toks[k];
            let mutated: Option<(usize, String)> = if tk.kind == TokKind::Ident {
                let next = toks.get(k + 1);
                let assigns = next
                    .map(|n| {
                        (n.is_sym("=") && n.kind == TokKind::Punct)
                            || matches!(n.text.as_str(), "+=" | "-=" | "*=" | "/=" | "%=")
                    })
                    .unwrap_or(false);
                if assigns && k > 0 && !toks[k - 1].is_ident("let") && !toks[k - 1].is_ident("mut")
                {
                    if toks[k - 1].is_sym(".") {
                        receiver_root(toks, k - 1)
                    } else {
                        Some((k, tk.text.clone()))
                    }
                } else if MUTATING_METHODS.contains(&tk.text.as_str())
                    && k > 0
                    && toks[k - 1].is_sym(".")
                    && next.map(|n| n.is_sym("(")).unwrap_or(false)
                {
                    receiver_root(toks, k - 1)
                } else {
                    None
                }
            } else {
                None
            };
            let Some((root_at, root)) = mutated else {
                continue;
            };
            if root == "self" {
                continue;
            }
            if f.declared_in_closure(closure, &root) {
                continue;
            }
            // Sync-wrapped or atomic state is the sanctioned way to
            // share; unknown bindings stay flagged — the author either
            // wraps them or writes the reasoned allow.
            let ty = f.type_of(&root, root_at);
            if matches!(
                ty,
                VarType::Atomic | VarType::SyncWrapper | VarType::OnceLock
            ) {
                continue;
            }
            // Not a binding or parameter of this function at all (free
            // ident, e.g. a path segment) — skip.
            let known = f.params.iter().any(|(n, _)| n == &root)
                || f.bindings.iter().any(|b| b.name == root);
            if !known {
                continue;
            }
            if in_spans(spans, toks[root_at].line) {
                continue;
            }
            diags.push(Diagnostic::new(
                SCOPED_MUT_CAPTURE,
                file,
                toks[root_at].line,
                toks[root_at].col,
                format!(
                    "this closure passed to `spawn` mutates captured `{root}` — concurrent \
                     workers race on it; have each worker return its results and merge after \
                     `join`, wrap it in a `Mutex`/atomic, or add \
                     `// kea-lint: allow({SCOPED_MUT_CAPTURE}) — <reason>`"
                ),
            ));
        }
    }
}

fn oncelock_get_then_set(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    syn: &Syntax,
    diags: &mut Vec<Diagnostic>,
) {
    for f in &syn.fns {
        // Collect `recv.get(` and `recv.set(` sites in this body.
        let mut gets: Vec<(usize, String)> = Vec::new();
        let mut sets: Vec<(usize, String)> = Vec::new();
        for i in f.body.clone() {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || i == 0
                || !toks[i - 1].is_sym(".")
                || i + 1 >= toks.len()
                || !toks[i + 1].is_sym("(")
            {
                continue;
            }
            let Some(path) = receiver_path(toks, i - 1) else {
                continue;
            };
            match t.text.as_str() {
                "get" => gets.push((i, path)),
                "set" => sets.push((i, path)),
                _ => {}
            }
        }
        for (set_at, path) in &sets {
            let Some((_, _)) = gets.iter().find(|(g, p)| g < set_at && p == path) else {
                continue;
            };
            if !is_oncelock(toks, f, path) {
                continue;
            }
            let t = &toks[*set_at];
            if in_spans(spans, t.line) {
                continue;
            }
            diags.push(Diagnostic::new(
                ONCELOCK_GET_THEN_SET,
                file,
                t.line,
                t.col,
                format!(
                    "`{path}.get()` … `{path}.set(…)` is a check-then-act race: another \
                     thread can initialize between the two; use `get_or_init` (losing \
                     initializers are discarded) or route the mutation through the owner's \
                     `&mut` invalidation path (`take()`)"
                ),
            ));
        }
    }
}

/// Is the receiver a `OnceLock`? Either its root binding classifies as
/// one, or its last segment is declared as a `OnceLock` field/static
/// anywhere in the file (`delta: OnceLock<…>`).
fn is_oncelock(toks: &[Tok], f: &crate::syntax::FnInfo, path: &str) -> bool {
    let root = path.split('.').next().unwrap_or(path);
    let root_ty = f
        .bindings
        .iter()
        .rev()
        .find(|b| b.name == root)
        .map(|b| b.ty)
        .or_else(|| {
            f.params
                .iter()
                .find(|(n, _)| n == root)
                .map(|(_, t)| *t)
        });
    if root_ty == Some(VarType::OnceLock) {
        return true;
    }
    let last = path.rsplit('.').next().unwrap_or(path);
    toks.windows(3).any(|w| {
        w[0].is_ident(last) && w[1].is_sym(":") && w[2].is_ident("OnceLock")
    })
}
