//! The rule set.
//!
//! Every rule walks the token stream produced by [`crate::lexer`] and is
//! scoped to *library* lines — test modules (`#[cfg(test)]`, `#[test]`)
//! are exempt, and whole test/bench files never reach the rules (the
//! walker filters them by path).

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::syntax::{self, Syntax, VarType};
use std::collections::HashSet;

/// Rule id: `unwrap`/`expect`/`panic!`-family in library code.
pub const PANIC_IN_LIBRARY: &str = "panic-in-library";
/// Rule id: slice/array/map indexing in library code. Split from
/// [`PANIC_IN_LIBRARY`] so dense numeric kernels can `allow-file` the
/// indexing arm without also silencing stray unwraps.
pub const INDEX_IN_LIBRARY: &str = "index-in-library";
/// Rule id: panicking position-taking methods in library code
/// (`remove`, `swap_remove`, `split_at`, `drain(range)`, `copy_within`,
/// …) — the method-call cousins of [`INDEX_IN_LIBRARY`], which only sees
/// `[` bracket syntax.
pub const PANIC_METHOD_IN_LIBRARY: &str = "panic-method-in-library";
/// Rule id: orderings that panic or misbehave on NaN.
pub const NAN_UNSAFE_ORDERING: &str = "nan-unsafe-ordering";
/// Rule id: float→int `as` casts that silently truncate/saturate.
pub const TRUNCATING_AS_CAST: &str = "truncating-as-cast";
/// Rule id: `thread::spawn` whose `JoinHandle` is dropped.
pub const UNGUARDED_SPAWN: &str = "unguarded-spawn";

/// All rule ids, including the directive-hygiene pseudo-rule.
pub const ALL_RULES: &[&str] = &[
    PANIC_IN_LIBRARY,
    INDEX_IN_LIBRARY,
    PANIC_METHOD_IN_LIBRARY,
    NAN_UNSAFE_ORDERING,
    TRUNCATING_AS_CAST,
    UNGUARDED_SPAWN,
    crate::flow::UNVALIDATED_DENOMINATOR,
    crate::flow::CHECKED_UNWRAP,
    crate::flow::NAN_ACCUMULATION,
    crate::conc::RELAXED_ATOMIC_GATE,
    crate::conc::SCOPED_MUT_CAPTURE,
    crate::conc::ONCELOCK_GET_THEN_SET,
    crate::suppress::BAD_SUPPRESSION,
];

/// One-line description per rule id — the catalog SARIF exports and
/// `--help` prints.
pub fn describe(rule: &str) -> &'static str {
    match rule {
        PANIC_IN_LIBRARY => "unwrap/expect/panic!-family call in library code",
        INDEX_IN_LIBRARY => "slice/array/map `[...]` indexing in library code",
        PANIC_METHOD_IN_LIBRARY => {
            "panicking position-taking method (remove, split_at, Vec::insert, ...)"
        }
        NAN_UNSAFE_ORDERING => "ordering or comparison that panics or misbehaves on NaN",
        TRUNCATING_AS_CAST => "float->int or narrowing `as` cast that silently truncates/saturates",
        UNGUARDED_SPAWN => "thread::spawn with a discarded JoinHandle",
        crate::flow::UNVALIDATED_DENOMINATOR => {
            "division by a caller-supplied parameter no path validated"
        }
        crate::flow::CHECKED_UNWRAP => {
            "is_some()/is_ok() check followed by unwrap() inside the guarded block"
        }
        crate::flow::NAN_ACCUMULATION => {
            "loop-carried float accumulation of a quotient with an unchecked denominator"
        }
        crate::conc::RELAXED_ATOMIC_GATE => {
            "Relaxed atomic load gating control flow (no happens-before edge)"
        }
        crate::conc::SCOPED_MUT_CAPTURE => {
            "closure passed to spawn mutating captured state without a sync wrapper"
        }
        crate::conc::ONCELOCK_GET_THEN_SET => {
            "OnceLock get() then set() check-then-act race"
        }
        crate::suppress::BAD_SUPPRESSION => "malformed, unreasoned, or stale kea-lint directive",
        _ => "unknown rule",
    }
}

/// Keywords that may directly precede `[` without it being an index
/// expression (`let [a, b] = …`, `for [x, y] in …`, `&mut [T]`, …).
const NONINDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "for", "while", "loop", "move",
    "box", "dyn", "impl", "fn", "pub", "use", "where", "const", "static", "struct", "enum",
    "trait", "type", "unsafe", "async", "await", "break", "continue", "crate", "super", "as",
    "yield",
];

/// Integer target types for the truncating-cast rule.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Narrow integer types: casting `.len()` into these can truncate.
const NARROW_INT_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Methods that only exist on floats (so `x.round() as usize` is a
/// float→int cast even without type information).
const FLOAT_METHODS: &[&str] = &[
    "round", "floor", "ceil", "trunc", "sqrt", "powf", "powi", "exp", "exp2", "ln", "log", "log2",
    "log10", "fract", "cbrt", "hypot", "recip", "to_degrees", "to_radians",
];

/// Compute 1-based line spans covered by `#[cfg(test)]` / `#[test]`
/// items, so rules can exempt inline test modules.
pub fn test_line_spans(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_sym("#") && i + 1 < toks.len() && toks[i + 1].is_sym("[") {
            // Collect the attribute's tokens up to the matching `]`.
            let mut depth = 0i32;
            let mut j = i + 1;
            let attr_start = i + 2;
            while j < toks.len() {
                if toks[j].is_sym("[") {
                    depth += 1;
                } else if toks[j].is_sym("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            if j >= toks.len() {
                break;
            }
            let attr = &toks[attr_start..j];
            if is_test_attr(attr) {
                let start_line = toks[i].line;
                let end_line = item_end_line(toks, j + 1);
                spans.push((start_line, end_line));
                i = j + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// `#[test]` or an attribute containing the `cfg ( test` sequence
/// (matches `#[cfg(test)]` but not `#[cfg(not(test))]`).
fn is_test_attr(attr: &[Tok]) -> bool {
    if attr.len() == 1 && attr[0].is_ident("test") {
        return true;
    }
    attr.windows(3).any(|w| {
        w[0].is_ident("cfg") && w[1].is_sym("(") && w[2].is_ident("test")
    })
}

/// Line of the `;` or matching `}` that closes the item starting after
/// token `from` (skipping further attributes).
fn item_end_line(toks: &[Tok], mut from: usize) -> u32 {
    // Skip stacked attributes.
    while from + 1 < toks.len() && toks[from].is_sym("#") && toks[from + 1].is_sym("[") {
        let mut depth = 0i32;
        while from < toks.len() {
            if toks[from].is_sym("[") {
                depth += 1;
            } else if toks[from].is_sym("]") {
                depth -= 1;
                if depth == 0 {
                    from += 1;
                    break;
                }
            }
            from += 1;
        }
    }
    // Find the item's body `{` (or a terminating `;` for `mod foo;`).
    let mut i = from;
    while i < toks.len() && !toks[i].is_sym("{") && !toks[i].is_sym(";") {
        i += 1;
    }
    if i >= toks.len() {
        return toks.last().map(|t| t.line).unwrap_or(1);
    }
    if toks[i].is_sym(";") {
        return toks[i].line;
    }
    let mut depth = 0i32;
    while i < toks.len() {
        if toks[i].is_sym("{") {
            depth += 1;
        } else if toks[i].is_sym("}") {
            depth -= 1;
            if depth == 0 {
                return toks[i].line;
            }
        }
        i += 1;
    }
    toks.last().map(|t| t.line).unwrap_or(1)
}

/// Is `line` inside any of the test-exempt `spans`?
pub(crate) fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Index of the `}` matching the `{` at `open`, if any.
pub(crate) fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    if open >= toks.len() || !toks[open].is_sym("{") {
        return None;
    }
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_sym("{") {
            depth += 1;
        } else if t.is_sym("}") {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the token after the `)` matching the `(` at `open`.
pub(crate) fn skip_parens(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_sym("(") {
            depth += 1;
        } else if toks[i].is_sym(")") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Index of the `(` matching the `)` at `close`, scanning backwards.
fn open_paren_of(toks: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = close as isize;
    while i >= 0 {
        let t = &toks[i as usize];
        if t.is_sym(")") {
            depth += 1;
        } else if t.is_sym("(") {
            depth -= 1;
            if depth == 0 {
                return Some(i as usize);
            }
        }
        i -= 1;
    }
    None
}

/// Run every rule over one file's tokens. `file` is the path used in
/// diagnostics; `spans` are the test-exempt line ranges.
pub fn run_all(file: &str, toks: &[Tok], spans: &[(u32, u32)]) -> Vec<Diagnostic> {
    let syn = syntax::analyze(toks);
    let mut diags = Vec::new();
    // Token indices of `unwrap`/`expect` already reported through
    // `nan-unsafe-ordering` / `checked-unwrap` (avoid double-reporting
    // one call chain).
    let mut consumed = HashSet::new();
    nan_unsafe_ordering(file, toks, spans, &mut diags, &mut consumed);
    crate::flow::run(file, toks, spans, &syn, &mut diags, &mut consumed);
    crate::conc::run(file, toks, spans, &syn, &mut diags);
    panic_in_library(file, toks, spans, &mut diags, &consumed);
    index_in_library(file, toks, spans, &mut diags);
    panic_method_in_library(file, toks, spans, &syn, &mut diags);
    truncating_as_cast(file, toks, spans, &syn, &mut diags);
    unguarded_spawn(file, toks, spans, &mut diags);
    diags
}

fn panic_in_library(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    diags: &mut Vec<Diagnostic>,
    consumed: &HashSet<usize>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if in_spans(spans, t.line) {
            continue;
        }
        // `.unwrap()` / `.expect(...)`
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_sym(".")
            && i + 1 < toks.len()
            && toks[i + 1].is_sym("(")
            && !consumed.contains(&i)
        {
            diags.push(Diagnostic::new(
                PANIC_IN_LIBRARY,
                file,
                t.line,
                t.col,
                format!(
                    "`.{}()` can panic in library code; return a typed error, \
                     use `unwrap_or`/`ok_or`, or add `// kea-lint: allow({}) — <reason>`",
                    t.text, PANIC_IN_LIBRARY
                ),
            ));
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
            && i + 1 < toks.len()
            && toks[i + 1].is_sym("!")
        {
            diags.push(Diagnostic::new(
                PANIC_IN_LIBRARY,
                file,
                t.line,
                t.col,
                format!(
                    "`{}!` aborts the tuning loop; return a typed error instead",
                    t.text
                ),
            ));
        }
    }
}

fn index_in_library(file: &str, toks: &[Tok], spans: &[(u32, u32)], diags: &mut Vec<Diagnostic>) {
    for i in 1..toks.len() {
        if !toks[i].is_sym("[") {
            continue;
        }
        if in_spans(spans, toks[i].line) {
            continue;
        }
        let prev = &toks[i - 1];
        let is_index_receiver = match prev.kind {
            TokKind::Ident => !NONINDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokKind::Punct | TokKind::Op => prev.text == ")" || prev.text == "]",
            _ => false,
        };
        if is_index_receiver {
            diags.push(Diagnostic::new(
                INDEX_IN_LIBRARY,
                file,
                toks[i].line,
                toks[i].col,
                format!(
                    "indexing (`…[…]`) panics when out of bounds; use `.get(…)`, \
                     an iterator, or add `// kea-lint: allow({INDEX_IN_LIBRARY}) — <reason>`"
                ),
            ));
        }
    }
}

/// Methods that panic on out-of-range positions for every receiver type
/// they exist on (slice/`Vec`/`VecDeque` position APIs) — no keyed
/// non-panicking homonym to worry about.
const ALWAYS_PANIC_METHODS: &[&str] = &[
    "swap_remove",
    "split_at",
    "split_at_mut",
    "copy_within",
    "copy_from_slice",
    "clone_from_slice",
];

/// Methods that panic on out-of-range *positions* when the receiver is a
/// sequence, but also exist as non-panicking *key* operations on
/// `HashMap`/`BTreeMap`/sets. The keyed form passes the key by reference
/// (`map.remove(&k)`), so a leading `&` in the argument list marks the
/// call as keyed and exempt.
const POSITION_PANIC_METHODS: &[&str] = &["remove", "split_off", "swap"];

fn panic_method_in_library(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    syn: &Syntax,
    diags: &mut Vec<Diagnostic>,
) {
    for i in 1..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || !toks[i - 1].is_sym(".")
            || i + 1 >= toks.len()
            || !toks[i + 1].is_sym("(")
        {
            continue;
        }
        if in_spans(spans, t.line) {
            continue;
        }
        let name = t.text.as_str();
        let first_arg = toks.get(i + 2);
        let flagged = if ALWAYS_PANIC_METHODS.contains(&name) {
            true
        } else if POSITION_PANIC_METHODS.contains(&name) {
            // `.remove(&key)` / `.swap(&mut a, &mut b)` are keyed-map or
            // `mem::swap`-style calls — non-panicking. A position call
            // passes the index by value.
            !first_arg.map(|a| a.is_sym("&")).unwrap_or(true)
        } else if name == "drain" {
            // `.drain()` (maps) and `.drain(..)` (full range) cannot go
            // out of bounds; `.drain(i..j)` can.
            match first_arg {
                Some(a) if a.is_sym(")") => false,
                Some(a) if a.is_sym("..") => {
                    !toks.get(i + 3).map(|b| b.is_sym(")")).unwrap_or(false)
                }
                Some(_) => true,
                None => false,
            }
        } else if name == "insert" {
            // `.insert(i, v)` panics on `Vec`/`VecDeque` when
            // `i > len`; the keyed map form does not. The receiver's
            // propagated local type disambiguates; an unknown receiver
            // stays exempt (the map form dominates in this codebase).
            !first_arg.map(|a| a.is_sym("&")).unwrap_or(true)
                && receiver_type(toks, syn, i - 1) == VarType::VecLike
        } else {
            false
        };
        if flagged {
            diags.push(Diagnostic::new(
                PANIC_METHOD_IN_LIBRARY,
                file,
                t.line,
                t.col,
                format!(
                    "`.{name}(…)` panics when the position is out of bounds; check against \
                     `.len()` first, restructure, or add \
                     `// kea-lint: allow({PANIC_METHOD_IN_LIBRARY}) — <reason>`"
                ),
            ));
        }
    }
}

fn nan_unsafe_ordering(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    diags: &mut Vec<Diagnostic>,
    consumed: &mut HashSet<usize>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if in_spans(spans, t.line) {
            continue;
        }
        // `partial_cmp(…).unwrap()` / `.expect(…)`
        if t.is_ident("partial_cmp")
            && i > 0
            && toks[i - 1].is_sym(".")
            && i + 1 < toks.len()
            && toks[i + 1].is_sym("(")
        {
            let after = skip_parens(toks, i + 1);
            if after + 1 < toks.len()
                && toks[after].is_sym(".")
                && (toks[after + 1].is_ident("unwrap") || toks[after + 1].is_ident("expect"))
            {
                consumed.insert(after + 1);
                diags.push(Diagnostic::new(
                    NAN_UNSAFE_ORDERING,
                    file,
                    t.line,
                    t.col,
                    "`partial_cmp(..).unwrap()` panics on NaN; use `f64::total_cmp` \
                     (behavior-identical for finite inputs)",
                ));
            }
        }
        // `x == 1.5` / `x != 2.0`: exact float-literal comparison.
        // Comparisons against literal zero are exempt: `if d == 0.0`
        // is the *correct* division guard (NaN compares false and
        // propagates), and `.abs() < eps` would change behavior.
        if (t.is_sym("==") || t.is_sym("!=")) && i > 0 && i + 1 < toks.len() {
            let nonzero_float = |tok: &Tok| {
                tok.kind == TokKind::Float && !float_literal_is_zero(&tok.text)
            };
            let float_adjacent = nonzero_float(&toks[i - 1]) || nonzero_float(&toks[i + 1]);
            // `x == f64::NAN` is always false — catch the path tail too.
            let nan_adjacent = toks
                .get(i + 1..(i + 4).min(toks.len()))
                .map(|w| w.iter().any(|t| t.is_ident("NAN")))
                .unwrap_or(false);
            if float_adjacent || nan_adjacent {
                diags.push(Diagnostic::new(
                    NAN_UNSAFE_ORDERING,
                    file,
                    t.line,
                    t.col,
                    if nan_adjacent {
                        "comparison with NAN is always false; use `.is_nan()`".to_string()
                    } else {
                        format!(
                            "exact float equality is NaN- and rounding-fragile; compare with a \
                             tolerance or add `// kea-lint: allow({NAN_UNSAFE_ORDERING}) — <reason>`"
                        )
                    },
                ));
            }
        }
    }
}

/// Is this float-literal text exactly zero (`0.0`, `0.`, `0e0`, with or
/// without an `f32`/`f64` suffix or underscores)?
fn float_literal_is_zero(text: &str) -> bool {
    let cleaned: String = text
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .chars()
        .filter(|c| *c != '_')
        .collect();
    cleaned.parse::<f64>().map(|v| v == 0.0).unwrap_or(false)
}

/// Propagated local type of the receiver chain ending at the `.` token
/// at `dot`, resolved in the innermost enclosing function.
fn receiver_type(toks: &[Tok], syn: &Syntax, dot: usize) -> VarType {
    let Some((root_at, root)) = syntax::receiver_root(toks, dot) else {
        return VarType::Unknown;
    };
    // A dotted chain (`self.buf.insert`) types the *root*, which says
    // nothing about the field — stay unknown for chains.
    if root_at + 1 != dot {
        return VarType::Unknown;
    }
    syn.enclosing_fn(root_at)
        .map(|f| f.type_of(&root, root_at))
        .unwrap_or(VarType::Unknown)
}

fn truncating_as_cast(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    syn: &Syntax,
    diags: &mut Vec<Diagnostic>,
) {
    for i in 1..toks.len().saturating_sub(1) {
        if !toks[i].is_ident("as") {
            continue;
        }
        if in_spans(spans, toks[i].line) {
            continue;
        }
        let target = &toks[i + 1];
        if target.kind != TokKind::Ident || !INT_TYPES.contains(&target.text.as_str()) {
            continue;
        }
        let prev = &toks[i - 1];
        // `1.5 as usize`
        if prev.kind == TokKind::Float {
            diags.push(Diagnostic::new(
                TRUNCATING_AS_CAST,
                file,
                toks[i].line,
                toks[i].col,
                format!(
                    "float literal cast to `{}` truncates; use `.round()`/`.floor()` explicitly \
                     and bounds-check, or add `// kea-lint: allow({TRUNCATING_AS_CAST}) — <reason>`",
                    target.text
                ),
            ));
            continue;
        }
        // `value.parse::<u64>()? as u32`: the result of a fallible
        // conversion immediately narrowed with `as` — the classic
        // checked-parse-then-unchecked-truncate bug (a machine id of 2³²
        // parsed fine and wrapped to 0 in the telemetry CSV reader).
        // Widening (`? as u64`) stays legal: only narrow targets fire.
        if prev.is_sym("?") && NARROW_INT_TYPES.contains(&target.text.as_str()) {
            diags.push(Diagnostic::new(
                TRUNCATING_AS_CAST,
                file,
                toks[i].line,
                toks[i].col,
                format!(
                    "fallible result narrowed with `as {}` wraps silently; use \
                     `{}::try_from(..)` (or bounds-check) so out-of-range values become \
                     errors, or add `// kea-lint: allow({TRUNCATING_AS_CAST}) — <reason>`",
                    target.text, target.text
                ),
            ));
            continue;
        }
        // `expr.round() as usize`, `xs.len() as u32`
        if prev.is_sym(")") {
            if let Some(open) = open_paren_of(toks, i - 1) {
                if open >= 2 && toks[open - 2].is_sym(".") {
                    let method = &toks[open - 1];
                    // A user-defined `.round()` on a receiver whose
                    // propagated type is known non-float is not a float
                    // cast — the old token-level pass couldn't tell.
                    let recv = receiver_type(toks, syn, open - 2);
                    let float_recv = matches!(recv, VarType::Float | VarType::Unknown);
                    if method.kind == TokKind::Ident
                        && FLOAT_METHODS.contains(&method.text.as_str())
                        && float_recv
                    {
                        diags.push(Diagnostic::new(
                            TRUNCATING_AS_CAST,
                            file,
                            toks[i].line,
                            toks[i].col,
                            format!(
                                "float expression (`.{}(…)`) cast to `{}` silently saturates on \
                                 NaN/overflow; bounds-check first or add \
                                 `// kea-lint: allow({TRUNCATING_AS_CAST}) — <reason>`",
                                method.text, target.text
                            ),
                        ));
                    } else if method.is_ident("len")
                        && NARROW_INT_TYPES.contains(&target.text.as_str())
                    {
                        diags.push(Diagnostic::new(
                            TRUNCATING_AS_CAST,
                            file,
                            toks[i].line,
                            toks[i].col,
                            format!(
                                "`.len() as {}` truncates on large collections; use \
                                 `try_into()` or keep `usize`",
                                target.text
                            ),
                        ));
                    }
                }
            }
        }
    }
}

fn unguarded_spawn(file: &str, toks: &[Tok], spans: &[(u32, u32)], diags: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if !toks[i].is_ident("thread") {
            continue;
        }
        if in_spans(spans, toks[i].line) {
            continue;
        }
        if !(i + 3 < toks.len()
            && toks[i + 1].is_sym("::")
            && toks[i + 2].is_ident("spawn")
            && toks[i + 3].is_sym("("))
        {
            continue;
        }
        // Walk back over an optional `std::` prefix to the statement head.
        let mut head = i;
        if head >= 2 && toks[head - 1].is_sym("::") && toks[head - 2].is_ident("std") {
            head -= 2;
        }
        let at_stmt_start = head == 0
            || toks[head - 1].is_sym(";")
            || toks[head - 1].is_sym("{")
            || toks[head - 1].is_sym("}");
        if !at_stmt_start {
            continue; // the handle is bound or chained — guarded
        }
        let after = skip_parens(toks, i + 3);
        if after < toks.len() && toks[after].is_sym(";") {
            diags.push(Diagnostic::new(
                UNGUARDED_SPAWN,
                file,
                toks[i].line,
                toks[i].col,
                "`thread::spawn` result discarded — the JoinHandle must be kept and joined \
                 (or use `std::thread::scope`) so panics and stragglers are observed",
            ));
        }
    }
}
