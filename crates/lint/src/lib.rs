//! `kea-lint` — workspace-aware static analysis for the KEA invariants.
//!
//! KEA's tuning loop (the paper's always-on Performance Monitor +
//! Modeling Module, §4) runs continuously inside production
//! infrastructure: a panic is an outage, not a bug report. PR 1
//! panic-proofed the optimizer path by hand; this crate makes the
//! invariant *structural* by scanning the workspace's library crates
//! for constructs that can abort or silently corrupt the tuning loop:
//!
//! | rule | catches |
//! |------|---------|
//! | `panic-in-library`    | `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `index-in-library`    | `xs[i]`-style indexing (out-of-bounds panics) |
//! | `nan-unsafe-ordering` | `partial_cmp(..).unwrap()`, exact float equality, `== NAN` |
//! | `truncating-as-cast`  | float→int `as` casts, `.len() as u32`-style narrowing |
//! | `unguarded-spawn`     | `thread::spawn` with a discarded `JoinHandle` |
//! | `bad-suppression`     | malformed/unreasoned `kea-lint:` directives |
//!
//! Scanning is token-level (hand-rolled lexer, no `syn` — the offline
//! build environment rules out registry deps), so the rules are
//! documented heuristics, not type-checked facts; the suppression
//! directives in [`suppress`] exist precisely to record the cases a
//! human has judged safe.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod walk;

use diag::Diagnostic;
use std::path::Path;

/// Lint one file's source as library code. `file` is the label used in
/// diagnostics (conventionally workspace-relative).
pub fn lint_source(file: &str, src: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let spans = rules::test_line_spans(&lexed.toks);
    let sup = suppress::parse(file, &lexed.line_comments, rules::ALL_RULES);
    let mut diags = rules::run_all(file, &lexed.toks, &spans);
    diags.retain(|d| !sup.allows(&d.rule, d.line));
    diags.extend(sup.bad);
    diag::sort(&mut diags);
    diags
}

/// Lint every library-crate source file under the workspace at `root`.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let files = walk::library_sources(root)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut diags = Vec::new();
    for rel in files {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("reading {}: {e}", abs.display()))?;
        let label = rel.to_string_lossy().replace('\\', "/");
        diags.extend(lint_source(&label, &src));
    }
    diag::sort(&mut diags);
    Ok(diags)
}
