//! `kea-lint` — workspace-aware static analysis for the KEA invariants.
//!
//! KEA's tuning loop (the paper's always-on Performance Monitor +
//! Modeling Module, §4) runs continuously inside production
//! infrastructure: a panic is an outage, not a bug report. PR 1
//! panic-proofed the optimizer path by hand; this crate makes the
//! invariant *structural* by scanning the workspace's library crates
//! for constructs that can abort or silently corrupt the tuning loop:
//!
//! | rule | catches |
//! |------|---------|
//! | `panic-in-library`       | `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `index-in-library`       | `xs[i]`-style indexing (out-of-bounds panics) |
//! | `panic-method-in-library`| positional panicking methods (`remove(i)`, `split_at`, `Vec::insert`) |
//! | `nan-unsafe-ordering`    | `partial_cmp(..).unwrap()`, exact float equality, `== NAN` |
//! | `truncating-as-cast`     | float→int `as` casts, `.len() as u32` / `? as u32`-style narrowing |
//! | `unguarded-spawn`        | `thread::spawn` with a discarded `JoinHandle` |
//! | `unvalidated-denominator`| division by a caller-supplied parameter no path validated |
//! | `checked-unwrap`         | `is_some()`/`is_ok()` check still `.unwrap()`-ing inside the block |
//! | `nan-accumulation`       | loop-carried float accumulation of an unchecked quotient |
//! | `relaxed-atomic-gate`    | `Relaxed` load gating control flow (no happens-before edge) |
//! | `scoped-mut-capture`     | `scope.spawn` closure mutating captured state unsynchronized |
//! | `oncelock-get-then-set`  | `OnceLock` `get()` … `set(…)` check-then-act race |
//! | `bad-suppression`        | malformed, unreasoned, or stale `kea-lint:` directives |
//!
//! Scanning is token-level plus the lightweight [`syntax`] layer —
//! function boundaries, coarse nominal binding types, closure bodies,
//! receiver paths — recovered from the same hand-rolled lexer (no `syn`;
//! the offline build environment rules out registry deps). The rules
//! are documented heuristics, not type-checked facts; the suppression
//! directives in [`suppress`] exist precisely to record the cases a
//! human has judged safe, and [`fix`] mechanically applies the rewrites
//! that need no judgment at all.

#![forbid(unsafe_code)]

pub mod conc;
pub mod diag;
pub mod fix;
pub mod flow;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod syntax;
pub mod walk;

use diag::Diagnostic;
use std::path::Path;

/// Full analysis of one file: final diagnostics plus the post-filter
/// suppression state (which knows which directives went stale). The
/// `--fix` planner needs both; [`lint_source`] keeps the simple shape.
pub(crate) fn analyze(file: &str, src: &str) -> (Vec<Diagnostic>, suppress::Suppressions) {
    let lexed = lexer::lex(src);
    let spans = rules::test_line_spans(&lexed.toks);
    let mut sup = suppress::parse(file, &lexed.line_comments, rules::ALL_RULES);
    let mut diags = rules::run_all(file, &lexed.toks, &spans);
    diag::sort(&mut diags);
    // Nested fns are scanned both standalone and as part of their
    // enclosing body; identical findings collapse to one.
    diags.dedup();
    sup.filter(&mut diags);
    diags.extend(sup.bad.iter().cloned());
    diags.extend(sup.stale(file));
    diag::sort(&mut diags);
    (diags, sup)
}

/// Lint one file's source as library code. `file` is the label used in
/// diagnostics (conventionally workspace-relative).
pub fn lint_source(file: &str, src: &str) -> Vec<Diagnostic> {
    analyze(file, src).0
}

/// Lint every library-crate source file under the workspace at `root`.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let files = walk::library_sources(root)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut diags = Vec::new();
    for rel in files {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("reading {}: {e}", abs.display()))?;
        let label = rel.to_string_lossy().replace('\\', "/");
        diags.extend(lint_source(&label, &src));
    }
    diag::sort(&mut diags);
    Ok(diags)
}
