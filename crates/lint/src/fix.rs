//! `--fix`: mechanical, idempotent rewrites for the fixable subset.
//!
//! Three fix classes, all derived from the *post-suppression* findings
//! (an allowed construct is a human judgment `--fix` must not undo):
//!
//! 1. **NaN-safe ordering** — `a.partial_cmp(b).unwrap()` (or
//!    `.expect(…)`) becomes `a.total_cmp(b)`, and `x == f64::NAN`
//!    becomes `x.is_nan()` (`!=` gains a `!`). Behavior-identical for
//!    finite inputs, panic-free for NaN.
//! 2. **Stale directives** — an `allow(...)` that suppresses nothing is
//!    deleted (only when *every* rule it names is stale; partially
//!    stale directives are reported but left for a human).
//! 3. **Allow scaffolds** (opt-in via `--scaffold-allows`) — every
//!    remaining finding gains a `// kea-lint: allow(<rule>) —
//!    FIXME(kea-lint): justify or fix` line above it, turning a
//!    burn-down into a reviewable checklist. Scaffolds are *drafts*:
//!    CI accepts them, review must not.
//!
//! The idempotency guarantee: running `--fix` on its own output plans
//! zero edits. Each rewrite removes the pattern that triggered it, a
//! deleted directive cannot go stale again, and a scaffold suppresses
//! the finding that asked for it. `tests/lint.rs` pins this.
//!
//! Rewrites are line-local: a chain split across lines is reported but
//! not rewritten (the fix must never produce non-compiling code from
//! compiling code by guessing at continuation lines).

use crate::diag::Diagnostic;
use crate::suppress::BAD_SUPPRESSION;

/// One planned edit, 1-based line addressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// 1-based line the edit applies to.
    pub line: u32,
    /// What happens there.
    pub kind: EditKind,
}

/// The edit's shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditKind {
    /// Replace the whole line with `new` (shown against `old`).
    Replace {
        /// The line before the edit.
        old: String,
        /// The line after the edit.
        new: String,
    },
    /// Delete the line outright.
    Delete {
        /// The line being removed.
        old: String,
    },
    /// Insert `text` as a new line above this line.
    InsertAbove {
        /// The inserted line.
        text: String,
    },
}

impl Edit {
    /// `file:line: <-old / +new>` — the dry-run display form.
    pub fn human(&self, file: &str) -> String {
        match &self.kind {
            EditKind::Replace { old, new } => {
                format!("{file}:{}:\n  - {}\n  + {}", self.line, old.trim_end(), new.trim_end())
            }
            EditKind::Delete { old } => {
                format!("{file}:{}:\n  - {}", self.line, old.trim_end())
            }
            EditKind::InsertAbove { text } => {
                format!("{file}:{}:\n  + {}", self.line, text.trim_end())
            }
        }
    }
}

/// Plan every applicable fix for one file. `scaffold` additionally
/// plans reasoned-allow scaffolds for the findings no rewrite covers.
pub fn plan(file: &str, src: &str, scaffold: bool) -> Vec<Edit> {
    let (diags, sup) = crate::analyze(file, src);
    let lines: Vec<&str> = src.lines().collect();
    let mut edits: Vec<Edit> = Vec::new();
    // Lines already rewritten this pass: a second rewrite on the same
    // line would see stale columns, and a scaffold would double-treat.
    let mut rewritten: Vec<u32> = Vec::new();
    let mut fixed: Vec<(u32, u32)> = Vec::new(); // (line, col) of fixed diags

    // 1. Mechanical rewrites, right-to-left within each line.
    let mut rewrites: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == "nan-unsafe-ordering")
        .collect();
    rewrites.sort_by(|a, b| (a.line, b.col).cmp(&(b.line, a.col)));
    for d in rewrites {
        let Some(orig) = lines.get(d.line as usize - 1) else {
            continue;
        };
        // Work on the latest planned content for this line.
        let current = edits
            .iter()
            .rev()
            .find_map(|e| match (&e.kind, e.line == d.line) {
                (EditKind::Replace { new, .. }, true) => Some(new.clone()),
                _ => None,
            })
            .unwrap_or_else(|| (*orig).to_string());
        let new = if d.message.contains("is_nan") {
            rewrite_nan_equality(&current, d.col)
        } else {
            rewrite_partial_cmp(&current, d.col)
        };
        let Some(new) = new else {
            continue;
        };
        edits.retain(|e| !(e.line == d.line && matches!(e.kind, EditKind::Replace { .. })));
        edits.push(Edit {
            line: d.line,
            kind: EditKind::Replace {
                old: (*orig).to_string(),
                new,
            },
        });
        rewritten.push(d.line);
        fixed.push((d.line, d.col));
    }

    // 2. Fully stale directives are deleted.
    for line in sup.fully_stale_lines() {
        let Some(orig) = lines.get(line as usize - 1) else {
            continue;
        };
        match remove_directive(orig) {
            Some(rest) if rest.trim().is_empty() => edits.push(Edit {
                line,
                kind: EditKind::Delete {
                    old: (*orig).to_string(),
                },
            }),
            Some(rest) => edits.push(Edit {
                line,
                kind: EditKind::Replace {
                    old: (*orig).to_string(),
                    new: rest,
                },
            }),
            None => {}
        }
    }

    // 3. Opt-in allow scaffolds for everything left.
    if scaffold {
        let mut by_line: Vec<(u32, Vec<String>)> = Vec::new();
        for d in &diags {
            if d.rule == BAD_SUPPRESSION {
                continue; // cannot be allowed, by design
            }
            if fixed.contains(&(d.line, d.col)) || rewritten.contains(&d.line) {
                continue;
            }
            match by_line.iter_mut().find(|(l, _)| *l == d.line) {
                Some((_, rules)) => {
                    if !rules.contains(&d.rule) {
                        rules.push(d.rule.clone());
                    }
                }
                None => by_line.push((d.line, vec![d.rule.clone()])),
            }
        }
        for (line, mut rules) in by_line {
            rules.sort();
            let indent: String = lines
                .get(line as usize - 1)
                .map(|l| l.chars().take_while(|c| c.is_whitespace()).collect())
                .unwrap_or_default();
            edits.push(Edit {
                line,
                kind: EditKind::InsertAbove {
                    text: format!(
                        "{indent}// kea-lint: allow({}) — FIXME(kea-lint): justify or fix",
                        rules.join(", ")
                    ),
                },
            });
        }
    }

    edits.sort_by_key(|e| {
        (
            std::cmp::Reverse(e.line),
            match e.kind {
                EditKind::Replace { .. } => 0u8,
                EditKind::Delete { .. } => 1,
                EditKind::InsertAbove { .. } => 2,
            },
        )
    });
    edits
}

/// Apply planned edits (already sorted by descending line) to `src`.
pub fn apply(src: &str, edits: &[Edit]) -> String {
    let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
    for e in edits {
        let i = e.line as usize - 1;
        match &e.kind {
            EditKind::Replace { new, .. } => {
                if i < lines.len() {
                    lines[i] = new.clone();
                }
            }
            EditKind::Delete { .. } => {
                if i < lines.len() {
                    lines.remove(i);
                }
            }
            EditKind::InsertAbove { text } => {
                if i <= lines.len() {
                    lines.insert(i, text.clone());
                }
            }
        }
    }
    let mut out = lines.join("\n");
    if src.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// Plan and apply in one step; returns the new source and the edits.
pub fn fix_source(file: &str, src: &str, scaffold: bool) -> (String, Vec<Edit>) {
    let edits = plan(file, src, scaffold);
    if edits.is_empty() {
        return (src.to_string(), edits);
    }
    (apply(src, &edits), edits)
}

/// Scan from the `(` at `open` to its matching `)` within one line,
/// skipping string literals. Returns the index *after* the close.
fn paren_span(line: &str, open: usize) -> Option<usize> {
    let bytes = line.as_bytes();
    if bytes.get(open) != Some(&b'(') {
        return None;
    }
    let mut depth = 0i32;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
            }
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// `….partial_cmp(args).unwrap()` → `….total_cmp(args)`, line-local.
/// `col` is the 1-based column of the `partial_cmp` token.
fn rewrite_partial_cmp(line: &str, col: u32) -> Option<String> {
    let at = col as usize - 1;
    if !line.get(at..)?.starts_with("partial_cmp") {
        return None;
    }
    let args_open = at + "partial_cmp".len();
    let args_end = paren_span(line, args_open)?;
    // The escape hatch: `.unwrap()` or `.expect(…)` directly after.
    let rest = &line[args_end..];
    let tail_len = if let Some(r) = rest.strip_prefix(".unwrap") {
        let open = rest.len() - r.len();
        paren_span(line, args_end + open)? - args_end
    } else if let Some(r) = rest.strip_prefix(".expect") {
        let open = rest.len() - r.len();
        paren_span(line, args_end + open)? - args_end
    } else {
        return None;
    };
    let mut out = String::with_capacity(line.len());
    out.push_str(&line[..at]);
    out.push_str("total_cmp");
    out.push_str(&line[args_open..args_end]);
    out.push_str(&line[args_end + tail_len..]);
    Some(out)
}

/// `x == f64::NAN` → `x.is_nan()`; `x != f64::NAN` → `!x.is_nan()`.
/// `col` is the 1-based column of the comparison operator.
fn rewrite_nan_equality(line: &str, col: u32) -> Option<String> {
    let at = col as usize - 1;
    let op = line.get(at..at + 2)?;
    let negated = match op {
        "==" => false,
        "!=" => true,
        _ => return None,
    };
    // RHS: `f64::NAN` / `f32::NAN` / bare `NAN` after optional spaces.
    let mut r = at + 2;
    let bytes = line.as_bytes();
    while r < bytes.len() && bytes[r] == b' ' {
        r += 1;
    }
    let rhs_end = ["f64::NAN", "f32::NAN", "NAN"]
        .iter()
        .find(|p| line[r..].starts_with(**p))
        .map(|p| r + p.len())?;
    // LHS: a dotted identifier path ending just before the operator.
    let mut l = at;
    while l > 0 && bytes[l - 1] == b' ' {
        l -= 1;
    }
    let lhs_end = l;
    while l > 0 {
        let c = bytes[l - 1];
        if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
            l -= 1;
        } else {
            break;
        }
    }
    let lhs = &line[l..lhs_end];
    if lhs.is_empty()
        || lhs.contains("NAN")
        || !lhs
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
    {
        return None;
    }
    let mut out = String::with_capacity(line.len());
    out.push_str(&line[..l]);
    if negated {
        out.push('!');
    }
    out.push_str(lhs);
    out.push_str(".is_nan()");
    out.push_str(&line[rhs_end..]);
    Some(out)
}

/// Strip the `// kea-lint: …` directive comment from a line, returning
/// what remains (code before the comment, trailing space trimmed).
fn remove_directive(line: &str) -> Option<String> {
    let at = line.find("kea-lint:")?;
    let slashes = line[..at].rfind("//")?;
    Some(line[..slashes].trim_end().to_string())
}
