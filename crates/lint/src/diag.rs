//! Diagnostic type and the human/JSON/SARIF renderers.

/// One lint finding, anchored to a file and 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier, e.g. `panic-in-library`.
    pub rule: String,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// Construct a diagnostic.
    pub fn new(rule: &str, file: &str, line: u32, col: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            col,
            message: message.into(),
        }
    }

    /// `file:line:col: error[rule]: message` — the single-line human form.
    pub fn human(&self) -> String {
        format!(
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Sort diagnostics by file, then line, then column, then rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
    });
}

/// Render diagnostics as a stable JSON document (no external deps).
pub fn render_json(diags: &[Diagnostic]) -> String {
    render_json_timed(diags, None)
}

/// [`render_json`] with an optional wall-clock measurement, so bench
/// tooling can scrape lint cost from the same artifact CI archives.
pub fn render_json_timed(diags: &[Diagnostic], elapsed_ms: Option<f64>) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    if let Some(ms) = elapsed_ms {
        out.push_str(&format!("  \"elapsed_ms\": {ms:.3},\n"));
    }
    out.push_str(&format!("  \"count\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}{}\n",
            escape(&d.rule),
            escape(&d.file),
            d.line,
            d.col,
            escape(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render diagnostics as a SARIF 2.1.0 document — one run, one driver,
/// the full rule catalog under `tool.driver.rules`, one `result` per
/// diagnostic with a `physicalLocation` region. Kept to the shape GitHub
/// code scanning and the schemastore schema both accept; still zero
/// dependencies, so the JSON is assembled by hand like [`render_json`].
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let rules = crate::rules::ALL_RULES;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"kea-lint\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        env!("CARGO_PKG_VERSION")
    ));
    out.push_str("          \"informationUri\": \"https://example.invalid/kea/CONTRIBUTING.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, r) in rules.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"error\"}}}}{}\n",
            escape(r),
            escape(crate::rules::describe(r)),
            if i + 1 < rules.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let rule_index = rules.iter().position(|r| *r == d.rule);
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", escape(&d.rule)));
        if let Some(ri) = rule_index {
            out.push_str(&format!("          \"ruleIndex\": {ri},\n"));
        }
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            escape(&d.message)
        ));
        out.push_str(&format!(
            "          \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]\n",
            escape(&d.file),
            d.line,
            d.col
        ));
        out.push_str(&format!(
            "        }}{}\n",
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
