//! Diagnostic type and the human/JSON renderers.

/// One lint finding, anchored to a file and 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier, e.g. `panic-in-library`.
    pub rule: String,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// Construct a diagnostic.
    pub fn new(rule: &str, file: &str, line: u32, col: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            col,
            message: message.into(),
        }
    }

    /// `file:line:col: error[rule]: message` — the single-line human form.
    pub fn human(&self) -> String {
        format!(
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Sort diagnostics by file, then line, then column, then rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
    });
}

/// Render diagnostics as a stable JSON document (no external deps).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"count\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}{}\n",
            escape(&d.rule),
            escape(&d.file),
            d.line,
            d.col,
            escape(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
