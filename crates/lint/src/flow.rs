//! The **dataflow** rule pack.
//!
//! These rules use the [`crate::syntax`] layer to follow values a short
//! distance — parameter to denominator, check to escape hatch,
//! loop-carried accumulator to its feeding expression — instead of
//! matching adjacent tokens. All three guard the same invariant as the
//! original rule set: KEA's tuning loop must neither abort nor silently
//! corrupt its numbers, because a recommendation computed from NaN ships
//! to the whole fleet.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::rules::in_spans;
use crate::syntax::{receiver_path, FnInfo, Syntax, VarType};
use std::collections::HashSet;

/// Rule id: dividing by a caller-supplied parameter that no code path
/// validated first.
pub const UNVALIDATED_DENOMINATOR: &str = "unvalidated-denominator";
/// Rule id: `x.is_some()` / `x.is_ok()` check followed by `x.unwrap()`
/// inside the guarded block — the check and the escape drift apart.
pub const CHECKED_UNWRAP: &str = "checked-unwrap";
/// Rule id: loop-carried float accumulation of a quotient with an
/// unchecked denominator — one bad term poisons the whole aggregate.
pub const NAN_ACCUMULATION: &str = "nan-accumulation";

/// Methods whose call on a value counts as validating it.
const VALIDATING_METHODS: &[&str] = &[
    "max",
    "min",
    "clamp",
    "abs",
    "is_finite",
    "is_nan",
    "is_sign_positive",
    "is_sign_negative",
    "recip",
    "is_empty",
];

/// Comparison operators that count as validating their operands.
fn is_comparison(t: &Tok) -> bool {
    matches!(t.text.as_str(), "==" | "!=" | "<" | "<=" | ">" | ">=")
        && (t.kind == TokKind::Op || t.kind == TokKind::Punct)
}

/// Has `name` been validated anywhere in `toks[range_start..before]`?
/// Validation = compared against anything, a validating method call,
/// re-assignment, being matched on, or appearing inside an
/// `assert!`-family macro.
fn validated(toks: &[Tok], range_start: usize, before: usize, name: &str) -> bool {
    for j in range_start..before.min(toks.len()) {
        if !toks[j].is_ident(name) {
            continue;
        }
        // `name <op> …` / `… <op> name`
        if j + 1 < toks.len() && is_comparison(&toks[j + 1]) {
            return true;
        }
        if j > range_start && is_comparison(&toks[j - 1]) {
            return true;
        }
        // `name = …` re-assignment (the binding takes over).
        if j + 1 < toks.len() && toks[j + 1].is_sym("=") {
            return true;
        }
        // `name.max(…)`, `name.is_finite()`, …
        if j + 2 < toks.len()
            && toks[j + 1].is_sym(".")
            && toks[j + 2].kind == TokKind::Ident
            && VALIDATING_METHODS.contains(&toks[j + 2].text.as_str())
        {
            return true;
        }
        // `match name`
        if j > range_start && toks[j - 1].is_ident("match") {
            return true;
        }
        // Inside an assert-family macro's argument list.
        if j >= 2 {
            let mut k = j;
            let mut depth = 0i32;
            while k > range_start {
                k -= 1;
                if toks[k].is_sym(")") {
                    depth += 1;
                } else if toks[k].is_sym("(") {
                    if depth == 0 {
                        if k >= 2
                            && toks[k - 1].is_sym("!")
                            && toks[k - 2].text.contains("assert")
                        {
                            return true;
                        }
                        break;
                    }
                    depth -= 1;
                }
            }
        }
    }
    false
}

/// Run the dataflow pack over one file.
pub fn run(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    syn: &Syntax,
    diags: &mut Vec<Diagnostic>,
    consumed: &mut HashSet<usize>,
) {
    for f in &syn.fns {
        unvalidated_denominator(file, toks, spans, f, diags);
        nan_accumulation(file, toks, spans, f, diags);
    }
    checked_unwrap(file, toks, spans, syn, diags, consumed);
}

/// Is the parameter `name` still the caller's raw value at token `at`
/// (not shadowed by a local binding)?
fn is_live_param(f: &FnInfo, name: &str, at: usize) -> Option<VarType> {
    if f.bindings.iter().any(|b| b.name == name && b.at < at) {
        return None;
    }
    f.params
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, t)| *t)
}

fn unvalidated_denominator(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    f: &FnInfo,
    diags: &mut Vec<Diagnostic>,
) {
    for i in f.body.clone() {
        let t = &toks[i];
        let is_div = (t.is_sym("/") || t.is_sym("%"))
            || (t.kind == TokKind::Op && matches!(t.text.as_str(), "/=" | "%="));
        if !is_div || i + 1 >= f.body.end {
            continue;
        }
        let den = &toks[i + 1];
        if den.kind != TokKind::Ident {
            continue;
        }
        // Only bare identifiers: `x / d.max(eps)` and `x / len()` style
        // denominators are expressions the author already shaped.
        if i + 2 < toks.len() {
            let after = &toks[i + 2];
            if after.is_sym(".") || after.is_sym("(") || after.is_sym("::") || after.is_sym("[") {
                continue;
            }
        }
        // The denominator must be a *numeric parameter* still carrying
        // the caller's raw value.
        let Some(ty) = is_live_param(f, &den.text, i) else {
            continue;
        };
        if !matches!(ty, VarType::Float | VarType::Int) {
            continue;
        }
        if in_spans(spans, t.line) {
            continue;
        }
        if validated(toks, f.body.start, i, &den.text) {
            continue;
        }
        let zero_effect = if ty == VarType::Float {
            "a zero or NaN divides into NaN/inf that propagates silently"
        } else {
            "a zero divisor panics"
        };
        diags.push(Diagnostic::new(
            UNVALIDATED_DENOMINATOR,
            file,
            den.line,
            den.col,
            format!(
                "denominator `{}` flows straight from the caller into this division — {}; \
                 guard it first (early-return on zero, `.max(eps)`, or validate at entry), \
                 or add `// kea-lint: allow({UNVALIDATED_DENOMINATOR}) — <reason>`",
                den.text, zero_effect
            ),
        ));
    }
}

fn checked_unwrap(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    syn: &Syntax,
    diags: &mut Vec<Diagnostic>,
    consumed: &mut HashSet<usize>,
) {
    for cond in &syn.conditions {
        // Only `if` conditions guard a block the escape can live in.
        if cond.start == 0 || !toks[cond.start - 1].is_ident("if") {
            continue;
        }
        // Checked receivers in the condition: `recv.is_some()` /
        // `recv.is_ok()`, skipping negated checks (`!recv.is_some()`).
        let mut checked: Vec<(String, &'static str)> = Vec::new();
        for i in cond.clone() {
            let t = &toks[i];
            let kind = if t.is_ident("is_some") {
                "Some"
            } else if t.is_ident("is_ok") {
                "Ok"
            } else {
                continue;
            };
            if i == 0 || !toks[i - 1].is_sym(".") {
                continue;
            }
            if i + 1 >= toks.len() || !toks[i + 1].is_sym("(") {
                continue;
            }
            let Some(path) = receiver_path(toks, i - 1) else {
                continue;
            };
            // Walk to the head of the receiver chain to check negation.
            let chain_len = path.split('.').count() * 2 - 1;
            let head = (i - 1).saturating_sub(chain_len);
            if head > 0 && toks[head - 1].is_sym("!") {
                continue;
            }
            checked.push((path, kind));
        }
        if checked.is_empty() {
            continue;
        }
        // The guarded block: brace group right after the condition.
        let open = cond.end;
        if open >= toks.len() || !toks[open].is_sym("{") {
            continue;
        }
        let mut depth = 0i32;
        let mut close = open;
        while close < toks.len() {
            if toks[close].is_sym("{") {
                depth += 1;
            } else if toks[close].is_sym("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            close += 1;
        }
        for i in open + 1..close.min(toks.len()) {
            let t = &toks[i];
            if !(t.is_ident("unwrap") || t.is_ident("expect")) {
                continue;
            }
            if i == 0 || !toks[i - 1].is_sym(".") {
                continue;
            }
            if i + 1 >= toks.len() || !toks[i + 1].is_sym("(") {
                continue;
            }
            let Some(path) = receiver_path(toks, i - 1) else {
                continue;
            };
            let Some((_, variant)) = checked.iter().find(|(p, _)| *p == path) else {
                continue;
            };
            if in_spans(spans, t.line) {
                continue;
            }
            consumed.insert(i);
            diags.push(Diagnostic::new(
                CHECKED_UNWRAP,
                file,
                t.line,
                t.col,
                format!(
                    "`{path}` is checked in the `if` condition and `.{}()`-ed inside the \
                     block — the check and the escape drift apart under edits; bind the \
                     value instead: `if let {variant}(v) = {path}` (or `let {variant}(v) \
                     = {path} else`)",
                    t.text
                ),
            ));
        }
    }
}

fn nan_accumulation(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    f: &FnInfo,
    diags: &mut Vec<Diagnostic>,
) {
    let mut i = f.body.start;
    while i < f.body.end {
        if !(toks[i].is_ident("for") || toks[i].is_ident("while")) {
            i += 1;
            continue;
        }
        // Loop body: first `{` at zero bracket depth after the keyword.
        let mut depth = 0i32;
        let mut open = i + 1;
        while open < f.body.end {
            let t = &toks[open];
            if t.is_sym("(") || t.is_sym("[") {
                depth += 1;
            } else if t.is_sym(")") || t.is_sym("]") {
                depth -= 1;
            } else if t.is_sym("{") && depth == 0 {
                break;
            }
            open += 1;
        }
        let Some(close) = crate::rules::matching_brace(toks, open) else {
            i = open + 1;
            continue;
        };
        scan_loop_body(file, toks, spans, f, open + 1..close, diags);
        i = open + 1; // nested loops get their own scan
    }
}

fn scan_loop_body(
    file: &str,
    toks: &[Tok],
    spans: &[(u32, u32)],
    f: &FnInfo,
    body: std::ops::Range<usize>,
    diags: &mut Vec<Diagnostic>,
) {
    // Any finiteness guard inside the loop body is taken as the author
    // handling the NaN/inf case.
    let guarded = body
        .clone()
        .any(|k| toks[k].is_ident("is_finite") || toks[k].is_ident("is_nan"));
    if guarded {
        return;
    }
    for k in body.clone() {
        let t = &toks[k];
        if t.kind != TokKind::Op || !matches!(t.text.as_str(), "+=" | "-=" | "*=") {
            continue;
        }
        if k == 0 || toks[k - 1].kind != TokKind::Ident {
            continue;
        }
        let acc = &toks[k - 1];
        if f.type_of(&acc.text, k) != VarType::Float {
            continue;
        }
        // RHS tokens up to the statement end.
        let mut depth = 0i32;
        let mut end = k + 1;
        while end < body.end {
            let te = &toks[end];
            if te.is_sym("(") || te.is_sym("[") || te.is_sym("{") {
                depth += 1;
            } else if te.is_sym(")") || te.is_sym("]") || te.is_sym("}") {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if te.is_sym(";") && depth == 0 {
                break;
            }
            end += 1;
        }
        // A division whose denominator is not a literal poisons the
        // accumulator on a zero/NaN term.
        let mut risky = None;
        for d in k + 1..end {
            if !toks[d].is_sym("/") {
                continue;
            }
            let Some(den) = toks.get(d + 1) else {
                continue;
            };
            if matches!(den.kind, TokKind::Int | TokKind::Float) {
                continue;
            }
            // A bare-identifier denominator already validated in this
            // function is handled.
            if den.kind == TokKind::Ident
                && !toks.get(d + 2).map(|t| t.is_sym(".") || t.is_sym("(")).unwrap_or(false)
                && validated(toks, f.body.start, d, &den.text)
            {
                continue;
            }
            risky = Some(d);
            break;
        }
        let Some(_) = risky else {
            continue;
        };
        if in_spans(spans, t.line) {
            continue;
        }
        diags.push(Diagnostic::new(
            NAN_ACCUMULATION,
            file,
            t.line,
            t.col,
            format!(
                "`{}` accumulates a quotient inside a loop — one zero/NaN denominator \
                 poisons every later iteration silently; validate the denominator, filter \
                 non-finite terms, or add `// kea-lint: allow({NAN_ACCUMULATION}) — <reason>`",
                acc.text
            ),
        ));
    }
}
