//! Integration tests for `kea-lint`: one fixture per rule, the
//! test-code exemption, the suppression contract, JSON output, the CLI
//! exit-code contract, and the self-check that the shipped workspace is
//! violation-free.

use kea_lint::diag::{render_json, Diagnostic};
use kea_lint::lint_source;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lint a fixture as library code, the way `kea-lint <file>` does.
fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let path = fixture_path(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    lint_source(name, &src)
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

// ---- one positive fixture per rule ------------------------------------

#[test]
fn panic_fixture_catches_every_macro_and_method() {
    let diags = lint_fixture("panic_in_library.rs");
    assert_eq!(rules_of(&diags), vec!["panic-in-library"; 6], "{diags:#?}");
    let msgs: String = diags.iter().map(|d| d.message.as_str()).collect();
    for needle in ["unwrap", "expect", "panic", "unreachable", "todo", "unimplemented"] {
        assert!(msgs.contains(needle), "missing `{needle}` in {msgs}");
    }
}

#[test]
fn index_fixture_flags_expressions_not_patterns() {
    let diags = lint_fixture("index_in_library.rs");
    assert_eq!(rules_of(&diags), vec!["index-in-library"; 6], "{diags:#?}");
    // Range indexing (`xs[1..3]`) and map `[]`-lookup (`m[&7]`) are
    // index expressions too; the slice pattern and slice type in
    // `not_an_index` must not fire: every hit lies before that
    // function's body.
    assert!(diags.iter().all(|d| d.line < 25), "{diags:#?}");
}

#[test]
fn panic_method_fixture_flags_position_calls_not_keyed_ones() {
    let diags = lint_fixture("panic_method_in_library.rs");
    assert_eq!(
        rules_of(&diags),
        vec!["panic-method-in-library"; 8],
        "{diags:#?}"
    );
    let msgs: String = diags.iter().map(|d| d.message.as_str()).collect();
    for needle in [
        "remove",
        "swap_remove",
        "split_at",
        "swap",
        "split_off",
        "drain",
        "copy_within",
        "copy_from_slice",
    ] {
        assert!(msgs.contains(needle), "missing `{needle}` in {msgs}");
    }
    // The keyed map calls (`remove(&k)`, `split_off(&k)`) and full-range
    // drains are exempt: every hit lies before those functions.
    assert!(diags.iter().all(|d| d.line < 36), "{diags:#?}");
}

#[test]
fn nan_fixture_flags_partial_cmp_and_float_equality() {
    let diags = lint_fixture("nan_unsafe_ordering.rs");
    assert_eq!(rules_of(&diags), vec!["nan-unsafe-ordering"; 5], "{diags:#?}");
    // The `partial_cmp(..).unwrap()` chain is reported once, as the NaN
    // rule — not double-reported as panic-in-library.
    assert!(diags.iter().all(|d| d.rule != "panic-in-library"));
    // The exact-zero division guard is exempt.
    assert!(diags.iter().all(|d| d.line < 24), "{diags:#?}");
}

#[test]
fn cast_fixture_flags_truncation_not_widening() {
    let diags = lint_fixture("truncating_as_cast.rs");
    assert_eq!(rules_of(&diags), vec!["truncating-as-cast"; 4], "{diags:#?}");
    // `.len() as u64` and `u8 as u64` (widening) are fine.
    assert!(diags.iter().all(|d| d.line < 21), "{diags:#?}");
}

#[test]
fn spawn_fixture_flags_discarded_handles_only() {
    let diags = lint_fixture("unguarded_spawn.rs");
    assert_eq!(rules_of(&diags), vec!["unguarded-spawn"; 2], "{diags:#?}");
    // The bound and chained forms are guarded.
    assert!(diags.iter().all(|d| d.line < 15), "{diags:#?}");
}

// ---- exemptions and suppressions --------------------------------------

#[test]
fn test_code_is_exempt() {
    let diags = lint_fixture("test_code_exempt.rs");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn reasoned_suppressions_silence_their_rule() {
    let diags = lint_fixture("suppressed_ok.rs");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn malformed_suppressions_are_reported_and_do_not_silence() {
    let diags = lint_fixture("suppressed_bad.rs");
    let bad: Vec<_> = diags.iter().filter(|d| d.rule == "bad-suppression").collect();
    assert_eq!(bad.len(), 3, "{diags:#?}");
    // The violations next to the malformed directives still fire.
    assert!(diags.iter().any(|d| d.rule == "panic-in-library"));
    assert!(diags.iter().any(|d| d.rule == "index-in-library"));
    assert_eq!(diags.len(), 5, "{diags:#?}");
}

#[test]
fn clean_fixture_is_clean() {
    let diags = lint_fixture("clean.rs");
    assert!(diags.is_empty(), "{diags:#?}");
}

// ---- output formats ----------------------------------------------------

#[test]
fn json_output_has_the_documented_shape() {
    let diags = lint_fixture("unguarded_spawn.rs");
    let json = render_json(&diags);
    assert!(json.contains("\"version\": 1"), "{json}");
    assert!(json.contains("\"count\": 2"), "{json}");
    assert!(json.contains("\"rule\": \"unguarded-spawn\""), "{json}");
    assert!(json.contains("\"file\": \"unguarded_spawn.rs\""), "{json}");
    assert!(json.contains("\"line\": "), "{json}");
    // Messages containing quotes/backslashes must be escaped.
    let tricky = vec![Diagnostic::new("panic-in-library", r"a\b.rs", 1, 1, "say \"hi\"")];
    let json = render_json(&tricky);
    assert!(json.contains(r#""file": "a\\b.rs""#), "{json}");
    assert!(json.contains(r#"say \"hi\""#), "{json}");
}

#[test]
fn empty_json_document_is_well_formed() {
    let json = render_json(&[]);
    assert!(json.contains("\"count\": 0"), "{json}");
    assert!(json.contains("\"diagnostics\": [\n  ]"), "{json}");
}

// ---- CLI exit-code contract -------------------------------------------

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_kea-lint"))
        .args(args)
        .output()
        .expect("spawning kea-lint")
}

#[test]
fn cli_exits_nonzero_on_each_rule_fixture() {
    for fixture in [
        "panic_in_library.rs",
        "index_in_library.rs",
        "panic_method_in_library.rs",
        "nan_unsafe_ordering.rs",
        "truncating_as_cast.rs",
        "unguarded_spawn.rs",
        "suppressed_bad.rs",
    ] {
        let path = fixture_path(fixture);
        let out = run_cli(&[path.to_str().expect("utf-8 path")]);
        assert_eq!(out.status.code(), Some(1), "{fixture}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("error["), "{fixture}: {stdout}");
    }
}

#[test]
fn cli_exits_zero_on_clean_input() {
    let path = fixture_path("clean.rs");
    let out = run_cli(&[path.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("kea-lint: clean"));
}

#[test]
fn cli_exits_two_on_usage_errors() {
    assert_eq!(run_cli(&[]).status.code(), Some(2));
    assert_eq!(run_cli(&["--no-such-flag"]).status.code(), Some(2));
    assert_eq!(
        run_cli(&["does/not/exist.rs"]).status.code(),
        Some(2),
        "unreadable input is an I/O error, not a lint failure"
    );
}

#[test]
fn cli_json_flag_switches_format() {
    let path = fixture_path("clean.rs");
    let out = run_cli(&["--format", "json", path.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"version\": 1"), "{stdout}");
    assert!(stdout.contains("\"count\": 0"), "{stdout}");
}

// ---- the self-check ----------------------------------------------------

/// The shipped workspace must be violation-free: every library
/// unwrap/index/cast either got fixed or carries a reasoned allow. This
/// is the same scan CI runs via `cargo run -p kea-lint -- --workspace`.
#[test]
fn shipped_workspace_is_violation_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let diags = kea_lint::lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "workspace has {} violation(s):\n{}",
        diags.len(),
        diags.iter().map(|d| d.human()).collect::<Vec<_>>().join("\n")
    );
}
