//! Integration tests for `kea-lint`: one fixture per rule, the
//! test-code exemption, the suppression contract, JSON output, the CLI
//! exit-code contract, and the self-check that the shipped workspace is
//! violation-free.

use kea_lint::diag::{render_json, Diagnostic};
use kea_lint::lint_source;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lint a fixture as library code, the way `kea-lint <file>` does.
fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let path = fixture_path(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    lint_source(name, &src)
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

// ---- one positive fixture per rule ------------------------------------

#[test]
fn panic_fixture_catches_every_macro_and_method() {
    let diags = lint_fixture("panic_in_library.rs");
    assert_eq!(rules_of(&diags), vec!["panic-in-library"; 6], "{diags:#?}");
    let msgs: String = diags.iter().map(|d| d.message.as_str()).collect();
    for needle in ["unwrap", "expect", "panic", "unreachable", "todo", "unimplemented"] {
        assert!(msgs.contains(needle), "missing `{needle}` in {msgs}");
    }
}

#[test]
fn index_fixture_flags_expressions_not_patterns() {
    let diags = lint_fixture("index_in_library.rs");
    assert_eq!(rules_of(&diags), vec!["index-in-library"; 6], "{diags:#?}");
    // Range indexing (`xs[1..3]`) and map `[]`-lookup (`m[&7]`) are
    // index expressions too; the slice pattern and slice type in
    // `not_an_index` must not fire: every hit lies before that
    // function's body.
    assert!(diags.iter().all(|d| d.line < 25), "{diags:#?}");
}

#[test]
fn panic_method_fixture_flags_position_calls_not_keyed_ones() {
    let diags = lint_fixture("panic_method_in_library.rs");
    assert_eq!(
        rules_of(&diags),
        vec!["panic-method-in-library"; 8],
        "{diags:#?}"
    );
    let msgs: String = diags.iter().map(|d| d.message.as_str()).collect();
    for needle in [
        "remove",
        "swap_remove",
        "split_at",
        "swap",
        "split_off",
        "drain",
        "copy_within",
        "copy_from_slice",
    ] {
        assert!(msgs.contains(needle), "missing `{needle}` in {msgs}");
    }
    // The keyed map calls (`remove(&k)`, `split_off(&k)`) and full-range
    // drains are exempt: every hit lies before those functions.
    assert!(diags.iter().all(|d| d.line < 36), "{diags:#?}");
}

#[test]
fn nan_fixture_flags_partial_cmp_and_float_equality() {
    let diags = lint_fixture("nan_unsafe_ordering.rs");
    assert_eq!(rules_of(&diags), vec!["nan-unsafe-ordering"; 5], "{diags:#?}");
    // The `partial_cmp(..).unwrap()` chain is reported once, as the NaN
    // rule — not double-reported as panic-in-library.
    assert!(diags.iter().all(|d| d.rule != "panic-in-library"));
    // The exact-zero division guard is exempt.
    assert!(diags.iter().all(|d| d.line < 24), "{diags:#?}");
}

#[test]
fn cast_fixture_flags_truncation_not_widening() {
    let diags = lint_fixture("truncating_as_cast.rs");
    assert_eq!(rules_of(&diags), vec!["truncating-as-cast"; 5], "{diags:#?}");
    // `.len() as u64`, `u8 as u64`, and `? as u64` (all widening) are fine.
    assert!(diags.iter().all(|d| d.line < 24), "{diags:#?}");
    // The `?`-narrowing case (the telemetry CSV machine-id bug shape)
    // names the checked alternative.
    assert!(
        diags.iter().any(|d| d.line == 22 && d.message.contains("try_from")),
        "{diags:#?}"
    );
}

#[test]
fn spawn_fixture_flags_discarded_handles_only() {
    let diags = lint_fixture("unguarded_spawn.rs");
    assert_eq!(rules_of(&diags), vec!["unguarded-spawn"; 2], "{diags:#?}");
    // The bound and chained forms are guarded.
    assert!(diags.iter().all(|d| d.line < 15), "{diags:#?}");
}

// ---- the dataflow pack -------------------------------------------------

#[test]
fn denominator_fixture_flags_raw_params_only() {
    let diags = lint_fixture("flow_unvalidated_denominator.rs");
    assert_eq!(
        rules_of(&diags),
        vec!["unvalidated-denominator"; 3],
        "{diags:#?}"
    );
    // Guarded, clamped, rebound, and non-parameter denominators are
    // exempt: every hit lies in the first three functions.
    assert!(diags.iter().all(|d| d.line < 21), "{diags:#?}");
    // Float and integer denominators get different consequences.
    let msgs: String = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs.contains("NaN/inf"), "{msgs}");
    assert!(msgs.contains("zero divisor panics"), "{msgs}");
}

#[test]
fn checked_unwrap_fixture_tracks_receiver_paths() {
    let diags = lint_fixture("flow_checked_unwrap.rs");
    let checked: Vec<_> = diags.iter().filter(|d| d.rule == "checked-unwrap").collect();
    assert_eq!(checked.len(), 2, "{diags:#?}");
    // Field paths are tracked, and the suggested fix names the binding.
    assert!(checked.iter().any(|d| d.message.contains("self.slot")));
    assert!(checked.iter().all(|d| d.message.contains("if let")));
    // A mismatched receiver is NOT checked-unwrap — it stays with the
    // plain panic rule, and is not double-reported.
    let panics: Vec<_> = diags.iter().filter(|d| d.rule == "panic-in-library").collect();
    assert_eq!(panics.len(), 1, "{diags:#?}");
    assert_eq!(diags.len(), 3, "{diags:#?}");
}

#[test]
fn nan_accumulation_fixture_flags_unchecked_quotients_only() {
    let diags = lint_fixture("flow_nan_accumulation.rs");
    assert_eq!(rules_of(&diags), vec!["nan-accumulation"], "{diags:#?}");
    // Finiteness-guarded, literal, and pre-validated denominators are
    // exempt: the only hit is in the first loop.
    assert!(diags[0].line < 11, "{diags:#?}");
}

// ---- the concurrency pack ----------------------------------------------

#[test]
fn relaxed_gate_fixture_flags_gates_not_tickets() {
    let diags = lint_fixture("conc_relaxed_gate.rs");
    assert_eq!(rules_of(&diags), vec!["relaxed-atomic-gate"; 2], "{diags:#?}");
    // Acquire gates, fetch_add claim tickets, and straight-line Relaxed
    // reads are exempt: both hits lie in the first two functions.
    assert!(diags.iter().all(|d| d.line < 21), "{diags:#?}");
}

#[test]
fn scoped_capture_fixture_flags_shared_mutation_only() {
    let diags = lint_fixture("conc_scoped_mut_capture.rs");
    assert_eq!(rules_of(&diags), vec!["scoped-mut-capture"; 2], "{diags:#?}");
    // Both the method-call (`out.push`) and compound-assignment
    // (`total +=`) shapes are named in the messages.
    let msgs: String = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs.contains("`out`"), "{msgs}");
    assert!(msgs.contains("`total`"), "{msgs}");
    // Closure-local scratch and Mutex-wrapped capture are exempt.
    assert!(diags.iter().all(|d| d.line < 35), "{diags:#?}");
}

#[test]
fn oncelock_fixture_flags_check_then_act_only() {
    let diags = lint_fixture("conc_oncelock_get_then_set.rs");
    assert_eq!(rules_of(&diags), vec!["oncelock-get-then-set"], "{diags:#?}");
    assert!(diags[0].message.contains("get_or_init"), "{diags:#?}");
    // `get_or_init` and bare `set` are exempt.
    assert!(diags[0].line < 16, "{diags:#?}");
}

// ---- the closed type-inference gaps ------------------------------------

#[test]
fn round_cast_exempts_known_nonfloat_receivers() {
    let diags = lint_fixture("typed_round_receiver.rs");
    assert_eq!(rules_of(&diags), vec!["truncating-as-cast"; 2], "{diags:#?}");
    // The user-defined `round` on the integer-backed receiver (the
    // former false positive) is exempt; the float and the unprovable
    // receivers both stay flagged.
    assert!(diags.iter().all(|d| d.line > 21), "{diags:#?}");
}

#[test]
fn vec_insert_flags_positional_not_keyed() {
    let diags = lint_fixture("typed_insert_receiver.rs");
    assert_eq!(
        rules_of(&diags),
        vec!["panic-method-in-library"],
        "{diags:#?}"
    );
    assert!(diags[0].message.contains("insert"), "{diags:#?}");
    // The keyed map insert (the former false positive) and the opaque
    // receiver are both exempt.
    assert!(diags[0].line < 12, "{diags:#?}");
}

// ---- exemptions and suppressions --------------------------------------

#[test]
fn test_code_is_exempt() {
    let diags = lint_fixture("test_code_exempt.rs");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn reasoned_suppressions_silence_their_rule() {
    let diags = lint_fixture("suppressed_ok.rs");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn malformed_suppressions_are_reported_and_do_not_silence() {
    let diags = lint_fixture("suppressed_bad.rs");
    let bad: Vec<_> = diags.iter().filter(|d| d.rule == "bad-suppression").collect();
    assert_eq!(bad.len(), 3, "{diags:#?}");
    // The violations next to the malformed directives still fire.
    assert!(diags.iter().any(|d| d.rule == "panic-in-library"));
    assert!(diags.iter().any(|d| d.rule == "index-in-library"));
    assert_eq!(diags.len(), 5, "{diags:#?}");
}

#[test]
fn stale_suppressions_are_reported() {
    let diags = lint_fixture("stale_allow.rs");
    assert_eq!(rules_of(&diags), vec!["bad-suppression"], "{diags:#?}");
    assert!(diags[0].message.contains("stale suppression"), "{diags:#?}");
    assert!(diags[0].message.contains("panic-in-library"), "{diags:#?}");
    // The *used* allow right next to it is not reported.
    assert_eq!(diags.len(), 1, "{diags:#?}");
}

#[test]
fn clean_fixture_is_clean() {
    let diags = lint_fixture("clean.rs");
    assert!(diags.is_empty(), "{diags:#?}");
}

// ---- the --fix engine --------------------------------------------------

#[test]
fn fix_rewrites_nan_ordering_and_removes_stale_allows() {
    let src = "\
pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn denorm(x: f64) -> bool {
    x == f64::NAN
}

pub fn fine(x: f64) -> bool {
    // kea-lint: allow(index-in-library) — this indexed once, long ago
    x != f64::NAN
}
";
    let (fixed, edits) = kea_lint::fix::fix_source("fix_me.rs", src, false);
    assert_eq!(edits.len(), 4, "{edits:#?}");
    assert!(fixed.contains("a.total_cmp(b));"), "{fixed}");
    assert!(!fixed.contains("partial_cmp"), "{fixed}");
    assert!(fixed.contains("    x.is_nan()\n"), "{fixed}");
    assert!(fixed.contains("    !x.is_nan()\n"), "{fixed}");
    assert!(!fixed.contains("allow(index-in-library)"), "{fixed}");
    // The fixed source is clean under the rules the fixes target.
    let diags = kea_lint::lint_source("fix_me.rs", &fixed);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn fix_is_idempotent() {
    let src = "\
pub fn rank(xs: &mut [f64]) { // kea-lint: allow(unguarded-spawn) — stale
    xs.sort_by(|a, b| a.partial_cmp(b).expect(\"ordered\"));
    let _probe = xs[0] == f64::NAN;
}
";
    let (once, first) = kea_lint::fix::fix_source("fix_me.rs", src, false);
    assert!(!first.is_empty(), "{first:#?}");
    let (twice, second) = kea_lint::fix::fix_source("fix_me.rs", &once, false);
    assert!(second.is_empty(), "second pass planned {second:#?}");
    assert_eq!(twice, once);
}

#[test]
fn fix_scaffolds_reasoned_allows_on_request() {
    let src = "\
pub fn head(xs: &[f64]) -> f64 {
    xs[0]
}
";
    let (fixed, edits) = kea_lint::fix::fix_source("fix_me.rs", src, true);
    assert_eq!(edits.len(), 1, "{edits:#?}");
    assert!(
        fixed.contains("// kea-lint: allow(index-in-library) — FIXME(kea-lint): justify or fix"),
        "{fixed}"
    );
    // The scaffold carries the diagnostic line's indentation and
    // suppresses the finding, so a second pass plans nothing.
    assert!(fixed.contains("    // kea-lint"), "{fixed}");
    let (_, second) = kea_lint::fix::fix_source("fix_me.rs", &fixed, true);
    assert!(second.is_empty(), "{second:#?}");
    // Suppressed — but only behind the FIXME marker a reviewer must see.
    let diags = kea_lint::lint_source("fix_me.rs", &fixed);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn fix_leaves_multiline_chains_alone() {
    let src = "\
pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b)
        .unwrap());
}
";
    let (fixed, edits) = kea_lint::fix::fix_source("fix_me.rs", src, false);
    assert!(edits.is_empty(), "{edits:#?}");
    assert_eq!(fixed, src);
}

// ---- output formats ----------------------------------------------------

#[test]
fn json_output_has_the_documented_shape() {
    let diags = lint_fixture("unguarded_spawn.rs");
    let json = render_json(&diags);
    assert!(json.contains("\"version\": 1"), "{json}");
    assert!(json.contains("\"count\": 2"), "{json}");
    assert!(json.contains("\"rule\": \"unguarded-spawn\""), "{json}");
    assert!(json.contains("\"file\": \"unguarded_spawn.rs\""), "{json}");
    assert!(json.contains("\"line\": "), "{json}");
    // Messages containing quotes/backslashes must be escaped.
    let tricky = vec![Diagnostic::new("panic-in-library", r"a\b.rs", 1, 1, "say \"hi\"")];
    let json = render_json(&tricky);
    assert!(json.contains(r#""file": "a\\b.rs""#), "{json}");
    assert!(json.contains(r#"say \"hi\""#), "{json}");
}

#[test]
fn empty_json_document_is_well_formed() {
    let json = render_json(&[]);
    assert!(json.contains("\"count\": 0"), "{json}");
    assert!(json.contains("\"diagnostics\": [\n  ]"), "{json}");
}

// ---- CLI exit-code contract -------------------------------------------

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_kea-lint"))
        .args(args)
        .output()
        .expect("spawning kea-lint")
}

#[test]
fn cli_exits_nonzero_on_each_rule_fixture() {
    for fixture in [
        "panic_in_library.rs",
        "index_in_library.rs",
        "panic_method_in_library.rs",
        "nan_unsafe_ordering.rs",
        "truncating_as_cast.rs",
        "unguarded_spawn.rs",
        "suppressed_bad.rs",
        "flow_unvalidated_denominator.rs",
        "flow_checked_unwrap.rs",
        "flow_nan_accumulation.rs",
        "conc_relaxed_gate.rs",
        "conc_scoped_mut_capture.rs",
        "conc_oncelock_get_then_set.rs",
        "stale_allow.rs",
    ] {
        let path = fixture_path(fixture);
        let out = run_cli(&[path.to_str().expect("utf-8 path")]);
        assert_eq!(out.status.code(), Some(1), "{fixture}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("error["), "{fixture}: {stdout}");
    }
}

#[test]
fn cli_exits_zero_on_clean_input() {
    let path = fixture_path("clean.rs");
    let out = run_cli(&[path.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("kea-lint: clean"));
}

#[test]
fn cli_exits_two_on_usage_errors() {
    assert_eq!(run_cli(&[]).status.code(), Some(2));
    assert_eq!(run_cli(&["--no-such-flag"]).status.code(), Some(2));
    assert_eq!(
        run_cli(&["does/not/exist.rs"]).status.code(),
        Some(2),
        "unreadable input is an I/O error, not a lint failure"
    );
}

#[test]
fn cli_json_flag_switches_format() {
    let path = fixture_path("clean.rs");
    let out = run_cli(&["--format", "json", path.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"version\": 1"), "{stdout}");
    assert!(stdout.contains("\"count\": 0"), "{stdout}");
}

#[test]
fn cli_sarif_output_has_the_2_1_0_shape() {
    let path = fixture_path("unguarded_spawn.rs");
    let out = run_cli(&["--format", "sarif", path.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let sarif = String::from_utf8_lossy(&out.stdout);
    // Top-level shape.
    assert!(sarif.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"runs\": ["), "{sarif}");
    assert!(sarif.contains("\"name\": \"kea-lint\""), "{sarif}");
    // The full rule catalog ships under tool.driver.rules.
    for rule in kea_lint::rules::ALL_RULES {
        assert!(sarif.contains(&format!("\"id\": \"{rule}\"")), "{rule} missing");
    }
    // Results carry ruleId + physicalLocation regions.
    assert!(sarif.contains("\"ruleId\": \"unguarded-spawn\""), "{sarif}");
    assert!(sarif.contains("\"physicalLocation\""), "{sarif}");
    assert!(sarif.contains("\"startLine\": "), "{sarif}");
    assert!(sarif.contains("\"startColumn\": "), "{sarif}");
    assert!(sarif.contains("\"uri\": "), "{sarif}");
}

#[test]
fn cli_json_reports_lint_wall_clock() {
    let path = fixture_path("clean.rs");
    let out = run_cli(&["--format", "json", path.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"elapsed_ms\": "), "{stdout}");
}

#[test]
fn cli_fix_dry_run_previews_without_writing() {
    let src = std::fs::read_to_string(fixture_path("stale_allow.rs")).expect("fixture");
    let scratch = std::env::temp_dir().join("kea_lint_fix_dry_run_scratch.rs");
    std::fs::write(&scratch, &src).expect("scratch write");
    let out = run_cli(&["--fix-dry-run", scratch.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1), "pending edits exit 1: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("would apply 1 edit"), "{stdout}");
    let untouched = std::fs::read_to_string(&scratch).expect("scratch read");
    assert_eq!(untouched, src, "dry run must not write");
    let _ = std::fs::remove_file(&scratch);
}

#[test]
fn cli_fix_applies_and_burns_down_clean() {
    let src = std::fs::read_to_string(fixture_path("stale_allow.rs")).expect("fixture");
    let scratch = std::env::temp_dir().join("kea_lint_fix_apply_scratch.rs");
    std::fs::write(&scratch, &src).expect("scratch write");
    let out = run_cli(&["--fix", scratch.to_str().expect("utf-8 path")]);
    // The stale allow is removed and the file then lints clean.
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("applied 1 edit"), "{stdout}");
    let fixed = std::fs::read_to_string(&scratch).expect("scratch read");
    assert!(!fixed.contains("allow(panic-in-library)"), "{fixed}");
    assert!(fixed.contains("allow(index-in-library)"), "used allow survives");
    let _ = std::fs::remove_file(&scratch);
}

#[test]
fn cli_rejects_contradictory_fix_flags() {
    assert_eq!(run_cli(&["--fix", "--fix-dry-run", "x.rs"]).status.code(), Some(2));
    assert_eq!(run_cli(&["--scaffold-allows", "x.rs"]).status.code(), Some(2));
}

// ---- the self-check ----------------------------------------------------

/// The shipped workspace must be violation-free: every library
/// unwrap/index/cast either got fixed or carries a reasoned allow. This
/// is the same scan CI runs via `cargo run -p kea-lint -- --workspace`.
#[test]
fn shipped_workspace_is_violation_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let diags = kea_lint::lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "workspace has {} violation(s):\n{}",
        diags.len(),
        diags.iter().map(|d| d.human()).collect::<Vec<_>>().join("\n")
    );
}
