//! Fixture: malformed directives are `bad-suppression` diagnostics and
//! do NOT silence the violation they sit next to.

pub fn missing_reason(v: Option<u32>) -> u32 {
    // kea-lint: allow(panic-in-library)
    v.unwrap()
}

pub fn unknown_rule(xs: &[f64]) -> f64 {
    // kea-lint: allow(no-such-rule) — the rule name is wrong
    xs[0]
}

pub fn not_a_directive_shape() {
    // kea-lint: deny(panic-in-library) — only allow/allow-file exist
}
