//! Fixture for `nan-accumulation`: a loop-carried float accumulator
//! fed by a quotient with an unchecked denominator — one bad term
//! poisons every later iteration silently.

/// Positive: one zero weight turns the whole sum into NaN/inf.
pub fn weighted_sum(vals: &[f64], weights: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (v, w) in vals.iter().zip(weights) {
        acc += v / w;
    }
    acc
}

/// Negative: the loop filters non-finite terms before accumulating.
pub fn guarded_sum(vals: &[f64], weights: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (v, w) in vals.iter().zip(weights) {
        let term = v / w;
        if term.is_finite() {
            acc += term;
        }
    }
    acc
}

/// Negative: a literal denominator cannot be zero at runtime.
pub fn halves(vals: &[f64]) -> f64 {
    let mut acc = 0.0;
    for v in vals {
        acc += v / 2.0;
    }
    acc
}

/// Negative: the denominator was validated before the loop.
pub fn chunk_mean(vals: &[f64], n: f64) -> f64 {
    let mut acc = 0.0;
    if n <= 0.0 {
        return acc;
    }
    for v in vals {
        acc += v / n;
    }
    acc
}
