//! Fixture: `unguarded-spawn` fires only when the `JoinHandle` is
//! discarded at statement level.

use std::thread;

pub fn discarded_handle() {
    thread::spawn(|| {});
}

pub fn discarded_handle_std_path() {
    std::thread::spawn(|| {});
}

pub fn bound_handle_is_fine() {
    let handle = thread::spawn(|| {});
    let _ = handle.join();
}

pub fn chained_join_is_fine() {
    let _ = thread::spawn(|| {}).join();
}
