//! Fixture: idiomatic KEA library code — no rule fires.

/// Degrade to NaN instead of panicking; iterate instead of indexing.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// NaN-total ordering and checked access.
pub fn max_sorted(xs: &mut Vec<f64>) -> Option<f64> {
    xs.sort_by(f64::total_cmp);
    xs.last().copied()
}

/// A kept-and-joined worker thread.
pub fn run_worker() -> std::thread::Result<()> {
    let handle = std::thread::spawn(|| {});
    handle.join()
}
