//! Fixture for `relaxed-atomic-gate`: a `Relaxed` load publishes no
//! happens-before edge, so using it to gate reads of other data is a
//! visibility race. Relaxed claim tickets and statistics reads are fine.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Positive: the flag gates reads of data the writer published.
pub fn drain_if_ready(ready: &AtomicBool, buf: &[f64]) -> f64 {
    if ready.load(Ordering::Relaxed) {
        return buf.iter().sum();
    }
    0.0
}

/// Positive: `while` spins are gates too.
pub fn spin_until(done: &AtomicBool) {
    while !done.load(Ordering::Relaxed) {
        std::hint::spin_loop();
    }
}

/// Negative: an Acquire load is the correct gate (paired with a
/// Release store on the writer side).
pub fn drain_acquire(ready: &AtomicBool, buf: &[f64]) -> f64 {
    if ready.load(Ordering::Acquire) {
        return buf.iter().sum();
    }
    0.0
}

/// Negative: a Relaxed claim ticket is not a gate — the returned index
/// itself is the claim (the workspace's work-stealing cursors).
pub fn next_ticket(cursor: &AtomicUsize) -> usize {
    cursor.fetch_add(1, Ordering::Relaxed)
}

/// Negative: a Relaxed statistics read outside any condition.
pub fn snapshot(count: &AtomicUsize) -> usize {
    count.load(Ordering::Relaxed)
}
