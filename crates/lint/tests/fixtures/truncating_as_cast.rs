//! Fixture: `truncating-as-cast` fires on float→int casts, narrowing
//! `.len()` casts, and `?`-result narrowing, and stays quiet on int→int
//! widening.

pub fn float_literal_cast() -> usize {
    1.5 as usize
}

pub fn float_method_cast(x: f64) -> u32 {
    x.round() as u32
}

pub fn float_floor_cast(x: f64) -> usize {
    (x * 10.0).floor() as usize
}

pub fn narrow_len_cast(xs: &[u8]) -> u32 {
    xs.len() as u32
}

pub fn try_result_narrowed(s: &str) -> Result<u32, std::num::ParseIntError> {
    Ok(s.parse::<u64>()? as u32)
}

pub fn wide_len_cast_is_fine(xs: &[u8]) -> u64 {
    xs.len() as u64
}

pub fn int_widening_is_fine(x: u8) -> u64 {
    x as u64
}

pub fn try_result_widened_is_fine(s: &str) -> Result<u64, std::num::ParseIntError> {
    Ok(s.parse::<u32>()? as u64)
}
