//! Fixture: reasoned directives silence their rule — trailing form,
//! leading form, multi-rule form, and whole-file form.

// kea-lint: allow-file(truncating-as-cast) — fixture exercises file-scoped allows

pub fn trailing_allow(v: Option<u32>) -> u32 {
    v.unwrap() // kea-lint: allow(panic-in-library) — fixture: value planted by caller
}

pub fn leading_allow(xs: &[f64]) -> f64 {
    // kea-lint: allow(index-in-library) — fixture: caller guarantees non-empty
    xs[0]
}

pub fn multi_rule_allow(xs: &[f64], x: f64) -> bool {
    // kea-lint: allow(index-in-library, nan-unsafe-ordering) — fixture: both on one line
    xs[0] == 1.5 && x > 0.0
}

pub fn file_scoped_allow(x: f64) -> u32 {
    x.round() as u32
}
