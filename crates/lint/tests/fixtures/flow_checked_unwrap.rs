//! Fixture for `checked-unwrap`: an `is_some()`/`is_ok()` check whose
//! guarded block still reaches for `.unwrap()` on the same receiver.

/// Positive: checked then unwrapped — the pair drifts apart under
/// edits; bind the value with `if let` instead.
pub fn first_or_zero(xs: &[f64]) -> f64 {
    let head = xs.first();
    if head.is_some() {
        return *head.unwrap();
    }
    0.0
}

pub struct Cache {
    slot: Option<f64>,
}

impl Cache {
    /// Positive: field paths are tracked too (`self.slot` both sides).
    pub fn read_or_zero(&self) -> f64 {
        if self.slot.is_some() {
            return self.slot.unwrap();
        }
        0.0
    }
}

/// Negative: the binding form the rule recommends.
pub fn last_or_zero(xs: &[f64]) -> f64 {
    if let Some(v) = xs.last() {
        return *v;
    }
    0.0
}

/// Negative: a negated check guards the *absent* path.
pub fn reset_if_empty(slot: &mut Option<f64>) {
    if !slot.is_some() {
        *slot = Some(0.0);
    }
}

/// The guard checks `a` but the block unwraps `b`: not checked-unwrap —
/// the plain panic-in-library rule still owns that one.
pub fn mismatched(a: Option<f64>, b: Option<f64>) -> f64 {
    if a.is_some() {
        return b.unwrap();
    }
    0.0
}
