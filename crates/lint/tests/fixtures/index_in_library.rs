//! Fixture: `index-in-library` fires on index expressions but not on
//! slice patterns or type syntax.

pub fn ident_index(xs: &[f64]) -> f64 {
    xs[0]
}

pub fn chained_index(grid: &[Vec<f64>]) -> f64 {
    grid[1][2]
}

pub fn call_result_index(xs: &[f64]) -> f64 {
    (xs)[0]
}

pub fn not_an_index(xs: &[f64; 2]) -> f64 {
    let [a, b] = xs;
    let _ty: &[f64] = xs;
    a + b
}
