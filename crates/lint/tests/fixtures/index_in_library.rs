//! Fixture: `index-in-library` fires on index expressions — including
//! range indexing and map `[]`-lookup — but not on slice patterns or
//! type syntax.

pub fn ident_index(xs: &[f64]) -> f64 {
    xs[0]
}

pub fn chained_index(grid: &[Vec<f64>]) -> f64 {
    grid[1][2]
}

pub fn call_result_index(xs: &[f64]) -> f64 {
    (xs)[0]
}

pub fn range_index(xs: &[f64]) -> &[f64] {
    &xs[1..3]
}

pub fn map_index(m: &std::collections::HashMap<u32, f64>) -> f64 {
    m[&7]
}

pub fn not_an_index(xs: &[f64; 2]) -> f64 {
    let [a, b] = xs;
    let _ty: &[f64] = xs;
    a + b
}
