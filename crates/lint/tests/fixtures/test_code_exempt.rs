//! Fixture: violations inside `#[cfg(test)]` / `#[test]` items are
//! exempt — a test that panics is a failing test, not an outage.

pub fn clean_library_fn(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_test_is_fine() {
        let xs = [1.0, 2.0];
        assert_eq!(clean_library_fn(Some(1)), 1);
        let _first = xs[0];
        let _exact = xs[0] == 1.0;
        let _n = 1.5 as usize;
        Some(3u32).unwrap();
        std::thread::spawn(|| {});
    }
}
