//! Fixture: `nan-unsafe-ordering` fires on NaN-hostile comparisons and
//! stays quiet on exact-zero division guards.

pub fn partial_cmp_unwrap(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn partial_cmp_expect(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
}

pub fn float_literal_equality(x: f64) -> bool {
    x == 1.5
}

pub fn float_literal_inequality(x: f64) -> bool {
    x != 2.0
}

pub fn nan_comparison(x: f64) -> bool {
    x == f64::NAN
}

pub fn zero_guard_is_fine(d: f64, n: f64) -> f64 {
    if d == 0.0 {
        return f64::NAN;
    }
    n / d
}
