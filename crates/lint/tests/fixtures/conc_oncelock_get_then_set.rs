//! Fixture for `oncelock-get-then-set`: `get()` followed by `set(…)`
//! on the same `OnceLock` is a check-then-act race — another thread can
//! initialize between the two calls. `get_or_init` closes it atomically.

use std::sync::OnceLock;

static CACHE: OnceLock<f64> = OnceLock::new();

/// Positive: the classic check-then-act shape.
pub fn warm(v: f64) -> f64 {
    if CACHE.get().is_none() {
        let _ = CACHE.set(v);
    }
    *CACHE.get().unwrap_or(&v)
}

/// Negative: `get_or_init` — losing initializers are discarded.
pub fn warm_atomic(v: f64) -> f64 {
    *CACHE.get_or_init(|| v)
}

/// Negative: a `set` with no preceding `get` is plain initialization.
pub fn prime(v: f64) -> bool {
    CACHE.set(v).is_ok()
}
