//! Fixture for `unvalidated-denominator`: a division whose denominator
//! flows straight from the caller, with no validating path in between.

/// Positive: `n` goes from the signature into the division untouched —
/// a zero or NaN argument turns the mean into NaN silently.
pub fn mean_per(total: f64, n: f64) -> f64 {
    total / n
}

/// Positive: compound assignment divides too.
pub fn scale_down(acc: f64, k: f64) -> f64 {
    let mut out = acc;
    out /= k;
    out
}

/// Positive: an integer denominator panics outright on zero.
pub fn per_bucket(total: i64, buckets: i64) -> i64 {
    total / buckets
}

/// Negative: the early-return comparison validates `n`.
pub fn guarded_mean(total: f64, n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    total / n
}

/// Negative: the denominator is an expression the author already
/// shaped, not the raw parameter.
pub fn clamped_mean(total: f64, n: f64) -> f64 {
    total / n.max(1.0)
}

/// Negative: a local rebinding replaces the raw parameter.
pub fn rebased_mean(total: f64, n: f64) -> f64 {
    let n = n.max(1.0);
    total / n
}

/// Negative: a non-parameter denominator is the other rules' business.
pub fn halved(total: f64) -> f64 {
    let parts = 2.0;
    total / parts
}
