//! Fixture: every arm of the `panic-in-library` rule fires.

pub fn unwrap_site(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expect_site(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn panic_site() {
    panic!("boom");
}

pub fn unreachable_site() {
    unreachable!();
}

pub fn todo_site() {
    todo!()
}

pub fn unimplemented_site() {
    unimplemented!()
}
