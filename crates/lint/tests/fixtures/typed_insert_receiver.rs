//! Fixture for a closed type-inference gap: `Vec::insert(index, v)`
//! panics on an out-of-range position; keyed `insert(k, v)` on a map
//! does not. The receiver's tracked type tells them apart — map inserts
//! were indistinguishable before.

use std::collections::HashMap;

/// Positive: position-taking insert on a known Vec.
pub fn prepend(xs: &mut Vec<f64>, v: f64) {
    xs.insert(0, v);
}

/// Negative (former false positive): keyed insert on a known map.
pub fn record(m: &mut HashMap<String, f64>, k: String, v: f64) {
    m.insert(k, v);
}

pub struct Opaque;

impl Opaque {
    pub fn insert(&mut self, _k: u64, _v: f64) {}
}

/// Negative: an unprovable receiver stays exempt — the rule only fires
/// on receivers it can prove are Vec-like.
pub fn stash(slot: &mut Opaque, k: u64, v: f64) {
    slot.insert(k, v);
}
