//! Fixture for `scoped-mut-capture`: a closure handed to `scope.spawn`
//! that mutates captured state races across workers. The sanctioned
//! shapes — closure-local scratch returned through the handle, or a
//! sync wrapper — stay silent.

use std::sync::Mutex;
use std::thread;

/// Positive: every worker pushes into the same captured Vec.
pub fn gather_racy(inputs: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    thread::scope(|s| {
        for chunk in inputs.chunks(2) {
            s.spawn(|| {
                out.push(chunk.iter().sum());
            });
        }
    });
    out
}

/// Positive: a captured accumulator via compound assignment.
pub fn total_racy(inputs: &[f64]) -> f64 {
    let mut total = 0.0;
    thread::scope(|s| {
        for chunk in inputs.chunks(2) {
            s.spawn(|| {
                total += chunk.iter().sum::<f64>();
            });
        }
    });
    total
}

/// Negative: workers mutate only closure-local scratch and return it;
/// the parent merges after `join`.
pub fn gather_local(inputs: &[f64]) -> f64 {
    let mut merged = 0.0;
    thread::scope(|s| {
        let h = s.spawn(|| {
            let mut local = 0.0;
            for v in inputs {
                local += *v;
            }
            local
        });
        merged = h.join().unwrap_or(0.0);
    });
    merged
}

/// Negative: a sync wrapper is the sanctioned way to share.
pub fn gather_locked(inputs: &[f64]) -> Vec<f64> {
    let out = Mutex::new(Vec::new());
    thread::scope(|s| {
        for chunk in inputs.chunks(2) {
            s.spawn(|| {
                let mut guard = out.lock().unwrap_or_else(|e| e.into_inner());
                guard.push(chunk.iter().sum());
            });
        }
    });
    out.into_inner().unwrap_or_default()
}
