//! Fixture for the stale-suppression arm of `bad-suppression`: an
//! `allow` that suppresses zero diagnostics is dead weight hiding real
//! regressions, and is itself reported.

/// The allow below suppresses nothing — the unwrap it once covered was
/// refactored into `unwrap_or` long ago.
pub fn lookup(m: &std::collections::HashMap<u64, f64>, k: u64) -> f64 {
    // kea-lint: allow(panic-in-library) — this was unwrapped once, long ago
    m.get(&k).copied().unwrap_or(0.0)
}

/// A *used* allow right next to it stays legal.
pub fn head(xs: &[f64]) -> f64 {
    xs[0] // kea-lint: allow(index-in-library) — callers guarantee non-empty
}
