//! Fixture: `panic-method-in-library` fires on position-taking methods
//! that panic out of bounds, but not on their keyed (map/set) homonyms
//! or full-range drains.

pub fn vec_remove(xs: &mut Vec<f64>) -> f64 {
    xs.remove(0)
}

pub fn vec_swap_remove(xs: &mut Vec<f64>) -> f64 {
    xs.swap_remove(3)
}

pub fn slice_split_at(xs: &[f64]) -> (&[f64], &[f64]) {
    xs.split_at(2)
}

pub fn slice_swap(xs: &mut [f64]) {
    xs.swap(0, 9)
}

pub fn vec_split_off(xs: &mut Vec<f64>) -> Vec<f64> {
    xs.split_off(4)
}

pub fn range_drain(xs: &mut Vec<f64>) {
    xs.drain(1..5);
}

pub fn copy_within(xs: &mut [f64]) {
    xs.copy_within(0..2, 6);
}

pub fn copy_from_slice(xs: &mut [f64], ys: &[f64]) {
    xs.copy_from_slice(ys);
}

pub fn keyed_calls_are_exempt(m: &mut std::collections::BTreeMap<u32, f64>) -> Option<f64> {
    let _tail = m.split_off(&10);
    m.remove(&7)
}

pub fn full_drain_is_exempt(xs: &mut Vec<f64>, m: &mut std::collections::HashMap<u32, f64>) {
    xs.drain(..);
    m.drain();
}
