//! Fixture for a closed type-inference gap: `.round() as usize` is only
//! a float→int cast when the receiver is (or may be) a float. A
//! user-defined `round` on a known non-float type was a false positive
//! before the syntax layer tracked receiver types.

pub struct Quarter(pub u32);

impl Quarter {
    /// A user-defined `round` on an integer-backed type.
    pub fn round(&self) -> u32 {
        self.0
    }
}

/// Negative (former false positive): `q` is known non-float, so its
/// `.round()` result widening into `usize` is not a truncating cast.
pub fn quarter_index(q: &Quarter) -> usize {
    let idx = q.round() as usize;
    idx
}

/// Positive: a real float receiver still trips the rule.
pub fn float_index(x: f64) -> usize {
    let idx = x.round() as usize;
    idx
}

/// Positive: an untyped receiver stays flagged — the rule only stands
/// down when it can *prove* the receiver is not a float.
pub fn opaque_index<T: Into<f64>>(x: T) -> usize {
    let v = x.into();
    let idx = v.round() as usize;
    idx
}
