//! Property-based tests for the statistics toolkit: invariants that must
//! hold for *any* finite input, not just the unit-test fixtures.

use kea_stats::{
    bootstrap_ci, mean, percentile, t_test_welch, variance, Alternative, Summary, Welford,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_vec(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, min_len..60)
}

proptest! {
    #[test]
    fn percentile_is_monotone_and_bounded(data in finite_vec(1), p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&data, lo).unwrap();
        let b = percentile(&data, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    #[test]
    fn welford_matches_batch_moments(data in finite_vec(2)) {
        let mut acc = Welford::new();
        for &v in &data {
            acc.push(v);
        }
        let m = mean(&data).unwrap();
        let v = variance(&data).unwrap();
        prop_assert!((acc.mean() - m).abs() <= 1e-6 * m.abs().max(1.0));
        prop_assert!((acc.sample_variance() - v).abs() <= 1e-6 * v.abs().max(1.0));
    }

    #[test]
    fn welford_merge_is_associative_enough(a in finite_vec(1), b in finite_vec(1)) {
        let mut left = Welford::new();
        for &v in &a { left.push(v); }
        let mut right = Welford::new();
        for &v in &b { right.push(v); }
        left.merge(&right);
        let mut whole = Welford::new();
        for &v in a.iter().chain(&b) { whole.push(v); }
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
    }

    #[test]
    fn welch_t_is_antisymmetric(a in finite_vec(3), b in finite_vec(3)) {
        let ab = t_test_welch(&a, &b, Alternative::TwoSided);
        let ba = t_test_welch(&b, &a, Alternative::TwoSided);
        match (ab, ba) {
            (Ok(x), Ok(y)) => {
                prop_assert!((x.t + y.t).abs() < 1e-9);
                prop_assert!((x.p_value - y.p_value).abs() < 1e-9);
                prop_assert!(x.p_value >= 0.0 && x.p_value <= 1.0 + 1e-12);
            }
            (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
            _ => prop_assert!(false, "asymmetric error behaviour"),
        }
    }

    #[test]
    fn summary_orders_its_quantiles(data in finite_vec(1)) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
    }

    #[test]
    fn bootstrap_ci_brackets_the_estimate(data in finite_vec(3), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ci = bootstrap_ci(&data, |d| d.iter().sum::<f64>() / d.len() as f64, 200, 0.95, &mut rng).unwrap();
        // Percentile bootstrap of the mean: the interval must cover the
        // resample distribution's span, which includes values near the
        // estimate. Allow tiny tolerance for degenerate spreads.
        prop_assert!(ci.lower <= ci.upper);
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(ci.lower >= min - 1e-9 && ci.upper <= max + 1e-9);
    }
}
