//! Descriptive statistics over machine-level telemetry samples.
//!
//! KEA's Performance Monitor aggregates raw per-machine observations into
//! hourly and daily summaries (Table 2 of the paper). The routines here are
//! the numerical core of that aggregation: numerically stable means and
//! variances (Welford), interpolated percentiles (used for the p99 queueing
//! latency of Fig 12 and the high-load sensitivity run of Fig 10), and a
//! five-number [`Summary`].

use crate::error::{check_finite, StatsError};

/// Arithmetic mean of a sample.
///
/// # Errors
/// Returns [`StatsError::EmptyInput`] on an empty slice and
/// [`StatsError::NonFiniteInput`] if the sample contains NaN/inf.
pub fn mean(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    check_finite(data)?;
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased (n−1) sample variance, computed with Welford's algorithm for
/// numerical stability on long telemetry streams.
///
/// # Errors
/// Requires at least two observations.
pub fn variance(data: &[f64]) -> Result<f64, StatsError> {
    if data.len() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            actual: data.len(),
        });
    }
    check_finite(data)?;
    let mut acc = Welford::new();
    for &v in data {
        acc.push(v);
    }
    Ok(acc.sample_variance())
}

/// Unbiased sample standard deviation. See [`variance`].
pub fn stddev(data: &[f64]) -> Result<f64, StatsError> {
    variance(data).map(f64::sqrt)
}

/// Median of a sample (linear-interpolation percentile at 50).
pub fn median(data: &[f64]) -> Result<f64, StatsError> {
    percentile(data, 50.0)
}

/// Percentile with linear interpolation between closest ranks
/// (the "exclusive" definition used by most telemetry systems).
///
/// `p` is in percent: `percentile(data, 99.0)` is the p99.
///
/// # Errors
/// `p` must lie in `[0, 100]` and the sample must be non-empty and finite.
pub fn percentile(data: &[f64], p: f64) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::InvalidParameter("percentile must be in [0, 100]"));
    }
    check_finite(data)?;
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(percentile_of_sorted(&sorted, p))
}

/// Percentile of an already-sorted slice. Callers computing many percentiles
/// over the same sample should sort once and use this directly.
///
/// Out-of-range or NaN `p` is clamped into `[0, 100]` (NaN maps to 0) and an
/// empty slice returns NaN; prefer [`percentile`] for untrusted input, which
/// reports those cases as typed errors instead.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0]; // kea-lint: allow(index-in-library) — len == 1 in this branch
    }
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize; // kea-lint: allow(truncating-as-cast) — rank ∈ [0, len-1]: p clamped finite above
    let hi = rank.ceil() as usize; // kea-lint: allow(truncating-as-cast) — same bound as `lo`
    if lo == hi {
        sorted[lo] // kea-lint: allow(index-in-library) — lo = hi in [0, len-1] by the rank clamp
    } else {
        let frac = rank - lo as f64;
        // kea-lint: allow(index-in-library) — lo, hi in [0, len-1] by the rank clamp
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Welford's online algorithm for streaming mean/variance.
///
/// The Performance Monitor computes hourly machine aggregates in one pass
/// over the event stream, so a streaming accumulator avoids buffering raw
/// samples.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0.0 with fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance; 0.0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Merges another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.n = n_total;
    }
}

/// Five-number-plus summary of a sample, the unit of KEA's daily
/// machine-group aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased standard deviation (0.0 for singleton samples).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 99th percentile (reported for queueing latency in Fig 12).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `data`.
    ///
    /// # Errors
    /// Fails on empty or non-finite input.
    pub fn of(data: &[f64]) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        check_finite(data)?;
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut acc = Welford::new();
        for &v in data {
            acc.push(v);
        }
        Ok(Summary {
            count: data.len(),
            mean: acc.mean(),
            stddev: acc.sample_variance().sqrt(),
            min: sorted[0], // kea-lint: allow(index-in-library) — emptiness rejected at the top of this function
            p25: percentile_of_sorted(&sorted, 25.0),
            median: percentile_of_sorted(&sorted, 50.0),
            p75: percentile_of_sorted(&sorted, 75.0),
            p99: percentile_of_sorted(&sorted, 99.0),
            max: sorted.last().copied().unwrap_or(f64::NAN), // non-empty checked above
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_sample() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
    }

    #[test]
    fn mean_rejects_empty() {
        assert_eq!(mean(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn mean_rejects_nan() {
        assert_eq!(mean(&[1.0, f64::NAN]), Err(StatsError::NonFiniteInput));
    }

    #[test]
    fn variance_matches_hand_computation() {
        // var([2,4,4,4,5,5,7,9]) = 4.571428... (sample, n-1)
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_needs_two_points() {
        assert_eq!(
            variance(&[1.0]),
            Err(StatsError::InsufficientData {
                required: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn stddev_is_sqrt_of_variance() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!((stddev(&data).unwrap().powi(2) - variance(&data).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn percentile_endpoints() {
        let data = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 10.0);
        assert_eq!(percentile(&data, 100.0).unwrap(), 30.0);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [0.0, 10.0];
        assert!((percentile(&data, 25.0).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_out_of_range() {
        assert!(matches!(
            percentile(&[1.0], 101.0),
            Err(StatsError::InvalidParameter(_))
        ));
        assert!(matches!(
            percentile(&[1.0], -0.5),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn welford_matches_batch_variance() {
        let data = [1.5, -2.0, 3.25, 0.0, 7.5, 4.0];
        let mut acc = Welford::new();
        for &v in &data {
            acc.push(v);
        }
        assert!((acc.mean() - mean(&data).unwrap()).abs() < 1e-12);
        assert!((acc.sample_variance() - variance(&data).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_single_stream() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut left = Welford::new();
        for &v in &a {
            left.push(v);
        }
        let mut right = Welford::new();
        for &v in &b {
            right.push(v);
        }
        left.merge(&right);

        let mut whole = Welford::new();
        for &v in a.iter().chain(&b) {
            whole.push(v);
        }
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_with_empty_sides() {
        let mut empty = Welford::new();
        let mut full = Welford::new();
        full.push(5.0);
        full.push(7.0);
        empty.merge(&full);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 6.0).abs() < 1e-12);
        let snapshot = empty.clone();
        empty.merge(&Welford::new());
        assert!((empty.mean() - snapshot.mean()).abs() < 1e-12);
        assert_eq!(empty.count(), snapshot.count());
    }

    #[test]
    fn summary_fields_consistent() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&data).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.median - 50.5).abs() < 1e-12);
        assert!(s.p25 < s.median && s.median < s.p75 && s.p75 < s.p99);
    }

    #[test]
    fn summary_singleton() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.stddev, 0.0);
    }
}
