//! Treatment-effect estimation for flighting and roll-out evaluation.
//!
//! §5.2.2 of the paper: "We extracted the performance data for the periods
//! of one month before and one month after the roll-out. We use *treatment
//! effects* to evaluate the performance changes during the two periods with
//! significant tests." This module implements the simple before/after
//! treatment effect with a Welch test, plus difference-in-differences for
//! designs where a control group is available (the hybrid experiment
//! setting of §7).

use crate::error::StatsError;
use crate::ttest::{t_test_welch, Alternative, TTestResult};

/// Estimated effect of a treatment (configuration change) on a metric.
#[derive(Debug, Clone, PartialEq)]
pub struct TreatmentEffect {
    /// Mean of the metric before the change / in the control group.
    pub baseline_mean: f64,
    /// Mean of the metric after the change / in the treatment group.
    pub treated_mean: f64,
    /// Absolute effect: `treated_mean − baseline_mean`.
    pub effect: f64,
    /// Relative effect as a fraction of the baseline (the paper reports
    /// these as percentages, e.g. +10.9% Total Data Read in Table 4).
    pub relative_effect: f64,
    /// Welch t-test of treated vs baseline.
    pub test: TTestResult,
}

impl TreatmentEffect {
    /// Relative effect in percent, the paper's reporting unit.
    pub fn percent_change(&self) -> f64 {
        self.relative_effect * 100.0
    }

    /// Is the effect significant at `alpha`?
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.test.significant_at(alpha)
    }
}

/// Before/after (or control/treatment) effect with a Welch t-test.
///
/// `baseline` is the pre-change or control sample, `treated` the post-change
/// or treatment sample, each one observation per machine-hour (or other
/// aggregation unit).
///
/// ```
/// use kea_stats::treatment_effect;
/// let before: Vec<f64> = (0..50).map(|i| 100.0 + (i % 7) as f64).collect();
/// let after: Vec<f64> = before.iter().map(|v| v * 1.09).collect();
/// let effect = treatment_effect(&before, &after).unwrap();
/// assert!((effect.percent_change() - 9.0).abs() < 0.1);
/// assert!(effect.significant_at(0.01));
/// ```
///
/// # Errors
/// Propagates t-test errors; additionally the baseline mean must be non-zero
/// for the relative effect to be defined.
pub fn treatment_effect(baseline: &[f64], treated: &[f64]) -> Result<TreatmentEffect, StatsError> {
    let test = t_test_welch(treated, baseline, Alternative::TwoSided)?;
    let treated_mean = test.mean_diff + mean_of(baseline)?;
    let baseline_mean = mean_of(baseline)?;
    if baseline_mean == 0.0 {
        return Err(StatsError::InvalidParameter(
            "baseline mean is zero; relative effect undefined",
        ));
    }
    let effect = treated_mean - baseline_mean;
    Ok(TreatmentEffect {
        baseline_mean,
        treated_mean,
        effect,
        relative_effect: effect / baseline_mean,
        test,
    })
}

fn mean_of(data: &[f64]) -> Result<f64, StatsError> {
    crate::describe::mean(data)
}

/// Difference-in-differences estimate.
///
/// Removes shared temporal drift by comparing the before→after change of the
/// treatment group against the before→after change of a control group:
/// `DiD = (T_after − T_before) − (C_after − C_before)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffInDiff {
    /// Change observed in the treatment group.
    pub treatment_delta: f64,
    /// Change observed in the control group (the drift estimate).
    pub control_delta: f64,
    /// The difference-in-differences effect.
    pub effect: f64,
    /// Welch t-test on per-unit deltas (treatment deltas vs control deltas).
    pub test: TTestResult,
}

/// Difference-in-differences over paired per-unit observations.
///
/// All four slices must align per unit: `treatment_before[i]` and
/// `treatment_after[i]` are the same machine, and likewise for control.
///
/// # Errors
/// Pairs must have equal lengths and each group at least two units.
pub fn diff_in_diff(
    treatment_before: &[f64],
    treatment_after: &[f64],
    control_before: &[f64],
    control_after: &[f64],
) -> Result<DiffInDiff, StatsError> {
    if treatment_before.len() != treatment_after.len()
        || control_before.len() != control_after.len()
    {
        return Err(StatsError::InvalidParameter(
            "before/after slices must pair per unit",
        ));
    }
    let t_delta: Vec<f64> = treatment_after
        .iter()
        .zip(treatment_before)
        .map(|(a, b)| a - b)
        .collect();
    let c_delta: Vec<f64> = control_after
        .iter()
        .zip(control_before)
        .map(|(a, b)| a - b)
        .collect();
    let test = t_test_welch(&t_delta, &c_delta, Alternative::TwoSided)?;
    let treatment_delta = mean_of(&t_delta)?;
    let control_delta = mean_of(&c_delta)?;
    Ok(DiffInDiff {
        treatment_delta,
        control_delta,
        effect: treatment_delta - control_delta,
        test,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_a_ten_percent_improvement() {
        // Baseline around 100, treated around 110 — the shape of Table 4's
        // Total Data Read improvement.
        let baseline: Vec<f64> = (0..100).map(|i| 100.0 + (i % 9) as f64 * 0.5).collect();
        let treated: Vec<f64> = (0..100).map(|i| 110.0 + (i % 9) as f64 * 0.5).collect();
        let eff = treatment_effect(&baseline, &treated).unwrap();
        assert!((eff.percent_change() - 10.0).abs() < 0.5);
        assert!(eff.significant_at(0.01));
        assert!(eff.effect > 0.0);
    }

    #[test]
    fn null_effect_is_not_significant() {
        let baseline: Vec<f64> = (0..60).map(|i| 50.0 + ((i * 17) % 13) as f64).collect();
        let eff = treatment_effect(&baseline, &baseline).unwrap();
        assert!(eff.effect.abs() < 1e-12);
        assert!(!eff.significant_at(0.05));
        assert!((eff.relative_effect).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_mean_rejected() {
        let baseline = [-1.0, 1.0, -2.0, 2.0];
        let treated = [5.0, 6.0, 7.0, 8.0];
        assert!(matches!(
            treatment_effect(&baseline, &treated),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn did_removes_shared_drift() {
        // Both groups drift +5; treatment additionally gains +3. A small
        // identical per-unit jitter keeps the delta variances non-zero
        // without shifting the group means relative to each other (we use
        // n divisible by 3 so the jitter averages out exactly).
        let n = 51;
        let jitter = |i: usize| (i % 3) as f64 * 0.1;
        let t_before: Vec<f64> = (0..n).map(|i| 100.0 + (i % 7) as f64).collect();
        let t_after: Vec<f64> = t_before
            .iter()
            .enumerate()
            .map(|(i, v)| v + 5.0 + 3.0 + jitter(i))
            .collect();
        let c_before: Vec<f64> = (0..n).map(|i| 90.0 + (i % 5) as f64).collect();
        let c_after: Vec<f64> = c_before
            .iter()
            .enumerate()
            .map(|(i, v)| v + 5.0 + jitter(i))
            .collect();
        let did = diff_in_diff(&t_before, &t_after, &c_before, &c_after).unwrap();
        assert!((did.effect - 3.0).abs() < 1e-9);
        assert!((did.control_delta - (5.0 + 0.1)).abs() < 1e-9);
        assert!(did.test.significant_at(0.01));
    }

    #[test]
    fn did_rejects_mismatched_pairs() {
        assert!(matches!(
            diff_in_diff(&[1.0, 2.0], &[1.0], &[1.0, 2.0], &[1.0, 2.0]),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn did_with_no_effect() {
        let n = 40;
        let before: Vec<f64> = (0..n).map(|i| 10.0 + (i % 11) as f64 * 0.3).collect();
        let after: Vec<f64> = before
            .iter()
            .enumerate()
            .map(|(i, v)| v + 2.0 + ((i * 7) % 5) as f64 * 0.01)
            .collect();
        let did = diff_in_diff(&before, &after, &before, &after).unwrap();
        assert!(did.effect.abs() < 1e-12);
        assert!(!did.test.significant_at(0.05));
    }
}
