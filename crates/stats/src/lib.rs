//! Statistical toolkit for the KEA reproduction.
//!
//! KEA ("Tuning an Exabyte-Scale Data Infrastructure", SIGMOD 2021) leans on
//! classical statistics rather than heavyweight ML: the paper validates every
//! configuration change with Student's t-tests, summarises machine behaviour
//! with robust descriptive statistics, and evaluates production roll-outs
//! with treatment-effect analysis. This crate implements that machinery from
//! scratch:
//!
//! * [`describe`] — streaming and batch descriptive statistics (mean,
//!   variance, percentiles, five-number summaries).
//! * [`dist`] — special functions (log-gamma, regularized incomplete beta)
//!   and the normal / Student-t distributions built on top of them.
//! * [`ttest`] — one-sample, pooled two-sample, and Welch two-sample t-tests.
//! * [`mannwhitney`] — the Mann-Whitney U test as a non-parametric
//!   cross-check for skewed machine metrics.
//! * [`power`] — experiment sizing: required group sizes and minimum
//!   detectable effects (§7's "relatively large sample size", made
//!   quantitative).
//! * [`bootstrap`] — seeded percentile-bootstrap confidence intervals.
//! * [`treatment`] — before/after treatment effects and
//!   difference-in-differences, as used for the §5.2.2 production roll-out.
//!
//! All randomised routines take explicit [`rand::Rng`] handles so that every
//! KEA experiment is reproducible from a seed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bootstrap;
pub mod describe;
pub mod dist;
pub mod error;
pub mod mannwhitney;
pub mod power;
pub mod treatment;
pub mod ttest;

pub use bootstrap::{bootstrap_ci, BootstrapCi};
pub use describe::{mean, median, percentile, stddev, variance, Summary, Welford};
pub use dist::{Normal, StudentsT};
pub use error::StatsError;
pub use mannwhitney::{mann_whitney_u, MannWhitneyResult};
pub use power::{achieved_power, minimum_detectable_effect, required_n_two_sample};
pub use treatment::{diff_in_diff, treatment_effect, DiffInDiff, TreatmentEffect};
pub use ttest::{t_test_one_sample, t_test_pooled, t_test_welch, Alternative, TTestResult};
