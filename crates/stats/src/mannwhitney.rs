//! Mann-Whitney U test (Wilcoxon rank-sum).
//!
//! Machine-hour metrics such as queueing latency are heavily skewed, so the
//! Experiment Module cross-checks t-test conclusions with this
//! non-parametric test. We use the normal approximation with tie correction
//! and continuity correction, which is accurate for the sample sizes KEA
//! works with (hundreds of machines × hours).

use crate::dist::Normal;
use crate::error::{check_finite, StatsError};
use crate::ttest::Alternative;

/// Result of a Mann-Whitney U test.
#[derive(Debug, Clone, PartialEq)]
pub struct MannWhitneyResult {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Standardized z statistic (normal approximation, continuity-corrected).
    pub z: f64,
    /// p-value under the chosen alternative.
    pub p_value: f64,
    /// Which alternative hypothesis was tested.
    pub alternative: Alternative,
}

impl MannWhitneyResult {
    /// Convenience: is the result significant at level `alpha`?
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Mann-Whitney U test of whether samples `a` and `b` come from the same
/// distribution, using mid-ranks for ties and a tie-corrected normal
/// approximation.
///
/// # Errors
/// Both samples must be non-empty and finite; the normal approximation
/// requires the tie-corrected variance to be non-zero (i.e. not all values
/// identical).
pub fn mann_whitney_u(
    a: &[f64],
    b: &[f64],
    alt: Alternative,
) -> Result<MannWhitneyResult, StatsError> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    check_finite(a)?;
    check_finite(b)?;

    let na = a.len() as f64;
    let nb = b.len() as f64;
    let n = a.len() + b.len();

    // Pool, remember origin, sort, assign mid-ranks.
    let mut pooled: Vec<(f64, bool)> = a
        .iter()
        .map(|&v| (v, true))
        .chain(b.iter().map(|&v| (v, false)))
        .collect();
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));

    let mut rank_sum_a = 0.0;
    let mut tie_term = 0.0; // Σ (t³ − t) over tie groups.
    let mut i = 0;
    while i < n {
        let mut j = i;
        // kea-lint: allow(index-in-library) — j + 1 < n guards the lookahead; i < n from the outer loop
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let group = (j - i + 1) as f64;
        // Mid-rank of positions i..=j (1-based ranks).
        let mid_rank = (i + 1 + j + 1) as f64 / 2.0;
        for item in &pooled[i..=j] { // kea-lint: allow(index-in-library) — i <= j < n maintained by the tie-scan above
            if item.1 {
                rank_sum_a += mid_rank;
            }
        }
        if group > 1.0 {
            tie_term += group * group * group - group;
        }
        i = j + 1;
    }

    let u_a = rank_sum_a - na * (na + 1.0) / 2.0;
    let mean_u = na * nb / 2.0;
    let n_f = n as f64;
    let var_u = na * nb / 12.0 * ((n_f + 1.0) - tie_term / (n_f * (n_f - 1.0)));
    if var_u <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let sd = var_u.sqrt();

    // Continuity correction toward the mean.
    let cc = |x: f64| {
        if x > mean_u {
            x - 0.5
        } else if x < mean_u {
            x + 0.5
        } else {
            x
        }
    };
    let z = (cc(u_a) - mean_u) / sd;
    let norm = Normal::standard();
    let p_value = match alt {
        Alternative::TwoSided => 2.0 * norm.sf(z.abs()),
        Alternative::Greater => norm.sf(z),
        Alternative::Less => norm.cdf(z),
    };
    Ok(MannWhitneyResult {
        u: u_a,
        z,
        p_value: p_value.min(1.0),
        alternative: alt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_separated_samples_are_significant() {
        let a: Vec<f64> = (0..30).map(|i| 100.0 + i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 10.0 + i as f64).collect();
        let res = mann_whitney_u(&a, &b, Alternative::TwoSided).unwrap();
        // a stochastically dominates b: U should be maximal (na*nb).
        assert_eq!(res.u, 900.0);
        assert!(res.significant_at(0.001));
    }

    #[test]
    fn identical_distributions_not_significant() {
        let a: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
        let res = mann_whitney_u(&a, &a, Alternative::TwoSided).unwrap();
        assert!(res.z.abs() < 0.5);
        assert!(!res.significant_at(0.05));
    }

    #[test]
    fn u_statistics_sum_to_product() {
        let a = [3.0, 1.0, 7.0, 9.0];
        let b = [2.0, 8.0, 4.0];
        let u_a = mann_whitney_u(&a, &b, Alternative::TwoSided).unwrap().u;
        let u_b = mann_whitney_u(&b, &a, Alternative::TwoSided).unwrap().u;
        assert_eq!(u_a + u_b, (a.len() * b.len()) as f64);
    }

    #[test]
    fn hand_computed_small_example() {
        // a = [1, 2], b = [3, 4]: every b beats every a → U_a = 0.
        let res = mann_whitney_u(&[1.0, 2.0], &[3.0, 4.0], Alternative::TwoSided).unwrap();
        assert_eq!(res.u, 0.0);
        // a = [3, 4], b = [1, 2] → U_a = 4 = na*nb.
        let res = mann_whitney_u(&[3.0, 4.0], &[1.0, 2.0], Alternative::TwoSided).unwrap();
        assert_eq!(res.u, 4.0);
    }

    #[test]
    fn ties_use_mid_ranks() {
        // a = [1, 2], b = [2, 3]. Ranks: 1, (2.5, 2.5), 4.
        // rank_sum_a = 1 + 2.5 = 3.5 → U_a = 3.5 − 3 = 0.5.
        let res = mann_whitney_u(&[1.0, 2.0], &[2.0, 3.0], Alternative::TwoSided).unwrap();
        assert_eq!(res.u, 0.5);
    }

    #[test]
    fn all_identical_values_rejected() {
        let flat = [2.0, 2.0, 2.0];
        assert_eq!(
            mann_whitney_u(&flat, &flat, Alternative::TwoSided),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn empty_inputs_rejected() {
        assert_eq!(
            mann_whitney_u(&[], &[1.0], Alternative::TwoSided),
            Err(StatsError::EmptyInput)
        );
        assert_eq!(
            mann_whitney_u(&[1.0], &[], Alternative::TwoSided),
            Err(StatsError::EmptyInput)
        );
    }

    #[test]
    fn one_sided_alternatives_are_complementary_ish() {
        let a: Vec<f64> = (0..20).map(|i| 5.0 + i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..20).map(|i| 4.0 + i as f64 * 0.1).collect();
        let greater = mann_whitney_u(&a, &b, Alternative::Greater).unwrap();
        let less = mann_whitney_u(&a, &b, Alternative::Less).unwrap();
        assert!(greater.p_value < less.p_value);
    }
}
