//! Probability distributions and the special functions behind them.
//!
//! KEA reports Student t statistics for every production comparison
//! (t = 4.45 / 7.13 for the §5.2.2 roll-out, t = 40.4 / 27.1 for Table 4),
//! so the t distribution CDF — and therefore the regularized incomplete beta
//! function — is the workhorse of this crate. Everything is implemented from
//! scratch: Lanczos log-gamma, a Lentz continued fraction for the incomplete
//! beta, an erf-based normal CDF, and Acklam's normal quantile.

// kea-lint: allow-file(index-in-library) — fixed-size coefficient tables indexed by constant literals

use crate::error::StatsError;

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients; absolute error below 1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g=7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small/negative arguments.
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Computed with the modified Lentz continued-fraction algorithm, using the
/// symmetry `I_x(a,b) = 1 − I_{1−x}(b,a)` to stay in the rapidly converging
/// region.
///
/// # Errors
/// `a` and `b` must be positive and `x` in `[0, 1]`.
pub fn inc_beta(a: f64, b: f64, x: f64) -> Result<f64, StatsError> {
    if a <= 0.0 || b <= 0.0 {
        return Err(StatsError::InvalidParameter("beta parameters must be positive"));
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidParameter("inc_beta x must be in [0, 1]"));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    // kea-lint: allow(nan-unsafe-ordering) — exact boundary of the validated [0, 1] domain
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * beta_cf(a, b, x) / a)
    } else {
        Ok(1.0 - front * beta_cf(b, a, 1.0 - x) / b)
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-30;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function, using the Abramowitz & Stegun 7.1.26 rational
/// approximation refined with one extra term (max error ~1.5e-7, plenty for
/// p-value reporting; the t path goes through [`inc_beta`] and is far more
/// accurate).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal distribution (μ = 0, σ = 1) helpers, plus a general
/// normal via [`Normal::new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Standard normal.
    pub fn standard() -> Self {
        Normal { mean: 0.0, sd: 1.0 }
    }

    /// Normal with the given mean and standard deviation.
    ///
    /// # Errors
    /// `sd` must be positive and both parameters finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || !sd.is_finite() {
            return Err(StatsError::NonFiniteInput);
        }
        if sd <= 0.0 {
            return Err(StatsError::InvalidParameter("normal sd must be positive"));
        }
        Ok(Normal { mean, sd })
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-0.5 * z * z).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Survival function `1 − CDF(x)`.
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Inverse CDF (quantile) using Acklam's algorithm
    /// (relative error < 1.15e-9 over the open unit interval).
    ///
    /// # Errors
    /// `p` must be strictly inside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        // kea-lint: allow(nan-unsafe-ordering) — exact open-interval endpoint check after range validation
        if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 {
            return Err(StatsError::InvalidParameter("quantile p must be in (0, 1)"));
        }
        Ok(self.mean + self.sd * standard_normal_quantile(p))
    }
}

/// Acklam's rational approximation to the standard normal quantile.
fn standard_normal_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Student's t distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentsT {
    df: f64,
}

impl StudentsT {
    /// Creates a t distribution.
    ///
    /// # Errors
    /// `df` must be positive and finite.
    pub fn new(df: f64) -> Result<Self, StatsError> {
        if !df.is_finite() || df <= 0.0 {
            return Err(StatsError::InvalidParameter("t df must be positive"));
        }
        Ok(StudentsT { df })
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// CDF at `t`, via the regularized incomplete beta:
    /// `P(T ≤ t) = 1 − I_{ν/(ν+t²)}(ν/2, 1/2) / 2` for `t ≥ 0`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        let x = self.df / (self.df + t * t);
        // df > 0 by construction; a NaN t degrades to a NaN probability.
        let i = match inc_beta(self.df / 2.0, 0.5, x) {
            Ok(i) => i,
            Err(_) => return f64::NAN,
        };
        if t > 0.0 {
            1.0 - 0.5 * i
        } else {
            0.5 * i
        }
    }

    /// Survival function `P(T > t)`.
    pub fn sf(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// Two-sided p-value `P(|T| ≥ |t|)`.
    pub fn p_two_sided(&self, t: f64) -> f64 {
        let x = self.df / (self.df + t * t);
        // Same degrade-to-NaN policy as `cdf`.
        inc_beta(self.df / 2.0, 0.5, x).unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)! for integer n.
        for (n, fact) in [(1u32, 1.0f64), (2, 1.0), (3, 2.0), (4, 6.0), (5, 24.0), (6, 120.0)] {
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-10,
                "ln_gamma({n})"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        // Γ(3/2) = sqrt(pi)/2
        assert!((ln_gamma(1.5) - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-10);
    }

    #[test]
    fn inc_beta_boundaries() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn inc_beta_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((inc_beta(1.0, 1.0, x).unwrap() - x).abs() < 1e-12);
        }
    }

    #[test]
    fn inc_beta_symmetry() {
        // I_x(a, b) = 1 - I_{1-x}(b, a)
        let (a, b, x) = (2.5, 4.0, 0.3);
        let lhs = inc_beta(a, b, x).unwrap();
        let rhs = 1.0 - inc_beta(b, a, 1.0 - x).unwrap();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn inc_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.5}(2, 3) = 0.6875 (exact: 11/16).
        assert!((inc_beta(2.0, 2.0, 0.5).unwrap() - 0.5).abs() < 1e-12);
        assert!((inc_beta(2.0, 3.0, 0.5).unwrap() - 0.6875).abs() < 1e-12);
    }

    #[test]
    fn inc_beta_rejects_bad_params() {
        assert!(inc_beta(-1.0, 1.0, 0.5).is_err());
        assert!(inc_beta(1.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn erf_reference_points() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_reference_points() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((n.cdf(1.959_964) - 0.975).abs() < 1e-4);
        assert!((n.cdf(-1.644_854) - 0.05).abs() < 1e-4);
    }

    #[test]
    fn normal_pdf_peak() {
        let n = Normal::standard();
        assert!((n.pdf(0.0) - 0.398_942_28).abs() < 1e-7);
        let shifted = Normal::new(10.0, 2.0).unwrap();
        assert!((shifted.pdf(10.0) - 0.398_942_28 / 2.0).abs() < 1e-7);
    }

    #[test]
    fn normal_quantile_round_trip() {
        let n = Normal::standard();
        for p in [0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999] {
            let x = n.quantile(p).unwrap();
            assert!((n.cdf(x) - p).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn normal_quantile_rejects_boundaries() {
        let n = Normal::standard();
        assert!(n.quantile(0.0).is_err());
        assert!(n.quantile(1.0).is_err());
    }

    #[test]
    fn normal_rejects_bad_sd() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn t_cdf_reference_points() {
        // Values cross-checked against R's pt().
        let t10 = StudentsT::new(10.0).unwrap();
        assert!((t10.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((t10.cdf(1.812_461) - 0.95).abs() < 1e-5); // qt(0.95, 10)
        assert!((t10.cdf(2.228_139) - 0.975).abs() < 1e-5); // qt(0.975, 10)
        let t1 = StudentsT::new(1.0).unwrap();
        assert!((t1.cdf(1.0) - 0.75).abs() < 1e-9); // Cauchy: 1/2 + atan(1)/pi
    }

    #[test]
    fn t_two_sided_p_values() {
        let t = StudentsT::new(20.0).unwrap();
        // |t|=2.086 is the 97.5% point for df=20 → two-sided p ≈ 0.05.
        assert!((t.p_two_sided(2.085_963) - 0.05).abs() < 1e-5);
        // p is symmetric in the sign of t.
        assert!((t.p_two_sided(-2.5) - t.p_two_sided(2.5)).abs() < 1e-12);
    }

    #[test]
    fn t_converges_to_normal_for_large_df() {
        let t = StudentsT::new(10_000.0).unwrap();
        let n = Normal::standard();
        for x in [-2.0, -0.5, 0.0, 1.0, 2.5] {
            assert!((t.cdf(x) - n.cdf(x)).abs() < 1e-3, "x = {x}");
        }
    }

    #[test]
    fn t_rejects_bad_df() {
        assert!(StudentsT::new(0.0).is_err());
        assert!(StudentsT::new(-3.0).is_err());
        assert!(StudentsT::new(f64::NAN).is_err());
    }
}
