//! Seeded percentile bootstrap.
//!
//! The SKU-design application (§6.1) derives "a full distribution with
//! regard to α and β … based on each observation to capture the nature
//! variances and noises". The bootstrap is how we materialise such
//! distributions for arbitrary statistics without parametric assumptions,
//! and how flighting reports uncertainty bands on treatment effects.

use crate::describe::percentile_of_sorted;
use crate::error::{check_finite, StatsError};
use rand::Rng;

/// A percentile-bootstrap confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate: the statistic on the original sample.
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level, e.g. 0.95.
    pub confidence: f64,
    /// Number of bootstrap resamples drawn.
    pub resamples: usize,
}

impl BootstrapCi {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        self.lower <= value && value <= self.upper
    }
}

/// Percentile-bootstrap confidence interval for `statistic(data)`.
///
/// Resampling uses the supplied RNG so experiments are reproducible from a
/// seed. `confidence` is e.g. `0.95` for a 95% interval.
///
/// # Errors
/// The sample must be non-empty and finite, `resamples` positive, and
/// `confidence` strictly inside `(0, 1)`. Statistics returning non-finite
/// values on some resample yield [`StatsError::NonFiniteInput`].
pub fn bootstrap_ci<F, R>(
    data: &[f64],
    statistic: F,
    resamples: usize,
    confidence: f64,
    rng: &mut R,
) -> Result<BootstrapCi, StatsError>
where
    F: Fn(&[f64]) -> f64,
    R: Rng + ?Sized,
{
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    check_finite(data)?;
    if resamples == 0 {
        return Err(StatsError::InvalidParameter("resamples must be positive"));
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidParameter("confidence must be in (0, 1)"));
    }

    let estimate = statistic(data);
    if !estimate.is_finite() {
        return Err(StatsError::NonFiniteInput);
    }

    let mut resample = vec![0.0; data.len()];
    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = data[rng.gen_range(0..data.len())]; // kea-lint: allow(index-in-library) — gen_range(0..len) is in bounds
        }
        let s = statistic(&resample);
        if !s.is_finite() {
            return Err(StatsError::NonFiniteInput);
        }
        stats.push(s);
    }
    stats.sort_by(f64::total_cmp);

    let alpha = 1.0 - confidence;
    let lower = percentile_of_sorted(&stats, 100.0 * alpha / 2.0);
    let upper = percentile_of_sorted(&stats, 100.0 * (1.0 - alpha / 2.0));
    Ok(BootstrapCi {
        estimate,
        lower,
        upper,
        confidence,
        resamples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::mean;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(data: &[f64]) -> f64 {
        mean(data).expect("non-empty finite data")
    }

    #[test]
    fn ci_brackets_the_point_estimate() {
        let data: Vec<f64> = (0..200).map(|i| (i % 13) as f64).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let ci = bootstrap_ci(&data, sample_mean, 500, 0.95, &mut rng).unwrap();
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
        assert!(ci.contains(ci.estimate));
        assert!(ci.width() > 0.0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let a = bootstrap_ci(
            &data,
            sample_mean,
            300,
            0.9,
            &mut StdRng::seed_from_u64(42),
        )
        .unwrap();
        let b = bootstrap_ci(
            &data,
            sample_mean,
            300,
            0.9,
            &mut StdRng::seed_from_u64(42),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn higher_confidence_gives_wider_interval() {
        let data: Vec<f64> = (0..150).map(|i| ((i * 31) % 97) as f64).collect();
        let narrow = bootstrap_ci(
            &data,
            sample_mean,
            800,
            0.80,
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let wide = bootstrap_ci(
            &data,
            sample_mean,
            800,
            0.99,
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        assert!(wide.width() > narrow.width());
    }

    #[test]
    fn ci_of_constant_sample_is_degenerate() {
        let data = vec![3.5; 50];
        let ci = bootstrap_ci(
            &data,
            sample_mean,
            100,
            0.95,
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        assert_eq!(ci.lower, 3.5);
        assert_eq!(ci.upper, 3.5);
        assert_eq!(ci.estimate, 3.5);
    }

    #[test]
    fn rejects_bad_parameters() {
        let data = [1.0, 2.0];
        let mut rng = StdRng::seed_from_u64(0);
        assert!(bootstrap_ci(&[], sample_mean, 10, 0.95, &mut rng).is_err());
        assert!(bootstrap_ci(&data, sample_mean, 0, 0.95, &mut rng).is_err());
        assert!(bootstrap_ci(&data, sample_mean, 10, 1.0, &mut rng).is_err());
        assert!(bootstrap_ci(&data, sample_mean, 10, 0.0, &mut rng).is_err());
    }

    #[test]
    fn works_with_percentile_statistics() {
        // Bootstrap of a median — the kind of robust statistic KEA prefers.
        let data: Vec<f64> = (0..99).map(|i| i as f64).collect();
        let ci = bootstrap_ci(
            &data,
            |d| crate::describe::median(d).expect("non-empty finite data"),
            400,
            0.95,
            &mut StdRng::seed_from_u64(11),
        )
        .unwrap();
        assert!(ci.contains(49.0));
    }
}
