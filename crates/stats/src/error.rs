//! Error type shared by all statistical routines.

use std::fmt;

/// Errors returned by statistical routines in this crate.
///
/// Every fallible function in `kea-stats` returns `Result<_, StatsError>`;
/// panics are reserved for internal invariant violations.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input sample was empty but the statistic requires at least one
    /// observation.
    EmptyInput,
    /// The input sample was too small for the requested statistic (e.g. a
    /// variance over a single point). Carries the minimum required size.
    InsufficientData {
        /// Minimum number of observations required.
        required: usize,
        /// Number of observations actually provided.
        actual: usize,
    },
    /// A parameter was outside its mathematical domain (e.g. a percentile
    /// outside `[0, 100]`, a non-positive degrees-of-freedom).
    InvalidParameter(&'static str),
    /// The input contained a non-finite value (NaN or infinity).
    NonFiniteInput,
    /// Both samples had zero variance so the test statistic is undefined.
    ZeroVariance,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input sample is empty"),
            StatsError::InsufficientData { required, actual } => write!(
                f,
                "insufficient data: need at least {required} observations, got {actual}"
            ),
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StatsError::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
            StatsError::ZeroVariance => {
                write!(f, "samples have zero variance; test statistic undefined")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Validates that every value in `data` is finite.
pub(crate) fn check_finite(data: &[f64]) -> Result<(), StatsError> {
    if data.iter().any(|v| !v.is_finite()) {
        Err(StatsError::NonFiniteInput)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(StatsError::EmptyInput.to_string(), "input sample is empty");
        assert!(StatsError::InsufficientData {
            required: 2,
            actual: 1
        }
        .to_string()
        .contains("at least 2"));
        assert!(StatsError::InvalidParameter("df must be positive")
            .to_string()
            .contains("df must be positive"));
    }

    #[test]
    fn check_finite_accepts_normal_data() {
        assert!(check_finite(&[1.0, -2.5, 0.0]).is_ok());
    }

    #[test]
    fn check_finite_rejects_nan_and_inf() {
        assert_eq!(
            check_finite(&[1.0, f64::NAN]),
            Err(StatsError::NonFiniteInput)
        );
        assert_eq!(
            check_finite(&[f64::INFINITY]),
            Err(StatsError::NonFiniteInput)
        );
    }
}
