//! Student's t-tests.
//!
//! KEA validates every flighting round and production roll-out with t-tests
//! (§5.2.2 reports t = 4.45 and 7.13 for the YARN roll-out; Table 4 reports
//! t = 40.4 and 27.1 for SC1 vs SC2). We implement the one-sample test, the
//! classical pooled two-sample test, and Welch's unequal-variance test; the
//! Experiment Module defaults to Welch because machine groups with different
//! SKUs rarely share a variance.

use crate::describe::Welford;
use crate::dist::StudentsT;
use crate::error::{check_finite, StatsError};

/// Sidedness of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alternative {
    /// H1: the means differ (default in the paper's analyses).
    TwoSided,
    /// H1: mean of the first sample (or the sample vs μ0) is greater.
    Greater,
    /// H1: mean of the first sample is less.
    Less,
}

/// Result of a t-test.
#[derive(Debug, Clone, PartialEq)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (possibly fractional for Welch).
    pub df: f64,
    /// p-value under the chosen [`Alternative`].
    pub p_value: f64,
    /// Difference in means: `mean(a) − mean(b)` (or `mean − μ0`).
    pub mean_diff: f64,
    /// Standard error of the mean difference.
    pub std_err: f64,
    /// Which alternative hypothesis was tested.
    pub alternative: Alternative,
}

impl TTestResult {
    /// Convenience: is the result significant at level `alpha`?
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    /// Confidence interval for the mean difference at level `1 − alpha`
    /// (two-sided, regardless of the test's alternative).
    ///
    /// # Errors
    /// `alpha` must be in `(0, 1)`.
    pub fn confidence_interval(&self, alpha: f64) -> Result<(f64, f64), StatsError> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(StatsError::InvalidParameter("alpha must be in (0, 1)"));
        }
        let dist = StudentsT::new(self.df)?;
        // Invert the CDF by bisection: accurate enough for reporting and
        // avoids implementing an inverse incomplete beta.
        let target = 1.0 - alpha / 2.0;
        let (mut lo, mut hi) = (0.0, 1e6);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if dist.cdf(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let crit = 0.5 * (lo + hi);
        Ok((
            self.mean_diff - crit * self.std_err,
            self.mean_diff + crit * self.std_err,
        ))
    }
}

fn finish(t: f64, df: f64, mean_diff: f64, std_err: f64, alt: Alternative) -> TTestResult {
    // df > 0 is validated by every caller; an invalid df degrades to a
    // NaN p-value (treated as "no evidence") instead of aborting.
    let p_value = match StudentsT::new(df) {
        Ok(dist) => match alt {
            Alternative::TwoSided => dist.p_two_sided(t),
            Alternative::Greater => dist.sf(t),
            Alternative::Less => dist.cdf(t),
        },
        Err(_) => f64::NAN,
    };
    TTestResult {
        t,
        df,
        p_value,
        mean_diff,
        std_err,
        alternative: alt,
    }
}

fn moments(data: &[f64]) -> Result<(f64, f64, f64), StatsError> {
    if data.len() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            actual: data.len(),
        });
    }
    check_finite(data)?;
    let mut acc = Welford::new();
    for &v in data {
        acc.push(v);
    }
    Ok((acc.mean(), acc.sample_variance(), data.len() as f64))
}

/// One-sample t-test of `H0: mean(data) == mu0`.
///
/// # Errors
/// Needs at least two finite observations with non-zero variance.
pub fn t_test_one_sample(
    data: &[f64],
    mu0: f64,
    alt: Alternative,
) -> Result<TTestResult, StatsError> {
    let (m, var, n) = moments(data)?;
    if var == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let std_err = (var / n).sqrt();
    let t = (m - mu0) / std_err;
    Ok(finish(t, n - 1.0, m - mu0, std_err, alt))
}

/// Classical pooled two-sample t-test (assumes equal variances).
///
/// # Errors
/// Each sample needs at least two finite observations, and the pooled
/// variance must be non-zero.
pub fn t_test_pooled(a: &[f64], b: &[f64], alt: Alternative) -> Result<TTestResult, StatsError> {
    let (ma, va, na) = moments(a)?;
    let (mb, vb, nb) = moments(b)?;
    let df = na + nb - 2.0;
    let pooled = ((na - 1.0) * va + (nb - 1.0) * vb) / df;
    if pooled == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let std_err = (pooled * (1.0 / na + 1.0 / nb)).sqrt();
    let t = (ma - mb) / std_err;
    Ok(finish(t, df, ma - mb, std_err, alt))
}

/// Welch's unequal-variance two-sample t-test with the
/// Welch–Satterthwaite degrees of freedom. This is the default test used by
/// KEA's Experiment Module.
///
/// # Errors
/// Each sample needs at least two finite observations, and at least one
/// sample must have non-zero variance.
pub fn t_test_welch(a: &[f64], b: &[f64], alt: Alternative) -> Result<TTestResult, StatsError> {
    let (ma, va, na) = moments(a)?;
    let (mb, vb, nb) = moments(b)?;
    let se2a = va / na;
    let se2b = vb / nb;
    let se2 = se2a + se2b;
    if se2 == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let std_err = se2.sqrt();
    let t = (ma - mb) / std_err;
    let df = se2 * se2 / (se2a * se2a / (na - 1.0) + se2b * se2b / (nb - 1.0));
    Ok(finish(t, df, ma - mb, std_err, alt))
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 10] = [30.02, 29.99, 30.11, 29.97, 30.01, 29.99, 30.05, 30.10, 29.95, 30.03];
    const B: [f64; 10] = [29.89, 29.93, 29.72, 29.98, 30.02, 29.98, 29.87, 29.90, 29.95, 29.97];

    #[test]
    fn welch_matches_reference() {
        // Reference values computed independently (Welch formulas + numeric
        // t-distribution integration): t = 3.20729, df = 15.023, p = 0.005866.
        let res = t_test_welch(&A, &B, Alternative::TwoSided).unwrap();
        assert!((res.t - 3.20729).abs() < 1e-4, "t = {}", res.t);
        assert!((res.df - 15.023).abs() < 0.01, "df = {}", res.df);
        assert!((res.p_value - 0.005866).abs() < 1e-5, "p = {}", res.p_value);
        assert!(res.significant_at(0.05));
    }

    #[test]
    fn pooled_matches_reference() {
        // Equal sample sizes make the pooled t equal to the Welch t;
        // df = 18, p = 0.0048836.
        let res = t_test_pooled(&A, &B, Alternative::TwoSided).unwrap();
        assert!((res.t - 3.20729).abs() < 1e-4);
        assert_eq!(res.df, 18.0);
        assert!((res.p_value - 0.0048836).abs() < 1e-5);
    }

    #[test]
    fn one_sample_reference() {
        // t = 1.32638, df = 9, p = 0.217384.
        let res = t_test_one_sample(&A, 30.0, Alternative::TwoSided).unwrap();
        assert!((res.t - 1.32638).abs() < 1e-4, "t = {}", res.t);
        assert!((res.p_value - 0.217384).abs() < 1e-5);
        assert_eq!(res.df, 9.0);
    }

    #[test]
    fn identical_samples_give_t_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let res = t_test_welch(&x, &x, Alternative::TwoSided).unwrap();
        assert!(res.t.abs() < 1e-12);
        assert!((res.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_sided_p_is_half_of_two_sided_for_positive_t() {
        let two = t_test_welch(&A, &B, Alternative::TwoSided).unwrap();
        let greater = t_test_welch(&A, &B, Alternative::Greater).unwrap();
        let less = t_test_welch(&A, &B, Alternative::Less).unwrap();
        assert!((greater.p_value - two.p_value / 2.0).abs() < 1e-9);
        assert!((greater.p_value + less.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn swapping_samples_flips_sign() {
        let ab = t_test_welch(&A, &B, Alternative::TwoSided).unwrap();
        let ba = t_test_welch(&B, &A, Alternative::TwoSided).unwrap();
        assert!((ab.t + ba.t).abs() < 1e-12);
        assert!((ab.p_value - ba.p_value).abs() < 1e-12);
        assert!((ab.mean_diff + ba.mean_diff).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_rejected() {
        let flat = [5.0, 5.0, 5.0];
        assert_eq!(
            t_test_welch(&flat, &flat, Alternative::TwoSided),
            Err(StatsError::ZeroVariance)
        );
        assert_eq!(
            t_test_one_sample(&flat, 5.0, Alternative::TwoSided),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn too_small_samples_rejected() {
        assert!(matches!(
            t_test_welch(&[1.0], &[1.0, 2.0], Alternative::TwoSided),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn confidence_interval_contains_mean_diff() {
        let res = t_test_welch(&A, &B, Alternative::TwoSided).unwrap();
        let (lo, hi) = res.confidence_interval(0.05).unwrap();
        assert!(lo < res.mean_diff && res.mean_diff < hi);
        // Significant at 5% ⟺ CI excludes zero.
        assert!(lo > 0.0);
    }

    #[test]
    fn confidence_interval_invalid_alpha() {
        let res = t_test_welch(&A, &B, Alternative::TwoSided).unwrap();
        assert!(res.confidence_interval(0.0).is_err());
        assert!(res.confidence_interval(1.0).is_err());
    }

    #[test]
    fn nan_input_rejected() {
        assert_eq!(
            t_test_welch(&[1.0, f64::NAN, 2.0], &B, Alternative::TwoSided),
            Err(StatsError::NonFiniteInput)
        );
    }

    #[test]
    fn large_separation_gives_large_t() {
        // The paper reports t-values as large as 40.4 (Table 4); ensure the
        // p-value machinery stays finite and monotone out there.
        let a: Vec<f64> = (0..200).map(|i| 100.0 + (i % 7) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..200).map(|i| 90.0 + (i % 7) as f64 * 0.1).collect();
        let res = t_test_welch(&a, &b, Alternative::TwoSided).unwrap();
        assert!(res.t > 30.0);
        assert!(res.p_value >= 0.0 && res.p_value < 1e-10);
    }
}
