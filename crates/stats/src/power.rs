//! Statistical power analysis for experiment sizing.
//!
//! §7: "To have statistical significance, we also want to have a
//! relatively large sample size" — the paper picked 120 machines per arm
//! for power capping and ~700 per group for SC selection. This module
//! makes that choice quantitative: given the metric's noise, how many
//! samples does a two-sample comparison need to detect a given effect,
//! and conversely, what is the smallest effect a given design can see?
//!
//! Normal-approximation formulas (the sample sizes involved are far past
//! the small-sample regime where exact t computations matter):
//! `n = 2·(z_{1−α/2} + z_{power})²·(σ/δ)²` per group.

use crate::dist::Normal;
use crate::error::StatsError;

fn z(p: f64) -> Result<f64, StatsError> {
    Normal::standard().quantile(p)
}

fn validate(alpha: f64, power: f64) -> Result<(), StatsError> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidParameter("alpha must be in (0, 1)"));
    }
    if !(power > 0.0 && power < 1.0) {
        return Err(StatsError::InvalidParameter("power must be in (0, 1)"));
    }
    if power <= alpha {
        return Err(StatsError::InvalidParameter(
            "power must exceed alpha for a meaningful design",
        ));
    }
    Ok(())
}

/// Required sample size **per group** for a two-sided two-sample test to
/// detect an absolute mean difference `effect` against noise `sd`, at
/// significance `alpha` with the given `power`.
///
/// ```
/// use kea_stats::required_n_two_sample;
/// // The classic half-sigma effect at 5%/80%: ~63 per group.
/// let n = required_n_two_sample(0.5, 1.0, 0.05, 0.8).unwrap();
/// assert!((62..=64).contains(&n));
/// ```
///
/// # Errors
/// `effect` and `sd` must be positive and finite; `alpha`/`power` in
/// `(0, 1)` with `power > alpha`.
pub fn required_n_two_sample(
    effect: f64,
    sd: f64,
    alpha: f64,
    power: f64,
) -> Result<usize, StatsError> {
    validate(alpha, power)?;
    if !(effect > 0.0 && effect.is_finite()) {
        return Err(StatsError::InvalidParameter("effect must be positive"));
    }
    if !(sd > 0.0 && sd.is_finite()) {
        return Err(StatsError::InvalidParameter("sd must be positive"));
    }
    let za = z(1.0 - alpha / 2.0)?;
    let zb = z(power)?;
    let ratio = sd / effect;
    let n = 2.0 * (za + zb) * (za + zb) * ratio * ratio;
    Ok(n.ceil().max(2.0) as usize)
}

/// Minimum detectable absolute effect for a two-sided two-sample test
/// with `n` samples per group and noise `sd`.
///
/// # Errors
/// `n ≥ 2`, positive finite `sd`, valid `alpha`/`power`.
pub fn minimum_detectable_effect(
    n: usize,
    sd: f64,
    alpha: f64,
    power: f64,
) -> Result<f64, StatsError> {
    validate(alpha, power)?;
    if n < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            actual: n,
        });
    }
    if !(sd > 0.0 && sd.is_finite()) {
        return Err(StatsError::InvalidParameter("sd must be positive"));
    }
    let za = z(1.0 - alpha / 2.0)?;
    let zb = z(power)?;
    Ok((za + zb) * sd * (2.0 / n as f64).sqrt())
}

/// Achieved power of a two-sided two-sample test for a true absolute
/// effect `effect`, noise `sd`, and `n` samples per group.
///
/// # Errors
/// Same domain requirements as [`minimum_detectable_effect`].
pub fn achieved_power(n: usize, effect: f64, sd: f64, alpha: f64) -> Result<f64, StatsError> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidParameter("alpha must be in (0, 1)"));
    }
    if n < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            actual: n,
        });
    }
    if !(effect > 0.0 && effect.is_finite() && sd > 0.0 && sd.is_finite()) {
        return Err(StatsError::InvalidParameter(
            "effect and sd must be positive",
        ));
    }
    let za = z(1.0 - alpha / 2.0)?;
    let ncp = effect / (sd * (2.0 / n as f64).sqrt());
    Ok(Normal::standard().cdf(ncp - za))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_sample_size() {
        // Detect a 0.5·σ effect at α = 0.05, power 0.8: the classic
        // answer is n ≈ 63 per group (2·(1.96+0.8416)²·4 = 62.8).
        let n = required_n_two_sample(0.5, 1.0, 0.05, 0.8).unwrap();
        assert!((62..=64).contains(&n), "n = {n}");
    }

    #[test]
    fn paper_scale_designs_have_power() {
        // Table 4 detected a ~10% change with σ/μ ≈ 50% noise on ~700
        // machines × 5 days of machine-days. Even per-machine (n = 700),
        // the design is overwhelmingly powered.
        let p = achieved_power(700, 0.10, 0.50, 0.05).unwrap();
        assert!(p > 0.95, "power = {p}");
        // And 120 machines per arm (power capping) detects ~15% effects.
        let mde = minimum_detectable_effect(120, 0.50, 0.05, 0.8).unwrap();
        assert!(mde < 0.20, "mde = {mde}");
    }

    #[test]
    fn round_trips_are_consistent() {
        // required_n(mde(n)) ≈ n.
        let sd = 2.5;
        for n in [30usize, 100, 1000] {
            let mde = minimum_detectable_effect(n, sd, 0.05, 0.8).unwrap();
            let back = required_n_two_sample(mde, sd, 0.05, 0.8).unwrap();
            let diff = back as i64 - n as i64;
            assert!(diff.abs() <= 1, "n = {n}, back = {back}");
        }
    }

    #[test]
    fn power_increases_with_n_and_effect() {
        let p_small = achieved_power(20, 0.1, 1.0, 0.05).unwrap();
        let p_big_n = achieved_power(2000, 0.1, 1.0, 0.05).unwrap();
        let p_big_eff = achieved_power(20, 1.0, 1.0, 0.05).unwrap();
        assert!(p_big_n > p_small);
        assert!(p_big_eff > p_small);
        assert!((0.0..=1.0).contains(&p_small));
    }

    #[test]
    fn mde_at_alpha_equals_power_boundary() {
        // With the true effect exactly at the MDE, achieved power equals
        // the design power (up to normal-approximation rounding).
        let sd = 1.7;
        let n = 250;
        let mde = minimum_detectable_effect(n, sd, 0.05, 0.8).unwrap();
        let p = achieved_power(n, mde, sd, 0.05).unwrap();
        assert!((p - 0.8).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn domain_validation() {
        assert!(required_n_two_sample(0.0, 1.0, 0.05, 0.8).is_err());
        assert!(required_n_two_sample(1.0, -1.0, 0.05, 0.8).is_err());
        assert!(required_n_two_sample(1.0, 1.0, 0.0, 0.8).is_err());
        assert!(required_n_two_sample(1.0, 1.0, 0.05, 0.04).is_err());
        assert!(minimum_detectable_effect(1, 1.0, 0.05, 0.8).is_err());
        assert!(achieved_power(2, f64::INFINITY, 1.0, 0.05).is_err());
    }
}
