//! Cluster configuration and time-windowed overrides (flighting).
//!
//! KEA tunes *cluster-wide, per-group* configuration (§2), and deploys
//! candidate values to machine subsets through the flighting tool: "users
//! can specify the machine names and the starting/ending time of each
//! flighting" (§4.1). [`MachineConfig`] is the tunable surface,
//! [`ConfigPatch`] a partial override, and [`ConfigPlan`] the composition
//! of per-SKU baselines with a list of [`Flight`]s.

use crate::cluster::Machine;
use kea_telemetry::{MachineId, ScId, SkuId};
use std::collections::{BTreeMap, BTreeSet};

/// Execution knobs for the fleet-scale engine — *how* a scenario runs,
/// orthogonal to *what* is simulated (which stays in `SimConfig`, so the
/// simulated system is bit-identical under every `ExecConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker-thread budget. `1` (the default) runs a single global
    /// scheduling domain with exactly the reference engine's semantics.
    /// `0` or `>= 2` federates scheduling per sub-cluster and runs
    /// `min(shards, sub-clusters)` scoped workers over the domains (`0`
    /// means "one worker per sub-cluster"). Output is invariant in the
    /// worker count: domains are deterministic given the cluster, and
    /// results merge in domain order.
    pub shards: usize,
    /// Telemetry flush cadence in simulated hours: completed machine-hours
    /// stream into the output store once per window instead of
    /// materializing the whole run, bounding memory at fleet scale.
    /// `0` is treated as 1.
    pub emit_window_hours: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            shards: 1,
            emit_window_hours: 24,
        }
    }
}

/// The per-machine tunable configuration — the knobs of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// YARN `max_num_running_containers` (application 1).
    pub max_running_containers: u32,
    /// Power cap as a fraction below the provisioned level: 0.10 caps at
    /// 90% of provisioned power; 0.0 disables capping (application 3).
    pub power_cap_fraction: f64,
    /// Processor acceleration feature flag ("Feature" in §7.2).
    pub feature_on: bool,
    /// Software configuration (application 4).
    pub sc: ScId,
    /// Maximum low-priority containers queued per machine (the §5.3
    /// extension knob). `u32::MAX` disables the cap (the baseline).
    pub max_queue_length: u32,
}

/// A partial configuration override; `None` fields inherit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConfigPatch {
    /// Override for `max_running_containers`.
    pub max_running_containers: Option<u32>,
    /// Override for `power_cap_fraction`.
    pub power_cap_fraction: Option<f64>,
    /// Override for `feature_on`.
    pub feature_on: Option<bool>,
    /// Override for the software configuration.
    pub sc: Option<ScId>,
    /// Override for `max_queue_length`.
    pub max_queue_length: Option<u32>,
}

impl ConfigPatch {
    /// Applies this patch on top of `base`.
    pub fn apply(&self, base: MachineConfig) -> MachineConfig {
        MachineConfig {
            max_running_containers: self
                .max_running_containers
                .unwrap_or(base.max_running_containers),
            power_cap_fraction: self.power_cap_fraction.unwrap_or(base.power_cap_fraction),
            feature_on: self.feature_on.unwrap_or(base.feature_on),
            sc: self.sc.unwrap_or(base.sc),
            max_queue_length: self.max_queue_length.unwrap_or(base.max_queue_length),
        }
    }

    /// True when the patch overrides nothing.
    pub fn is_empty(&self) -> bool {
        *self == ConfigPatch::default()
    }
}

/// A flighting deployment: a patch applied to a set of machines during
/// `[start_hour, end_hour)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Flight {
    /// Human-readable label for reports.
    pub label: String,
    /// Target machines.
    pub machines: BTreeSet<MachineId>,
    /// First hour (inclusive) the patch is live.
    pub start_hour: u64,
    /// First hour (exclusive) after the patch ends.
    pub end_hour: u64,
    /// The configuration override.
    pub patch: ConfigPatch,
}

impl Flight {
    /// Whether the flight is live at simulation time `hour`.
    pub fn active_at(&self, hour: f64) -> bool {
        hour >= self.start_hour as f64 && hour < self.end_hour as f64
    }
}

/// The full configuration plan for a simulation run: per-SKU baselines
/// plus flights. Later flights win when several target the same machine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConfigPlan {
    /// Baseline config per SKU.
    pub base: BTreeMap<SkuId, MachineConfig>,
    /// Time-windowed overrides, applied in order.
    pub flights: Vec<Flight>,
}

impl ConfigPlan {
    /// The manual-tuning baseline: every SKU at its
    /// `default_max_containers`, no power cap, Feature off, SC1 — the
    /// pre-KEA production state.
    pub fn baseline(skus: &[crate::catalog::SkuSpec], sc: ScId) -> Self {
        let base = skus
            .iter()
            .map(|s| {
                (
                    s.id,
                    MachineConfig {
                        max_running_containers: s.default_max_containers,
                        power_cap_fraction: 0.0,
                        feature_on: false,
                        sc,
                        max_queue_length: u32::MAX,
                    },
                )
            })
            .collect();
        ConfigPlan {
            base,
            flights: Vec::new(),
        }
    }

    /// Sets the baseline `max_running_containers` for one SKU.
    ///
    /// # Panics
    /// The SKU must exist in the plan.
    pub fn set_max_containers(&mut self, sku: SkuId, max: u32) {
        self.base
            .get_mut(&sku)
            // kea-lint: allow(panic-in-library) — documented `# Panics` contract; plans are built from the same catalog
            .expect("SKU present in plan")
            .max_running_containers = max;
    }

    /// Adds a flight.
    pub fn add_flight(&mut self, flight: Flight) {
        self.flights.push(flight);
    }

    /// Resolves the effective configuration of `machine` (of `sku`) at
    /// simulation time `hour` (fractional hours are fine).
    ///
    /// # Panics
    /// The SKU must exist in the plan.
    pub fn effective(&self, machine: MachineId, sku: SkuId, hour: f64) -> MachineConfig {
        // kea-lint: allow(panic-in-library) — documented `# Panics` contract; engine validates SKUs at construction
        let mut cfg = *self.base.get(&sku).expect("SKU present in plan");
        for flight in &self.flights {
            if flight.active_at(hour) && flight.machines.contains(&machine) {
                cfg = flight.patch.apply(cfg);
            }
        }
        cfg
    }
}

/// Defensive value for out-of-range lookups in [`ResolvedPlan`]; never
/// reached when the plan was resolved against the machine set in use.
const FALLBACK_CONFIG: MachineConfig = MachineConfig {
    max_running_containers: 1,
    power_cap_fraction: 0.0,
    feature_on: false,
    sc: ScId(1),
    max_queue_length: u32::MAX,
};

/// A [`ConfigPlan`] resolved against a fixed machine set and horizon.
///
/// [`ConfigPlan::effective`] is a BTreeMap lookup plus a linear flight
/// scan — fine per telemetry row, ruinous on the event hot path where the
/// engine needs the machine's configuration at every placement, start,
/// and finish. Flights activate and end on integer hour boundaries, so
/// the effective configuration is piecewise-constant per machine-hour;
/// this resolver interns the few distinct [`MachineConfig`] values and
/// tabulates, per machine position, either one constant index (machines
/// in no flight — the overwhelming majority) or a dense per-hour index
/// table. Lookup is then two array reads.
#[derive(Debug, Clone)]
pub struct ResolvedPlan {
    /// The distinct configurations that occur anywhere in the run.
    configs: Vec<MachineConfig>,
    /// Per machine position: index into `configs` when the machine is in
    /// no flight (constant over the whole run).
    base_idx: Vec<u32>,
    /// Per machine position: `Some` per-hour index table (length
    /// `hours + 1`) for machines targeted by at least one flight.
    overrides: Vec<Option<Box<[u32]>>>,
    /// Simulation horizon the tables were built for.
    hours: u64,
}

/// Interns `cfg` into `configs`, returning its index. The distinct-config
/// population is tiny (per-SKU baselines plus flight variants), so a
/// linear scan beats any hashing.
fn intern_config(configs: &mut Vec<MachineConfig>, cfg: MachineConfig) -> u32 {
    if let Some(i) = configs.iter().position(|c| *c == cfg) {
        return i as u32;
    }
    configs.push(cfg);
    (configs.len() - 1) as u32
}

impl ResolvedPlan {
    /// Resolves `plan` for `machines` over `[0, duration_hours]`.
    ///
    /// # Panics
    /// Propagates [`ConfigPlan::effective`]'s contract: every machine's
    /// SKU must exist in the plan.
    pub fn resolve(plan: &ConfigPlan, machines: &[Machine], duration_hours: u64) -> Self {
        let mut configs = Vec::new();
        let mut base_idx = Vec::with_capacity(machines.len());
        let mut overrides = Vec::with_capacity(machines.len());
        for m in machines {
            let in_flight = plan.flights.iter().any(|f| f.machines.contains(&m.id));
            if in_flight {
                let tab: Box<[u32]> = (0..=duration_hours)
                    .map(|h| {
                        intern_config(&mut configs, plan.effective(m.id, m.sku, h as f64))
                    })
                    .collect();
                // The base slot still needs a valid value; hour 0 serves.
                base_idx.push(tab.first().copied().unwrap_or(0));
                overrides.push(Some(tab));
            } else {
                // No flight targets this machine, so `effective` is the
                // per-SKU baseline at every hour.
                base_idx.push(intern_config(&mut configs, plan.effective(m.id, m.sku, 0.0)));
                overrides.push(None);
            }
        }
        ResolvedPlan {
            configs,
            base_idx,
            overrides,
            hours: duration_hours,
        }
    }

    /// The distinct configurations; `config_index` values index this.
    pub fn configs(&self) -> &[MachineConfig] {
        &self.configs
    }

    /// Index (into [`Self::configs`]) of machine position `m`'s effective
    /// configuration during hour `hour`.
    pub fn config_index(&self, m: usize, hour: u64) -> u32 {
        if let Some(Some(tab)) = self.overrides.get(m) {
            let h = hour.min(self.hours) as usize;
            if let Some(i) = tab.get(h) {
                return *i;
            }
        }
        self.base_idx.get(m).copied().unwrap_or(0)
    }

    /// Effective configuration of machine position `m` during hour `hour`.
    pub fn config_at(&self, m: usize, hour: u64) -> MachineConfig {
        let idx = self.config_index(m, hour) as usize;
        self.configs.get(idx).copied().unwrap_or(FALLBACK_CONFIG)
    }

    /// True when machine position `m` is targeted by any flight (its
    /// configuration may change between hours).
    pub fn is_flighted(&self, m: usize) -> bool {
        matches!(self.overrides.get(m), Some(Some(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{default_skus, SC1, SC2};

    fn plan() -> ConfigPlan {
        ConfigPlan::baseline(&default_skus(50), SC1)
    }

    #[test]
    fn baseline_uses_manual_defaults() {
        let skus = default_skus(50);
        let p = ConfigPlan::baseline(&skus, SC1);
        for sku in &skus {
            let cfg = p.effective(MachineId(0), sku.id, 0.0);
            assert_eq!(cfg.max_running_containers, sku.default_max_containers);
            assert_eq!(cfg.power_cap_fraction, 0.0);
            assert!(!cfg.feature_on);
            assert_eq!(cfg.sc, SC1);
        }
    }

    #[test]
    fn patch_apply_overrides_only_set_fields() {
        let base = MachineConfig {
            max_running_containers: 10,
            power_cap_fraction: 0.0,
            feature_on: false,
            sc: SC1,
            max_queue_length: u32::MAX,
        };
        let patch = ConfigPatch {
            max_running_containers: Some(12),
            sc: Some(SC2),
            ..Default::default()
        };
        let out = patch.apply(base);
        assert_eq!(out.max_running_containers, 12);
        assert_eq!(out.sc, SC2);
        assert_eq!(out.power_cap_fraction, 0.0);
        assert!(!out.feature_on);
        assert!(ConfigPatch::default().is_empty());
        assert!(!patch.is_empty());
    }

    #[test]
    fn flight_window_respected() {
        let mut p = plan();
        let sku = SkuId(0);
        p.add_flight(Flight {
            label: "pilot".to_string(),
            machines: [MachineId(0)].into_iter().collect(),
            start_hour: 24,
            end_hour: 48,
            patch: ConfigPatch {
                max_running_containers: Some(99),
                ..Default::default()
            },
        });
        assert_ne!(
            p.effective(MachineId(0), sku, 23.9).max_running_containers,
            99
        );
        assert_eq!(
            p.effective(MachineId(0), sku, 24.0).max_running_containers,
            99
        );
        assert_eq!(
            p.effective(MachineId(0), sku, 47.9).max_running_containers,
            99
        );
        assert_ne!(
            p.effective(MachineId(0), sku, 48.0).max_running_containers,
            99
        );
        // Non-target machine unaffected.
        assert_ne!(
            p.effective(MachineId(1), sku, 30.0).max_running_containers,
            99
        );
    }

    #[test]
    fn later_flights_win() {
        let mut p = plan();
        let m: BTreeSet<MachineId> = [MachineId(5)].into_iter().collect();
        for (i, v) in [(0u64, 20u32), (0, 30)] {
            p.add_flight(Flight {
                label: format!("f{i}"),
                machines: m.clone(),
                start_hour: 0,
                end_hour: 100,
                patch: ConfigPatch {
                    max_running_containers: Some(v),
                    ..Default::default()
                },
            });
        }
        assert_eq!(
            p.effective(MachineId(5), SkuId(0), 1.0).max_running_containers,
            30
        );
    }

    #[test]
    fn set_max_containers_mutates_baseline() {
        let mut p = plan();
        p.set_max_containers(SkuId(5), 25);
        assert_eq!(
            p.effective(MachineId(0), SkuId(5), 0.0).max_running_containers,
            25
        );
    }

    #[test]
    fn resolved_plan_agrees_with_effective_everywhere() {
        let cluster = crate::cluster::ClusterSpec::tiny();
        let mut p = ConfigPlan::baseline(&cluster.skus, SC1);
        // Two overlapping flights (later wins) plus a disjoint one.
        p.add_flight(Flight {
            label: "a".into(),
            machines: [MachineId(0), MachineId(3), MachineId(7)].into_iter().collect(),
            start_hour: 2,
            end_hour: 6,
            patch: ConfigPatch {
                max_running_containers: Some(30),
                ..Default::default()
            },
        });
        p.add_flight(Flight {
            label: "b".into(),
            machines: [MachineId(3)].into_iter().collect(),
            start_hour: 4,
            end_hour: 8,
            patch: ConfigPatch {
                sc: Some(SC2),
                feature_on: Some(true),
                ..Default::default()
            },
        });
        let hours = 10;
        let r = ResolvedPlan::resolve(&p, &cluster.machines, hours);
        assert!(r.configs().len() >= 3, "baselines + flight variants interned");
        for (pos, m) in cluster.machines.iter().enumerate() {
            for h in 0..=hours {
                // Sample fractional offsets inside the hour too: the
                // effective config is constant within an integer hour.
                for frac in [0.0, 0.25, 0.999] {
                    let want = p.effective(m.id, m.sku, h as f64 + frac);
                    // Past the horizon the table clamps; skip those.
                    if h as f64 + frac > hours as f64 {
                        continue;
                    }
                    assert_eq!(r.config_at(pos, h), want, "machine {pos} hour {h}");
                }
            }
        }
        assert!(r.is_flighted(3));
        assert!(!r.is_flighted(1));
    }

    #[test]
    fn exec_config_default_is_single_shard_daily_window() {
        let e = ExecConfig::default();
        assert_eq!(e.shards, 1);
        assert_eq!(e.emit_window_hours, 24);
    }
}
