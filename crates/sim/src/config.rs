//! Cluster configuration and time-windowed overrides (flighting).
//!
//! KEA tunes *cluster-wide, per-group* configuration (§2), and deploys
//! candidate values to machine subsets through the flighting tool: "users
//! can specify the machine names and the starting/ending time of each
//! flighting" (§4.1). [`MachineConfig`] is the tunable surface,
//! [`ConfigPatch`] a partial override, and [`ConfigPlan`] the composition
//! of per-SKU baselines with a list of [`Flight`]s.

use kea_telemetry::{MachineId, ScId, SkuId};
use std::collections::{BTreeMap, BTreeSet};

/// The per-machine tunable configuration — the knobs of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// YARN `max_num_running_containers` (application 1).
    pub max_running_containers: u32,
    /// Power cap as a fraction below the provisioned level: 0.10 caps at
    /// 90% of provisioned power; 0.0 disables capping (application 3).
    pub power_cap_fraction: f64,
    /// Processor acceleration feature flag ("Feature" in §7.2).
    pub feature_on: bool,
    /// Software configuration (application 4).
    pub sc: ScId,
    /// Maximum low-priority containers queued per machine (the §5.3
    /// extension knob). `u32::MAX` disables the cap (the baseline).
    pub max_queue_length: u32,
}

/// A partial configuration override; `None` fields inherit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConfigPatch {
    /// Override for `max_running_containers`.
    pub max_running_containers: Option<u32>,
    /// Override for `power_cap_fraction`.
    pub power_cap_fraction: Option<f64>,
    /// Override for `feature_on`.
    pub feature_on: Option<bool>,
    /// Override for the software configuration.
    pub sc: Option<ScId>,
    /// Override for `max_queue_length`.
    pub max_queue_length: Option<u32>,
}

impl ConfigPatch {
    /// Applies this patch on top of `base`.
    pub fn apply(&self, base: MachineConfig) -> MachineConfig {
        MachineConfig {
            max_running_containers: self
                .max_running_containers
                .unwrap_or(base.max_running_containers),
            power_cap_fraction: self.power_cap_fraction.unwrap_or(base.power_cap_fraction),
            feature_on: self.feature_on.unwrap_or(base.feature_on),
            sc: self.sc.unwrap_or(base.sc),
            max_queue_length: self.max_queue_length.unwrap_or(base.max_queue_length),
        }
    }

    /// True when the patch overrides nothing.
    pub fn is_empty(&self) -> bool {
        *self == ConfigPatch::default()
    }
}

/// A flighting deployment: a patch applied to a set of machines during
/// `[start_hour, end_hour)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Flight {
    /// Human-readable label for reports.
    pub label: String,
    /// Target machines.
    pub machines: BTreeSet<MachineId>,
    /// First hour (inclusive) the patch is live.
    pub start_hour: u64,
    /// First hour (exclusive) after the patch ends.
    pub end_hour: u64,
    /// The configuration override.
    pub patch: ConfigPatch,
}

impl Flight {
    /// Whether the flight is live at simulation time `hour`.
    pub fn active_at(&self, hour: f64) -> bool {
        hour >= self.start_hour as f64 && hour < self.end_hour as f64
    }
}

/// The full configuration plan for a simulation run: per-SKU baselines
/// plus flights. Later flights win when several target the same machine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConfigPlan {
    /// Baseline config per SKU.
    pub base: BTreeMap<SkuId, MachineConfig>,
    /// Time-windowed overrides, applied in order.
    pub flights: Vec<Flight>,
}

impl ConfigPlan {
    /// The manual-tuning baseline: every SKU at its
    /// `default_max_containers`, no power cap, Feature off, SC1 — the
    /// pre-KEA production state.
    pub fn baseline(skus: &[crate::catalog::SkuSpec], sc: ScId) -> Self {
        let base = skus
            .iter()
            .map(|s| {
                (
                    s.id,
                    MachineConfig {
                        max_running_containers: s.default_max_containers,
                        power_cap_fraction: 0.0,
                        feature_on: false,
                        sc,
                        max_queue_length: u32::MAX,
                    },
                )
            })
            .collect();
        ConfigPlan {
            base,
            flights: Vec::new(),
        }
    }

    /// Sets the baseline `max_running_containers` for one SKU.
    ///
    /// # Panics
    /// The SKU must exist in the plan.
    pub fn set_max_containers(&mut self, sku: SkuId, max: u32) {
        self.base
            .get_mut(&sku)
            // kea-lint: allow(panic-in-library) — documented `# Panics` contract; plans are built from the same catalog
            .expect("SKU present in plan")
            .max_running_containers = max;
    }

    /// Adds a flight.
    pub fn add_flight(&mut self, flight: Flight) {
        self.flights.push(flight);
    }

    /// Resolves the effective configuration of `machine` (of `sku`) at
    /// simulation time `hour` (fractional hours are fine).
    ///
    /// # Panics
    /// The SKU must exist in the plan.
    pub fn effective(&self, machine: MachineId, sku: SkuId, hour: f64) -> MachineConfig {
        // kea-lint: allow(panic-in-library) — documented `# Panics` contract; engine validates SKUs at construction
        let mut cfg = *self.base.get(&sku).expect("SKU present in plan");
        for flight in &self.flights {
            if flight.active_at(hour) && flight.machines.contains(&machine) {
                cfg = flight.patch.apply(cfg);
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{default_skus, SC1, SC2};

    fn plan() -> ConfigPlan {
        ConfigPlan::baseline(&default_skus(50), SC1)
    }

    #[test]
    fn baseline_uses_manual_defaults() {
        let skus = default_skus(50);
        let p = ConfigPlan::baseline(&skus, SC1);
        for sku in &skus {
            let cfg = p.effective(MachineId(0), sku.id, 0.0);
            assert_eq!(cfg.max_running_containers, sku.default_max_containers);
            assert_eq!(cfg.power_cap_fraction, 0.0);
            assert!(!cfg.feature_on);
            assert_eq!(cfg.sc, SC1);
        }
    }

    #[test]
    fn patch_apply_overrides_only_set_fields() {
        let base = MachineConfig {
            max_running_containers: 10,
            power_cap_fraction: 0.0,
            feature_on: false,
            sc: SC1,
            max_queue_length: u32::MAX,
        };
        let patch = ConfigPatch {
            max_running_containers: Some(12),
            sc: Some(SC2),
            ..Default::default()
        };
        let out = patch.apply(base);
        assert_eq!(out.max_running_containers, 12);
        assert_eq!(out.sc, SC2);
        assert_eq!(out.power_cap_fraction, 0.0);
        assert!(!out.feature_on);
        assert!(ConfigPatch::default().is_empty());
        assert!(!patch.is_empty());
    }

    #[test]
    fn flight_window_respected() {
        let mut p = plan();
        let sku = SkuId(0);
        p.add_flight(Flight {
            label: "pilot".to_string(),
            machines: [MachineId(0)].into_iter().collect(),
            start_hour: 24,
            end_hour: 48,
            patch: ConfigPatch {
                max_running_containers: Some(99),
                ..Default::default()
            },
        });
        assert_ne!(
            p.effective(MachineId(0), sku, 23.9).max_running_containers,
            99
        );
        assert_eq!(
            p.effective(MachineId(0), sku, 24.0).max_running_containers,
            99
        );
        assert_eq!(
            p.effective(MachineId(0), sku, 47.9).max_running_containers,
            99
        );
        assert_ne!(
            p.effective(MachineId(0), sku, 48.0).max_running_containers,
            99
        );
        // Non-target machine unaffected.
        assert_ne!(
            p.effective(MachineId(1), sku, 30.0).max_running_containers,
            99
        );
    }

    #[test]
    fn later_flights_win() {
        let mut p = plan();
        let m: BTreeSet<MachineId> = [MachineId(5)].into_iter().collect();
        for (i, v) in [(0u64, 20u32), (0, 30)] {
            p.add_flight(Flight {
                label: format!("f{i}"),
                machines: m.clone(),
                start_hour: 0,
                end_hour: 100,
                patch: ConfigPatch {
                    max_running_containers: Some(v),
                    ..Default::default()
                },
            });
        }
        assert_eq!(
            p.effective(MachineId(5), SkuId(0), 1.0).max_running_containers,
            30
        );
    }

    #[test]
    fn set_max_containers_mutates_baseline() {
        let mut p = plan();
        p.set_max_containers(SkuId(5), 25);
        assert_eq!(
            p.effective(MachineId(0), SkuId(5), 0.0).max_running_containers,
            25
        );
    }
}
