//! Discrete-event simulation engines.
//!
//! Two implementations share one output contract:
//!
//! * [`reference`] — the original heap-driven engine: one global
//!   `BinaryHeap` event queue, `ConfigPlan::effective` on every lookup,
//!   telemetry materialized whole at the end of the run. Simple, and the
//!   semantic oracle for everything below.
//! * **This module's fleet-scale engine** — what [`run`] and
//!   [`run_with_exec`] execute:
//!
//!   1. a hierarchical **calendar queue** ([`crate::calendar`]) replaces
//!      the binary heap, making event push/pop O(1) for the clustered
//!      near-future times a simulation produces;
//!   2. **model tables** ([`ModelTables`]) precompute every
//!      utilization / throttle / interference / power / resource value
//!      per (configuration × SKU × running-count), collapsing the
//!      per-event hot path (BTreeMap lookups, `powf`, flight scans in
//!      `ConfigPlan::effective`) to two array reads via
//!      [`crate::config::ResolvedPlan`];
//!   3. **windowed telemetry emission**: completed machine-hours stream
//!      into the output [`kea_telemetry::TelemetryStore`] once per
//!      simulated window (default daily) through `reserve` +
//!      `extend_validated`, bounding accumulator memory at
//!      300k-machine × week scale;
//!   4. optional **federated execution** (`ExecConfig::shards != 1`):
//!      scheduling is sharded per sub-cluster, each domain simulated by a
//!      scoped worker with its own counter-based RNG stream
//!      ([`crate::rng::CounterRng`]) keyed by the domain's lowest machine
//!      id — so the output is deterministic and invariant in both the
//!      worker-thread count and the work-claiming schedule.
//!
//! **Agreement contract**: `run` (single global domain) reproduces
//! [`reference::run`] *bit for bit* — same event total order, same RNG
//! draw sequence, same floating-point expression order (service times go
//! through [`machine::service_time_parts`], the single place the
//! multiplication order is written). The federated mode is a different
//! *scheduling model* by design (per-sub-cluster placement scope and RNG
//! streams); its guarantee is determinism and shard-count invariance, and
//! the `tests/` agreement suite enforces both.

pub mod reference;

use crate::cluster::{ClusterSpec, Machine, SubClusterId};
use crate::config::{ConfigPlan, ExecConfig, ResolvedPlan};
use crate::machine::{self};
use crate::output::{JobRecord, SimOutput, TaskRecord};
use crate::rng::{exponential, gauge_noise_at, lognormal_mean, CounterRng};
use crate::workload::{Schedule, TaskType, WorkloadSpec};
use crate::CalendarQueue;
use kea_telemetry::{GroupKey, MachineHourRecord, MetricValues, SkuId};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Full specification of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster topology and SKU catalog.
    pub cluster: ClusterSpec,
    /// Workload templates and seasonality.
    pub workload: WorkloadSpec,
    /// Configuration plan (baselines + flights).
    pub plan: ConfigPlan,
    /// Simulated duration in hours.
    pub duration_hours: u64,
    /// RNG seed; equal configs with equal seeds give identical outputs.
    pub seed: u64,
    /// Sample every Nth completed task into the task log (0 disables).
    pub task_log_every: u32,
    /// Log every Nth Poisson-scheduled (ad-hoc) job; recurring jobs are
    /// always logged. 1 logs everything.
    pub adhoc_job_log_every: u32,
}

impl SimConfig {
    /// A ready-to-run baseline: the given cluster under manual-tuning
    /// defaults (SC1, no capping, Feature off) with the default workload
    /// at 75% target occupancy.
    pub fn baseline(cluster: ClusterSpec, duration_hours: u64, seed: u64) -> Self {
        let workload = WorkloadSpec::default_for(&cluster, 0.75);
        let plan = ConfigPlan::baseline(&cluster.skus, crate::catalog::SC1);
        SimConfig {
            cluster,
            workload,
            plan,
            duration_hours,
            seed,
            task_log_every: 10,
            adhoc_job_log_every: 8,
        }
    }
}

/// Runs a simulation to completion on the fleet-scale engine with
/// default execution (single global scheduling domain, daily telemetry
/// windows) — bit-identical to [`reference::run`].
///
/// # Panics
/// Panics on nonsensical configs (zero duration, zero-`max_containers`
/// baselines) — these indicate caller bugs, not runtime conditions.
pub fn run(cfg: &SimConfig) -> SimOutput {
    run_with_exec(cfg, ExecConfig::default())
}

/// Runs a simulation with explicit execution knobs.
///
/// `exec.shards == 1` simulates one global scheduling domain with the
/// reference engine's exact semantics. Any other value federates
/// scheduling per sub-cluster (see the module docs); the output is then
/// deterministic and identical for every `shards` value in
/// `{0, 2, 3, …}`, but differs from the global domain by design.
///
/// # Panics
/// Same contract as [`run`].
pub fn run_with_exec(cfg: &SimConfig, exec: ExecConfig) -> SimOutput {
    assert!(cfg.duration_hours > 0, "duration must be positive");
    for (sku, mc) in &cfg.plan.base {
        assert!(
            mc.max_running_containers > 0,
            "max_running_containers must be positive for {sku:?}"
        );
    }
    if exec.shards == 1 {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Fleet::new(cfg, &cfg.cluster.machines, &cfg.workload, rng, exec.emit_window_hours).run()
    } else {
        run_federated(cfg, exec)
    }
}

/// Federated execution: one scheduling domain per sub-cluster, simulated
/// by `min(shards, domains)` scoped workers (`shards == 0` ⇒ one worker
/// per domain) claiming domains through an atomic ticket. Workers return
/// their outputs and the parent merges after `join`, in domain order —
/// the result does not depend on which worker simulated which domain.
fn run_federated(cfg: &SimConfig, exec: ExecConfig) -> SimOutput {
    // Deterministic domain list: sub-clusters in id order. Machines keep
    // their global identity (ids, racks), so merged telemetry is exactly
    // a fleet-wide record set.
    let mut by_sc: BTreeMap<SubClusterId, Vec<Machine>> = BTreeMap::new();
    for m in &cfg.cluster.machines {
        by_sc.entry(m.subcluster).or_default().push(*m);
    }
    let domains: Vec<Vec<Machine>> = by_sc.into_values().collect();
    let n_domains = domains.len();
    let total_machines = cfg.cluster.machines.len();
    // Slice the workload by machine share, cumulatively, so the union
    // over domains reproduces the global spec exactly.
    let mut slices = Vec::with_capacity(n_domains);
    let mut before = 0usize;
    for d in &domains {
        slices.push(cfg.workload.sliced(before as u64, d.len() as u64, total_machines as u64));
        before += d.len();
    }
    let workers = if exec.shards == 0 {
        n_domains
    } else {
        exec.shards.min(n_domains)
    }
    .max(1);
    let ticket = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, SimOutput)> = Vec::with_capacity(n_domains);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let ticket = &ticket;
                let domains = &domains;
                let slices = &slices;
                scope.spawn(move || {
                    let mut outs = Vec::new();
                    loop {
                        let i = ticket.fetch_add(1, Ordering::Relaxed);
                        if i >= n_domains {
                            break;
                        }
                        let (Some(machines), Some(workload)) = (domains.get(i), slices.get(i))
                        else {
                            break;
                        };
                        // The RNG stream is keyed by the domain's lowest
                        // machine id — a property of the domain, not of
                        // the worker or claim order.
                        let stream = machines.first().map_or(i as u64, |m| u64::from(m.id.0));
                        let rng = CounterRng::new(cfg.seed, stream);
                        let out =
                            Fleet::new(cfg, machines, workload, rng, exec.emit_window_hours).run();
                        outs.push((i, out));
                    }
                    outs
                })
            })
            .collect();
        for h in handles {
            if let Ok(v) = h.join() {
                indexed.extend(v);
            }
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    let mut out = SimOutput::default();
    for (_, domain_out) in indexed {
        out.absorb(domain_out);
    }
    out
}

// ---------------------------------------------------------------------
// Shared simulation vocabulary (also used by `reference`)
// ---------------------------------------------------------------------

/// Sentinel job id marking closed-loop backlog tasks.
pub(super) const BACKLOG_JOB: u32 = u32::MAX;

/// Payloads are `u32` so the enum packs into 8 bytes — a calendar-queue
/// entry is then 24 bytes instead of 32, which matters when a fleet-day
/// run moves tens of millions of them through the ring slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(super) enum EventKind {
    JobArrival { template: u32 },
    PoissonCandidate { template: u32 },
    TaskFinish { task: u32 },
}

#[derive(Debug, Clone, Default)]
pub(super) struct HourAcc {
    pub container_seconds: f64,
    pub util_seconds: f64,
    pub power_joules: f64,
    pub cores_seconds: f64,
    pub ram_seconds: f64,
    pub ssd_seconds: f64,
    pub network_seconds: f64,
    pub queue_len_seconds: f64,
    pub tasks_finished: u32,
    pub data_read_gb: f64,
    pub exec_time_s: f64,
    pub cpu_time_s: f64,
    // Latency is attributed to the hour a task *starts*, pairing each
    // observation with the utilization that caused it; throughput
    // metrics are attributed to the completion hour.
    pub latency_sum_s: f64,
    pub latency_count: u32,
    pub queue_waits_s: Vec<f64>,
}

#[derive(Debug, Clone, Copy)]
pub(super) struct TaskRun {
    pub job: u32,
    pub base_cpu_s: f64,
    pub input_gb: f64,
    pub io_heavy: bool,
    pub task_type: TaskType,
    pub machine: u32,
    pub queue_wait_s: f64,
    pub duration_s: f64,
    pub cpu_time_s: f64,
    pub log_index: u32, // u32::MAX = unsampled; u32::MAX-1 = sampled, pending
}

#[derive(Debug, Clone)]
pub(super) struct JobRun {
    pub template: usize,
    pub arrival_s: f64,
    pub stage: usize,
    pub remaining_in_stage: u32,
    pub total_tasks: u32,
    pub logged: bool,
    // Slowest task of the current stage so far: (end time, sku, log idx).
    pub stage_max: (f64, u16, u32),
}

/// Percentile of a pre-sorted slice (linear interpolation). Local copy to
/// avoid a dev-only dependency cycle with `kea-stats`. Index-free so the
/// fleet engine stays lint-clean; the interpolation expression matches
/// the historical one bit for bit (`lo == hi` collapses because
/// `a·1.0 + b·0.0 == a` exactly for the non-negative waits fed in here).
pub(super) fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let rank = p / 100.0 * (sorted.len().saturating_sub(1)) as f64;
    let lo = (rank as usize).min(sorted.len().saturating_sub(1));
    let hi = (lo + 1).min(sorted.len().saturating_sub(1));
    let (Some(&a), Some(&b)) = (sorted.get(lo), sorted.get(hi)) else {
        return 0.0;
    };
    if lo == hi {
        return a;
    }
    let frac = rank - lo as f64;
    a * (1.0 - frac) + b * frac
}

// ---------------------------------------------------------------------
// Model tables: the per-event hot path, precomputed
// ---------------------------------------------------------------------

/// Precomputed machine-model values for one (configuration, SKU) pair.
///
/// Every per-running-count table is built by calling the *same*
/// `machine::*` functions the reference engine calls per event, so the
/// stored values are bitwise identical to what the reference computes
/// inline.
#[derive(Debug, Clone)]
struct ModelEntry {
    max_running: u32,
    max_queue: u32,
    sc_io_mult: f64,
    speed: f64,
    feature: f64,
    /// Indexed by running-container count (0..=global max). One row is
    /// exactly 64 bytes, so each per-event lookup touches a single cache
    /// line instead of eight scattered arrays.
    rows: Box<[ModelRow]>,
}

/// Everything the engine reads per (config, SKU, running-count) triple,
/// packed for locality. Eight `f64`s = one cache line.
#[derive(Debug, Clone, Copy, Default)]
struct ModelRow {
    util: f64,
    throttle: f64,
    interference: f64,
    power: f64,
    cores: f64,
    ram: f64,
    ssd: f64,
    net: f64,
}

/// All [`ModelEntry`]s of a run: one per (interned configuration × SKU).
#[derive(Debug, Clone)]
struct ModelTables {
    n_skus: usize,
    entries: Vec<ModelEntry>,
}

impl ModelTables {
    fn build(skus: &[crate::catalog::SkuSpec], resolved: &ResolvedPlan) -> Self {
        // A flight can lower `max_running_containers` under live tasks,
        // so the running count can transiently exceed the *current*
        // config's max — size every table by the global max instead.
        let cap = resolved
            .configs()
            .iter()
            .map(|c| c.max_running_containers)
            .max()
            .unwrap_or(1);
        let mut entries = Vec::with_capacity(resolved.configs().len() * skus.len());
        for cfg in resolved.configs() {
            let sc = crate::catalog::default_scs_static(cfg.sc);
            for sku in skus {
                let feature = if cfg.feature_on {
                    machine::FEATURE_SPEED_FACTOR
                } else {
                    1.0
                };
                let mut rows = Vec::with_capacity(cap as usize + 1);
                for containers in 0..=cap {
                    let u = machine::cpu_utilization(sku, containers);
                    let res = machine::resource_usage(sku, sc, containers);
                    rows.push(ModelRow {
                        util: u,
                        throttle: machine::throttle_multiplier(sku, cfg, u),
                        interference: 1.0 + machine::INTERFERENCE_GAMMA * u * u,
                        power: machine::power_draw(sku, cfg, u),
                        cores: res.cores_used,
                        ram: res.ram_used_gb,
                        ssd: res.ssd_used_gb,
                        net: res.network_used_gbps,
                    });
                }
                entries.push(ModelEntry {
                    max_running: cfg.max_running_containers,
                    max_queue: cfg.max_queue_length,
                    sc_io_mult: sc.io_heavy_multiplier,
                    speed: sku.speed_factor,
                    feature,
                    rows: rows.into_boxed_slice(),
                });
            }
        }
        ModelTables {
            n_skus: skus.len(),
            entries,
        }
    }

    fn entry(&self, cfg_idx: u32, sku_idx: usize) -> Option<&ModelEntry> {
        self.entries.get(cfg_idx as usize * self.n_skus + sku_idx)
    }
}

// ---------------------------------------------------------------------
// The fleet-scale engine core
// ---------------------------------------------------------------------

/// The current-hour accumulator, held inline in [`MachState`] so the
/// per-event hot paths (integration, task-start latency, completion
/// attribution) never chase the window deque's heap buffer. Spilled into
/// the windowed [`HourAcc`] when the machine's hour advances.
#[derive(Debug, Clone, Copy, Default)]
struct AdvAcc {
    container_seconds: f64,
    util_seconds: f64,
    power_joules: f64,
    cores_seconds: f64,
    ram_seconds: f64,
    ssd_seconds: f64,
    network_seconds: f64,
    queue_len_seconds: f64,
    data_read_gb: f64,
    exec_time_s: f64,
    cpu_time_s: f64,
    latency_sum_s: f64,
    tasks_finished: u32,
    latency_count: u32,
}

/// Per-machine state. Unlike the reference engine's full
/// `hours: Vec<HourAcc>` (one accumulator per machine-hour for the whole
/// run), only the un-flushed window tail is held: `window[i]` accumulates
/// hour `window_base + i`, and flushed hours are gone.
#[derive(Debug)]
struct MachState {
    sku_idx: usize,
    /// Copied from [`Machine`] so the per-finish counter path stays on
    /// this (already hot) struct instead of touching `machines_info`.
    sku_id: SkuId,
    rack_idx: u32,
    /// Cached configuration index: valid for the whole run whenever
    /// `!flighted` — the common case, sparing every hot-path config
    /// lookup two scattered loads through the resolved plan — and for
    /// the hour `cfg_hour` otherwise (flights switch only on integer
    /// hour boundaries, so one resolve per machine-hour suffices).
    cfg_idx: u32,
    /// Hour `cfg_idx` was resolved at; only consulted when `flighted`.
    cfg_hour: u64,
    /// True when a flight can change this machine's config mid-run, so
    /// `cfg_idx` must be re-resolved when the hour moves off `cfg_hour`.
    flighted: bool,
    running: u32,
    queue: VecDeque<(u32, f64)>, // (task index, enqueue time)
    last_s: f64,
}

/// Per-machine accumulation state, kept in an arena parallel to the
/// [`MachState`] one. The split is deliberate: placement probes hit
/// machines uniformly at random and only need the small scheduling
/// struct, so the (much larger) accumulator — visited only by
/// integration, attribution, and flushing — must not dilute its cache
/// density.
#[derive(Debug)]
struct MachAcc {
    /// Hour `cur` is integrating; `u64::MAX` when `cur` is empty. Hours
    /// advance monotonically, so each hour is integrated contiguously
    /// and spilled into the window exactly once.
    cur_hour: u64,
    cur: AdvAcc,
    window_base: u64,
    window: VecDeque<HourAcc>,
}

impl MachAcc {
    fn new() -> Self {
        MachAcc {
            cur_hour: u64::MAX,
            cur: AdvAcc::default(),
            window_base: 0,
            window: VecDeque::new(),
        }
    }

    /// Folds the inline current-hour integrals into the windowed
    /// accumulator. Exact: the window's advance-owned fields are written
    /// nowhere else, so adding the completed sum into the zeroed field
    /// reproduces direct per-segment accumulation bit-for-bit.
    fn spill_cur(&mut self) {
        let h = self.cur_hour;
        if h == u64::MAX {
            return;
        }
        self.cur_hour = u64::MAX;
        let cur = self.cur;
        self.cur = AdvAcc::default();
        if h < self.window_base {
            return;
        }
        let idx = (h - self.window_base) as usize;
        while self.window.len() <= idx {
            self.window.push_back(HourAcc::default());
        }
        if let Some(acc) = self.window.get_mut(idx) {
            acc.container_seconds += cur.container_seconds;
            acc.util_seconds += cur.util_seconds;
            acc.power_joules += cur.power_joules;
            acc.cores_seconds += cur.cores_seconds;
            acc.ram_seconds += cur.ram_seconds;
            acc.ssd_seconds += cur.ssd_seconds;
            acc.network_seconds += cur.network_seconds;
            acc.queue_len_seconds += cur.queue_len_seconds;
            acc.data_read_gb += cur.data_read_gb;
            acc.exec_time_s += cur.exec_time_s;
            acc.cpu_time_s += cur.cpu_time_s;
            acc.latency_sum_s += cur.latency_sum_s;
            acc.tasks_finished += cur.tasks_finished;
            acc.latency_count += cur.latency_count;
        }
    }

    /// Points the inline accumulator at `hour`, spilling any previous
    /// hour first. `None` when the hour is outside the live window
    /// (already flushed, or past the horizon). Callers only ever target
    /// the machine's current hour, so the pointed-at hour is monotone
    /// and each hour's contributions stay contiguous — which is what
    /// keeps the spilled sums bit-identical to direct accumulation.
    fn cur_for(&mut self, hour: u64, duration_hours: u64) -> Option<&mut AdvAcc> {
        if self.cur_hour != hour {
            if hour < self.window_base || hour >= duration_hours {
                return None;
            }
            self.spill_cur();
            self.cur_hour = hour;
        }
        Some(&mut self.cur)
    }
}

struct Fleet<'a, R: RngCore> {
    // Immutable run parameters.
    machines_info: &'a [Machine],
    workload: &'a WorkloadSpec,
    resolved: ResolvedPlan,
    tables: ModelTables,
    duration_hours: u64,
    end_s: f64,
    seed: u64,
    task_log_every: u32,
    adhoc_job_log_every: u32,
    emit_window_s: f64,
    // Mutable simulation state.
    rng: R,
    now_s: f64,
    events: CalendarQueue<EventKind>,
    mach: Vec<MachState>,
    accs: Vec<MachAcc>,
    tasks: Vec<TaskRun>,
    task_free: Vec<u32>,
    jobs: Vec<JobRun>,
    job_free: Vec<u32>,
    out: SimOutput,
    records: Vec<MachineHourRecord>,
    tasks_created: u64,
    tasks_completed: u64,
    adhoc_seen: u64,
    jobs_active: u64,
    // Dense task counters, folded into the output's `TaskCounters`
    // BTreeMaps once at the end of the run — three array increments per
    // task finish instead of three tree walks.
    sku_ids: Vec<SkuId>,
    n_racks: usize,
    cnt_sku: Vec<u64>,
    cnt_sku_type: Vec<u64>,  // sku-major, × TaskType::ALL
    cnt_rack_type: Vec<u64>, // rack-major, × TaskType::ALL
    // Machines believed to have free container slots, as a swap-remove
    // index set for O(1) uniform sampling (hand-rolled so the removal
    // cannot panic). Entries can be stale after flight-driven max
    // changes; `place_task` re-validates on pick.
    free_set: Vec<u32>,
    free_pos: Vec<u32>, // u32::MAX = not in set
}

impl<'a, R: RngCore> Fleet<'a, R> {
    fn new(
        cfg: &'a SimConfig,
        machines: &'a [Machine],
        workload: &'a WorkloadSpec,
        rng: R,
        emit_window_hours: u64,
    ) -> Self {
        let resolved = ResolvedPlan::resolve(&cfg.plan, machines, cfg.duration_hours);
        let tables = ModelTables::build(&cfg.cluster.skus, &resolved);
        let mach: Vec<MachState> = machines
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let sku_idx = cfg.cluster.skus.iter().position(|s| s.id == m.sku);
                assert!(sku_idx.is_some(), "machine SKU in catalog");
                MachState {
                    sku_idx: sku_idx.unwrap_or(0),
                    sku_id: m.sku,
                    rack_idx: m.rack.0,
                    cfg_idx: resolved.config_index(i, 0),
                    cfg_hour: 0,
                    flighted: resolved.is_flighted(i),
                    running: 0,
                    queue: VecDeque::new(),
                    last_s: 0.0,
                }
            })
            .collect();
        let n = machines.len();
        let sku_ids: Vec<SkuId> = cfg.cluster.skus.iter().map(|s| s.id).collect();
        let n_skus = sku_ids.len();
        let n_types = TaskType::ALL.len();
        let n_racks = machines
            .iter()
            .map(|m| m.rack.0 as usize + 1)
            .max()
            .unwrap_or(0);
        Fleet {
            machines_info: machines,
            workload,
            resolved,
            tables,
            duration_hours: cfg.duration_hours,
            end_s: cfg.duration_hours as f64 * 3600.0,
            seed: cfg.seed,
            task_log_every: cfg.task_log_every,
            adhoc_job_log_every: cfg.adhoc_job_log_every,
            emit_window_s: emit_window_hours.max(1) as f64 * 3600.0,
            rng,
            now_s: 0.0,
            events: CalendarQueue::new(),
            mach,
            accs: (0..n).map(|_| MachAcc::new()).collect(),
            tasks: Vec::new(),
            task_free: Vec::new(),
            jobs: Vec::new(),
            job_free: Vec::new(),
            out: SimOutput::default(),
            records: Vec::new(),
            tasks_created: 0,
            tasks_completed: 0,
            adhoc_seen: 0,
            jobs_active: 0,
            sku_ids,
            n_racks,
            cnt_sku: vec![0; n_skus],
            cnt_sku_type: vec![0; n_skus * n_types],
            cnt_rack_type: vec![0; n_racks * n_types],
            free_set: (0..n as u32).collect(),
            free_pos: (0..n as u32).collect(),
        }
    }

    /// Index of a task type in [`TaskType::ALL`] (reporting order).
    fn type_idx(t: TaskType) -> usize {
        match t {
            TaskType::Extract => 0,
            TaskType::Process => 1,
            TaskType::Aggregate => 2,
            TaskType::Partition => 3,
        }
    }

    /// Folds the dense per-(SKU, rack, type) counter arrays into the
    /// output's `TaskCounters` maps — identical to what per-task
    /// `TaskCounters::record` calls would have built (zero-count keys
    /// stay absent).
    fn fold_counters(&mut self) {
        let n_types = TaskType::ALL.len();
        for (i, &sku) in self.sku_ids.iter().enumerate() {
            let n = self.cnt_sku.get(i).copied().unwrap_or(0);
            if n > 0 {
                self.out.counters.by_sku.insert(sku, n);
                self.out.counters.total += n;
            }
            for (ti, &tt) in TaskType::ALL.iter().enumerate() {
                let n = self.cnt_sku_type.get(i * n_types + ti).copied().unwrap_or(0);
                if n > 0 {
                    self.out.counters.by_sku_type.insert((sku, tt), n);
                }
            }
        }
        for rack in 0..self.n_racks {
            for (ti, &tt) in TaskType::ALL.iter().enumerate() {
                let n = self
                    .cnt_rack_type
                    .get(rack * n_types + ti)
                    .copied()
                    .unwrap_or(0);
                if n > 0 {
                    self.out
                        .counters
                        .by_rack_type
                        .insert((crate::cluster::RackId(rack as u32), tt), n);
                }
            }
        }
    }

    fn free_add(&mut self, m: usize) {
        let set_len = self.free_set.len();
        let Some(pos) = self.free_pos.get_mut(m) else {
            return;
        };
        if *pos != u32::MAX {
            return;
        }
        *pos = u32::try_from(set_len).unwrap_or(u32::MAX);
        self.free_set.push(m as u32);
    }

    fn free_remove(&mut self, m: usize) {
        let Some(&pos32) = self.free_pos.get(m) else {
            return;
        };
        if pos32 == u32::MAX {
            return;
        }
        let pos = pos32 as usize;
        // pos != MAX implies pos indexes the live set; degrade to a no-op
        // if the invariant is ever broken rather than aborting the sim.
        if pos >= self.free_set.len() {
            return;
        }
        let Some(&last) = self.free_set.last() else {
            return;
        };
        // Hand-rolled swap-remove: move the tail entry into `pos`, drop
        // the tail. Identical set order to `Vec::swap_remove`.
        if let Some(slot) = self.free_set.get_mut(pos) {
            *slot = last;
        }
        self.free_set.pop();
        if last != m as u32 {
            if let Some(p) = self.free_pos.get_mut(last as usize) {
                *p = pos32;
            }
        }
        if let Some(p) = self.free_pos.get_mut(m) {
            *p = u32::MAX;
        }
    }

    fn run(mut self) -> SimOutput {
        self.seed_backlog();
        self.schedule_arrivals();
        let mut next_emit_s = self.emit_window_s;
        while let Some((time_s, kind)) = self.events.pop() {
            if time_s > self.end_s {
                break;
            }
            // Cross every window boundary before processing the event:
            // all state integration up to the boundary is then final, and
            // completed hours stream out.
            while time_s >= next_emit_s {
                self.emit_window(next_emit_s);
                next_emit_s += self.emit_window_s;
            }
            self.now_s = time_s;
            match kind {
                EventKind::JobArrival { template } => self.on_job_arrival(template as usize),
                EventKind::PoissonCandidate { template } => self.on_poisson_candidate(template as usize),
                EventKind::TaskFinish { task } => self.on_task_finish(task),
            }
        }
        self.finish()
    }

    // ------------------------------------------------------------------
    // Backlog (closed-loop opportunistic work)
    // ------------------------------------------------------------------

    fn seed_backlog(&mut self) {
        let Some(backlog) = self.workload.backlog else {
            return;
        };
        for _ in 0..backlog.concurrent_tasks {
            self.spawn_backlog_task(&backlog);
        }
    }

    fn spawn_backlog_task(&mut self, backlog: &crate::workload::BacklogSpec) {
        let base_cpu_s = lognormal_mean(&mut self.rng, backlog.mean_cpu_s, backlog.sigma);
        let input_gb = lognormal_mean(&mut self.rng, backlog.mean_input_gb, 0.4);
        let sampled = self.task_log_every > 0
            && self.tasks_created.is_multiple_of(self.task_log_every as u64);
        let task = TaskRun {
            job: BACKLOG_JOB,
            base_cpu_s,
            input_gb,
            io_heavy: backlog.io_heavy,
            task_type: backlog.task_type,
            machine: u32::MAX,
            queue_wait_s: 0.0,
            duration_s: 0.0,
            cpu_time_s: 0.0,
            log_index: if sampled { u32::MAX - 1 } else { u32::MAX },
        };
        let task_idx = self.alloc_task(task);
        self.tasks_created += 1;
        self.place_task(task_idx);
    }

    fn alloc_task(&mut self, task: TaskRun) -> u32 {
        if let Some(i) = self.task_free.pop() {
            if let Some(slot) = self.tasks.get_mut(i as usize) {
                *slot = task;
                return i;
            }
        }
        self.tasks.push(task);
        (self.tasks.len() - 1) as u32
    }

    // ------------------------------------------------------------------
    // Arrivals
    // ------------------------------------------------------------------

    fn schedule_arrivals(&mut self) {
        let duration_h = self.duration_hours as f64;
        for idx in 0..self.workload.templates.len() {
            let Some(template) = self.workload.templates.get(idx) else {
                continue;
            };
            match template.schedule {
                Schedule::Recurring {
                    period_hours,
                    offset_hours,
                } => {
                    let mut t = offset_hours;
                    while t < duration_h {
                        self.events
                            .push(t * 3600.0, EventKind::JobArrival { template: idx as u32 });
                        t += period_hours;
                    }
                }
                Schedule::Poisson { rate_per_hour } => {
                    if rate_per_hour > 0.0 {
                        let first = self.next_poisson_gap(rate_per_hour);
                        self.events
                            .push(first, EventKind::PoissonCandidate { template: idx as u32 });
                    }
                }
            }
        }
    }

    fn next_poisson_gap(&mut self, base_rate_per_hour: f64) -> f64 {
        // Thinning: candidates at the max rate, accepted by the seasonal
        // factor at the candidate's time.
        let max_rate = base_rate_per_hour * self.workload.seasonality.max_factor();
        self.now_s + exponential(&mut self.rng, max_rate / 3600.0)
    }

    fn on_poisson_candidate(&mut self, template: usize) {
        let Some(tpl) = self.workload.templates.get(template) else {
            return;
        };
        let Schedule::Poisson { rate_per_hour } = tpl.schedule else {
            return; // candidates are only scheduled for Poisson templates
        };
        // Chain the next candidate first.
        let next = self.next_poisson_gap(rate_per_hour);
        self.events
            .push(next, EventKind::PoissonCandidate { template: template as u32 });
        // Accept-reject against the seasonal envelope.
        let season = &self.workload.seasonality;
        let accept_p = season.factor(self.now_s / 3600.0) / season.max_factor();
        if self.rng.gen_range(0.0..1.0) < accept_p {
            self.on_job_arrival(template);
        }
    }

    fn on_job_arrival(&mut self, template: usize) {
        let Some(spec) = self.workload.templates.get(template) else {
            return;
        };
        let is_adhoc = matches!(spec.schedule, Schedule::Poisson { .. });
        let logged = if is_adhoc {
            self.adhoc_seen += 1;
            self.adhoc_job_log_every > 0
                && self.adhoc_seen.is_multiple_of(self.adhoc_job_log_every as u64)
        } else {
            true
        };
        let job = JobRun {
            template,
            arrival_s: self.now_s,
            stage: 0,
            remaining_in_stage: 0,
            total_tasks: 0,
            logged,
            stage_max: (f64::NEG_INFINITY, 0, u32::MAX),
        };
        let job_idx = 'alloc: {
            if let Some(i) = self.job_free.pop() {
                if let Some(slot) = self.jobs.get_mut(i as usize) {
                    *slot = job;
                    break 'alloc i;
                }
            }
            self.jobs.push(job);
            (self.jobs.len() - 1) as u32
        };
        self.jobs_active += 1;
        self.release_stage(job_idx);
    }

    // ------------------------------------------------------------------
    // Stages and tasks
    // ------------------------------------------------------------------

    fn release_stage(&mut self, job_idx: u32) {
        loop {
            let Some(job) = self.jobs.get(job_idx as usize) else {
                return;
            };
            let (template, stage_idx) = (job.template, job.stage);
            let Some(tpl) = self.workload.templates.get(template) else {
                return;
            };
            let n_stages = tpl.stages.len();
            let Some(stage) = tpl.stages.get(stage_idx) else {
                return;
            };
            let stage = stage.clone();
            if stage.tasks == 0 {
                // Federated workload slicing can round a small stage down
                // to zero tasks; an empty stage completes instantly (and
                // contributes no critical path).
                if stage_idx + 1 < n_stages {
                    if let Some(job) = self.jobs.get_mut(job_idx as usize) {
                        job.stage = stage_idx + 1;
                    }
                    continue;
                }
                self.complete_job(job_idx);
                return;
            }
            if let Some(job) = self.jobs.get_mut(job_idx as usize) {
                job.remaining_in_stage = stage.tasks;
                job.total_tasks += stage.tasks;
                job.stage_max = (f64::NEG_INFINITY, 0, u32::MAX);
            }
            for _ in 0..stage.tasks {
                let base_cpu_s = lognormal_mean(&mut self.rng, stage.mean_cpu_s, stage.sigma);
                let input_gb = lognormal_mean(&mut self.rng, stage.mean_input_gb, 0.4);
                // Sampling into the task log is decided by creation order,
                // so it is unbiased w.r.t. queueing and placement.
                let sampled = self.task_log_every > 0
                    && self.tasks_created.is_multiple_of(self.task_log_every as u64);
                let task = TaskRun {
                    job: job_idx,
                    base_cpu_s,
                    input_gb,
                    io_heavy: stage.io_heavy,
                    task_type: stage.task_type,
                    machine: u32::MAX,
                    queue_wait_s: 0.0,
                    duration_s: 0.0,
                    cpu_time_s: 0.0,
                    log_index: if sampled { u32::MAX - 1 } else { u32::MAX },
                };
                let task_idx = self.alloc_task(task);
                self.tasks_created += 1;
                self.place_task(task_idx);
            }
            return;
        }
    }

    /// Finishes a job: logs it (if sampled and it ran any task at all)
    /// and recycles its slab slot.
    fn complete_job(&mut self, job_idx: u32) {
        let Some(job) = self.jobs.get(job_idx as usize) else {
            return;
        };
        if job.logged && job.total_tasks > 0 {
            let name = self
                .workload
                .templates
                .get(job.template)
                .map_or_else(String::new, |t| t.name.clone());
            self.out.jobs.push(JobRecord {
                template: job.template,
                template_name: name,
                arrival_hour: job.arrival_s / 3600.0,
                runtime_s: self.now_s - job.arrival_s,
                tasks: job.total_tasks,
            });
        }
        self.jobs_active = self.jobs_active.saturating_sub(1);
        self.job_free.push(job_idx);
    }

    /// The YARN-like placement policy of the reference engine, with the
    /// per-event configuration lookups served from [`ModelTables`].
    fn place_task(&mut self, task_idx: u32) {
        let hour = (self.now_s / 3600.0) as u64;
        while !self.free_set.is_empty() {
            let pick = self.rng.gen_range(0..self.free_set.len());
            let Some(&m32) = self.free_set.get(pick) else {
                return;
            };
            let m = m32 as usize;
            let Some((running, sku_idx, cfg_idx)) = self.mach.get_mut(m).map(|ms| {
                if ms.flighted && ms.cfg_hour != hour {
                    ms.cfg_idx = self.resolved.config_index(m, hour);
                    ms.cfg_hour = hour;
                }
                (ms.running, ms.sku_idx, ms.cfg_idx)
            }) else {
                self.free_remove(m);
                continue;
            };
            let Some(entry) = self.tables.entry(cfg_idx, sku_idx) else {
                self.free_remove(m);
                continue;
            };
            let max_running = entry.max_running;
            if running < max_running {
                self.start_task(m, task_idx, 0.0);
                let now_running = self.mach.get(m).map_or(0, |ms| ms.running);
                if now_running >= max_running {
                    self.free_remove(m);
                }
                return;
            }
            // Stale entry (flight lowered the max); evict and retry.
            self.free_remove(m);
        }
        // Cluster fully busy: queue as a low-priority container. Respect
        // per-machine queue caps (§5.3's tuning knob) by re-drawing a few
        // times; if the whole sample is capped out, force-enqueue at the
        // last draw — work is never dropped.
        let n = self.mach.len();
        let mut target = self.rng.gen_range(0..n);
        for _ in 0..10 {
            let (qlen, sku_idx, cfg_idx) = self.mach.get_mut(target).map_or((0, 0, 0), |ms| {
                if ms.flighted && ms.cfg_hour != hour {
                    ms.cfg_idx = self.resolved.config_index(target, hour);
                    ms.cfg_hour = hour;
                }
                (ms.queue.len(), ms.sku_idx, ms.cfg_idx)
            });
            let Some(entry) = self.tables.entry(cfg_idx, sku_idx) else {
                break;
            };
            let max_queue = entry.max_queue;
            if (qlen as u64) < u64::from(max_queue) {
                break;
            }
            target = self.rng.gen_range(0..n);
        }
        self.advance(target, self.now_s);
        if let Some(ms) = self.mach.get_mut(target) {
            ms.queue.push_back((task_idx, self.now_s));
        }
    }

    fn start_task(&mut self, m: usize, task_idx: u32, queue_wait_s: f64) {
        self.advance(m, self.now_s);
        let hour = (self.now_s / 3600.0) as u64;
        let Some((running, sku_idx, cfg_idx)) = self.mach.get_mut(m).map(|ms| {
            ms.running += 1;
            if ms.flighted && ms.cfg_hour != hour {
                ms.cfg_idx = self.resolved.config_index(m, hour);
                ms.cfg_hour = hour;
            }
            (ms.running, ms.sku_idx, ms.cfg_idx)
        }) else {
            return;
        };
        let Some(entry) = self.tables.entry(cfg_idx, sku_idx) else {
            return;
        };
        // Interference reflects the machine state including this task.
        let r = running as usize;
        let row = entry.rows.get(r).copied();
        let throttle = row.map_or(1.0, |row| row.throttle);
        let interference = row.map_or(1.0, |row| row.interference);
        let speed = entry.speed;
        let feature = entry.feature;
        let sc_io_mult = entry.sc_io_mult;
        let Some(task) = self.tasks.get_mut(task_idx as usize) else {
            return;
        };
        let sc_mult = if task.io_heavy { sc_io_mult } else { 1.0 };
        let st = machine::service_time_parts(
            task.base_cpu_s,
            speed,
            throttle,
            feature,
            interference,
            sc_mult,
        );
        task.machine = m as u32;
        task.queue_wait_s = queue_wait_s;
        task.duration_s = st.duration_s;
        task.cpu_time_s = st.cpu_time_s;
        let duration_s = st.duration_s;
        let lat_hour = hour.min(self.duration_hours - 1);
        let duration_hours = self.duration_hours;
        if let Some(acc) = self.accs.get_mut(m) {
            if let Some(cur) = acc.cur_for(lat_hour, duration_hours) {
                cur.latency_sum_s += duration_s;
                cur.latency_count += 1;
            }
        }
        let finish = self.now_s + duration_s;
        self.events.push(finish, EventKind::TaskFinish { task: task_idx });
    }

    fn on_task_finish(&mut self, task_idx: u32) {
        let Some(&task) = self.tasks.get(task_idx as usize) else {
            return;
        };
        let m = task.machine as usize;
        self.advance(m, self.now_s);
        let Some((sku_idx, sku_id, rack_idx)) = self.mach.get_mut(m).map(|ms| {
            ms.running = ms.running.saturating_sub(1);
            (ms.sku_idx, ms.sku_id, ms.rack_idx as usize)
        }) else {
            return;
        };
        self.tasks_completed += 1;

        // Attribute completion metrics to the hour of completion — via
        // the inline accumulator when it is already on that hour (the
        // overwhelmingly common case after `advance`), else the window.
        let hour = ((self.now_s / 3600.0) as u64).min(self.duration_hours - 1);
        let duration_hours = self.duration_hours;
        if let Some(acc) = self.accs.get_mut(m) {
            if let Some(cur) = acc.cur_for(hour, duration_hours) {
                cur.tasks_finished += 1;
                cur.data_read_gb += task.input_gb;
                cur.exec_time_s += task.duration_s;
                cur.cpu_time_s += task.cpu_time_s;
            }
        }

        // Exact counters: dense increments, folded into the BTreeMaps at
        // the end of the run (`fold_counters`).
        let n_types = TaskType::ALL.len();
        let ti = Self::type_idx(task.task_type);
        if let Some(c) = self.cnt_sku.get_mut(sku_idx) {
            *c += 1;
        }
        if let Some(c) = self.cnt_sku_type.get_mut(sku_idx * n_types + ti) {
            *c += 1;
        }
        if let Some(c) = self.cnt_rack_type.get_mut(rack_idx * n_types + ti) {
            *c += 1;
        }
        let mut log_index = u32::MAX;
        if task.log_index == u32::MAX - 1 {
            // The sampled log wants fields the hot path doesn't: the
            // machine's identity and its active software config.
            let Some(&mach_info) = self.machines_info.get(m) else {
                return;
            };
            let cfg_hour = (self.now_s / 3600.0) as u64;
            let sc = self.resolved.config_at(m, cfg_hour).sc;
            log_index = u32::try_from(self.out.tasks.len()).unwrap_or(u32::MAX);
            let template = if task.job == BACKLOG_JOB {
                usize::MAX
            } else {
                self.jobs.get(task.job as usize).map_or(usize::MAX, |j| j.template)
            };
            self.out.tasks.push(TaskRecord {
                template,
                task_type: task.task_type,
                machine: mach_info.id,
                sku: mach_info.sku,
                sc,
                rack: mach_info.rack,
                end_hour: self.now_s / 3600.0,
                duration_s: task.duration_s,
                queue_wait_s: task.queue_wait_s,
                on_critical_path: false,
            });
        }

        // Backlog tasks skip job bookkeeping and immediately respawn —
        // the closed loop that keeps opportunistic pressure constant.
        if task.job == BACKLOG_JOB {
            self.task_free.push(task_idx);
            // A backlog task can only exist if a backlog spec was set;
            // if not, degrade by not respawning.
            if let Some(backlog) = self.workload.backlog {
                self.spawn_backlog_task(&backlog);
            }
            self.serve_queue(m);
            return;
        }

        // Job bookkeeping.
        let job_idx = task.job;
        let Some(job) = self.jobs.get_mut(job_idx as usize) else {
            self.task_free.push(task_idx);
            self.serve_queue(m);
            return;
        };
        if self.now_s > job.stage_max.0 {
            job.stage_max = (self.now_s, sku_id.0, log_index);
        }
        job.remaining_in_stage = job.remaining_in_stage.saturating_sub(1);
        if job.remaining_in_stage == 0 {
            let (max_end, max_sku, max_log) = job.stage_max;
            let next_stage = job.stage + 1;
            let template = job.template;
            debug_assert!(max_end.is_finite());
            self.out.counters.record_critical(SkuId(max_sku));
            if max_log != u32::MAX {
                if let Some(rec) = self.out.tasks.get_mut(max_log as usize) {
                    rec.on_critical_path = true;
                }
            }
            let n_stages = self
                .workload
                .templates
                .get(template)
                .map_or(0, |t| t.stages.len());
            if next_stage < n_stages {
                if let Some(job) = self.jobs.get_mut(job_idx as usize) {
                    job.stage = next_stage;
                }
                self.release_stage(job_idx);
            } else {
                self.complete_job(job_idx);
            }
        }

        // Recycle the task slot, then serve the machine's queue.
        self.task_free.push(task_idx);
        self.serve_queue(m);
    }

    fn serve_queue(&mut self, m: usize) {
        loop {
            let hour = (self.now_s / 3600.0) as u64;
            let Some((running, queue_empty, sku_idx, cfg_idx)) = self.mach.get_mut(m).map(|ms| {
                if ms.flighted && ms.cfg_hour != hour {
                    ms.cfg_idx = self.resolved.config_index(m, hour);
                    ms.cfg_hour = hour;
                }
                (ms.running, ms.queue.is_empty(), ms.sku_idx, ms.cfg_idx)
            }) else {
                return;
            };
            let Some(entry) = self.tables.entry(cfg_idx, sku_idx) else {
                return;
            };
            let max_running = entry.max_running;
            if queue_empty || running >= max_running {
                // Advertise remaining capacity to the global scheduler.
                if running < max_running {
                    self.free_add(m);
                } else {
                    self.free_remove(m);
                }
                return;
            }
            self.advance(m, self.now_s);
            let popped = self.mach.get_mut(m).and_then(|ms| ms.queue.pop_front());
            let Some((task_idx, enqueued_s)) = popped else {
                return;
            };
            let wait = self.now_s - enqueued_s;
            // Attribute the wait to the hour the container *enqueued*:
            // that pairs each wait with the queue state that caused it
            // (same reasoning as latency → start-hour attribution).
            let wait_hour = ((enqueued_s / 3600.0) as u64).min(self.duration_hours - 1);
            if let Some(acc) = self.acc_mut(m, wait_hour) {
                acc.queue_waits_s.push(wait);
            }
            self.start_task(m, task_idx, wait);
        }
    }

    // ------------------------------------------------------------------
    // Piecewise-constant integration of machine state into hour buckets
    // ------------------------------------------------------------------

    /// Accumulator for machine `m`'s hour `hour`, growing the window on
    /// demand. `None` if the hour was already flushed (never happens for
    /// live attributions: the window watermark holds back any hour a
    /// queued task could still write) or lies past the horizon.
    fn acc_mut(&mut self, m: usize, hour: u64) -> Option<&mut HourAcc> {
        if hour >= self.duration_hours {
            return None;
        }
        let acc = self.accs.get_mut(m)?;
        if hour < acc.window_base {
            return None;
        }
        let idx = (hour - acc.window_base) as usize;
        while acc.window.len() <= idx {
            acc.window.push_back(HourAcc::default());
        }
        acc.window.get_mut(idx)
    }

    fn advance(&mut self, m: usize, to_s: f64) {
        let Some(ms) = self.mach.get_mut(m) else {
            return;
        };
        if to_s <= ms.last_s {
            return;
        }
        let running_f = f64::from(ms.running);
        let queue_len_f = ms.queue.len() as f64;
        let r = ms.running as usize;
        let sku_idx = ms.sku_idx;
        let flighted = ms.flighted;
        let mut t = ms.last_s;
        ms.last_s = to_s;
        let Some(acc) = self.accs.get_mut(m) else {
            return;
        };
        while t < to_s {
            let hour = (t / 3600.0) as u64;
            let hour_end = (hour as f64 + 1.0) * 3600.0;
            let seg_end = hour_end.min(to_s);
            let dt = seg_end - t;
            // Skip hours past the horizon or already flushed (the window
            // watermark guarantees live hours are never flushed early).
            if hour < self.duration_hours && hour >= acc.window_base {
                // Config can change at hour granularity (flights), so
                // flighted machines re-resolve when the segment's hour
                // moves off the cached one.
                if flighted && ms.cfg_hour != hour {
                    ms.cfg_idx = self.resolved.config_index(m, hour);
                    ms.cfg_hour = hour;
                }
                let cfg_idx = ms.cfg_idx;
                let row = self
                    .tables
                    .entry(cfg_idx, sku_idx)
                    .and_then(|e| e.rows.get(r));
                if let Some(&row) = row {
                    if acc.cur_hour != hour {
                        acc.spill_cur();
                        acc.cur_hour = hour;
                    }
                    acc.cur.container_seconds += running_f * dt;
                    acc.cur.util_seconds += row.util * dt;
                    acc.cur.power_joules += row.power * dt;
                    acc.cur.cores_seconds += row.cores * dt;
                    acc.cur.ram_seconds += row.ram * dt;
                    acc.cur.ssd_seconds += row.ssd * dt;
                    acc.cur.network_seconds += row.net * dt;
                    acc.cur.queue_len_seconds += queue_len_f * dt;
                }
            }
            t = seg_end;
        }
    }

    // ------------------------------------------------------------------
    // Windowed telemetry emission
    // ------------------------------------------------------------------

    /// Flushes all machine-hours completed before the window boundary:
    /// advances every machine to the boundary (finalizing integration),
    /// converts completed accumulators to records in (machine, hour)
    /// order, and streams them into the output store.
    fn emit_window(&mut self, boundary_s: f64) {
        let boundary_hour = (boundary_s / 3600.0) as u64;
        // Hour `duration - 1` is special: events scheduled at exactly the
        // end of the run still attribute to it, so it only flushes in the
        // final flush.
        let limit = boundary_hour.min(self.duration_hours.saturating_sub(1));
        for m in 0..self.mach.len() {
            self.advance(m, boundary_s);
        }
        for m in 0..self.mach.len() {
            self.flush_machine(m, limit, true);
        }
        self.ingest_records();
    }

    /// Converts machine `m`'s completed hours `< limit_hour` into
    /// telemetry records. With `respect_queue`, hours a queued container
    /// could still record a wait into (anything ≥ the queue front's
    /// enqueue hour) are held back until the queue drains past them.
    fn flush_machine(&mut self, m: usize, limit_hour: u64, respect_queue: bool) {
        let Some(&info) = self.machines_info.get(m) else {
            return;
        };
        let Some(ms) = self.mach.get_mut(m) else {
            return;
        };
        let Some(macc) = self.accs.get_mut(m) else {
            return;
        };
        let mut limit = limit_hour;
        if respect_queue {
            if let Some(&(_, enqueued_s)) = ms.queue.front() {
                limit = limit.min((enqueued_s / 3600.0) as u64);
            }
        }
        // An hour about to flush may still sit in the inline accumulator.
        if macc.cur_hour < limit {
            macc.spill_cur();
        }
        while macc.window_base < limit {
            let hour = macc.window_base;
            let mut acc = macc.window.pop_front().unwrap_or_default();
            macc.window_base += 1;
            let cfg = self.resolved.config_at(m, hour);
            let p99 = if acc.queue_waits_s.is_empty() {
                0.0
            } else {
                acc.queue_waits_s.sort_by(f64::total_cmp);
                percentile_sorted(&acc.queue_waits_s, 99.0)
            };
            // Small measurement noise on resource gauges so the §6
            // regressions see realistic residuals. Keyed by
            // (machine, hour, lane): emission order does not matter.
            let noise = |lane: u32| gauge_noise_at(self.seed, info.id.0, hour, lane);
            let metrics = MetricValues {
                total_data_read_gb: acc.data_read_gb,
                tasks_finished: acc.tasks_finished as f64,
                task_exec_time_s: acc.exec_time_s,
                cpu_time_s: acc.cpu_time_s,
                cpu_utilization: acc.util_seconds / 3600.0 * 100.0,
                avg_running_containers: acc.container_seconds / 3600.0,
                avg_task_latency_s: if acc.latency_count > 0 {
                    acc.latency_sum_s / acc.latency_count as f64
                } else {
                    0.0
                },
                queued_containers: acc.queue_len_seconds / 3600.0,
                queue_latency_p99_ms: p99 * 1000.0,
                power_draw_w: acc.power_joules / 3600.0,
                ssd_used_gb: acc.ssd_seconds / 3600.0 * noise(0),
                ram_used_gb: acc.ram_seconds / 3600.0 * noise(1),
                cores_used: acc.cores_seconds / 3600.0 * noise(2),
                network_used_gbps: acc.network_seconds / 3600.0 * noise(3),
            };
            self.records.push(MachineHourRecord {
                machine: info.id,
                group: GroupKey::new(info.sku, cfg.sc),
                hour,
                metrics,
            });
        }
    }

    /// Streams the pending record batch into the output store through
    /// the validating ingest path (the same non-finite filter CSV ingest
    /// applies), counting rejects instead of smuggling them.
    fn ingest_records(&mut self) {
        if self.records.is_empty() {
            return;
        }
        self.out.telemetry.reserve(self.records.len());
        let batch = std::mem::take(&mut self.records);
        let dropped = self.out.telemetry.extend_validated(batch);
        self.out.nonfinite_dropped += dropped as u64;
    }

    fn finish(mut self) -> SimOutput {
        let end = self.end_s;
        for m in 0..self.mach.len() {
            self.advance(m, end);
        }
        for ms in &self.mach {
            let in_flight = ms.running as u64 + ms.queue.len() as u64;
            self.out.tasks_in_flight_at_end += in_flight;
        }
        // Final flush: every remaining hour, queue watermark ignored —
        // leftover queued tasks never start, so they record no waits.
        for m in 0..self.mach.len() {
            self.flush_machine(m, self.duration_hours, false);
        }
        self.ingest_records();
        self.fold_counters();
        self.out.jobs_in_flight_at_end = self.jobs_active;
        debug_assert_eq!(
            self.tasks_created,
            self.tasks_completed + self.out.tasks_in_flight_at_end,
            "task conservation"
        );
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    fn quick_sim(hours: u64, seed: u64) -> SimOutput {
        run(&SimConfig::baseline(ClusterSpec::tiny(), hours, seed))
    }

    #[test]
    fn produces_full_telemetry_grid() {
        let out = quick_sim(6, 1);
        let spec = ClusterSpec::tiny();
        assert_eq!(
            out.telemetry.len(),
            spec.n_machines() * 6,
            "one record per machine per hour"
        );
        assert_eq!(out.telemetry.hour_span(), Some((0, 6)));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = quick_sim(4, 42);
        let b = quick_sim(4, 42);
        assert_eq!(a.telemetry.len(), b.telemetry.len());
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert_eq!(a.counters.total, b.counters.total);
        let pick = |o: &SimOutput| o.telemetry.iter().map(|r| r.metrics.cpu_utilization).sum::<f64>();
        assert_eq!(pick(&a), pick(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick_sim(4, 1);
        let b = quick_sim(4, 2);
        let pick = |o: &SimOutput| o.telemetry.iter().map(|r| r.metrics.cpu_utilization).sum::<f64>();
        assert_ne!(pick(&a), pick(&b));
    }

    #[test]
    fn utilization_in_target_band() {
        // The workload is calibrated for ~75% occupancy; the fleet-wide
        // mean CPU utilization should land in a broad band around the
        // paper's >60% (warm-up drags the first hours down).
        let out = quick_sim(24, 7);
        let utils: Vec<f64> = out
            .telemetry
            .by_hours(4, 24)
            .map(|r| r.metrics.cpu_utilization)
            .collect();
        let mean = utils.iter().sum::<f64>() / utils.len() as f64;
        assert!(
            (35.0..95.0).contains(&mean),
            "fleet mean utilization {mean}%"
        );
    }

    #[test]
    fn jobs_complete_and_have_positive_runtimes() {
        let out = quick_sim(24, 3);
        assert!(!out.jobs.is_empty());
        for job in &out.jobs {
            assert!(job.runtime_s > 0.0);
            assert!(job.tasks > 0);
            assert!(job.arrival_hour >= 0.0);
        }
        // Recurring templates produce their scheduled counts (hourly
        // ingest: ~23 completed instances in 24h).
        let ingest = out.job_runtimes("ingest-hourly");
        assert!(ingest.len() >= 15, "got {}", ingest.len());
    }

    #[test]
    fn task_conservation() {
        let out = quick_sim(8, 11);
        // counters.total counts completed tasks; in-flight are the rest.
        assert!(out.counters.total > 0);
        assert!(out.tasks_in_flight_at_end < out.counters.total / 2);
    }

    #[test]
    fn older_skus_run_hotter() {
        // Figure 2's right panel: the manual baseline pushes old SKUs
        // to higher utilization.
        let out = quick_sim(24, 5);
        let spec = ClusterSpec::tiny();
        let util_of = |sku: u16| {
            let recs: Vec<f64> = out
                .telemetry
                .iter()
                .filter(|r| r.group.sku.0 == sku && r.hour >= 4)
                .map(|r| r.metrics.cpu_utilization)
                .collect();
            recs.iter().sum::<f64>() / recs.len() as f64
        };
        let oldest = util_of(0);
        let newest = util_of(spec.skus.len() as u16 - 1);
        assert!(
            oldest > newest + 5.0,
            "Gen1.1 {oldest}% vs Gen4.1 {newest}%"
        );
    }

    #[test]
    fn tasks_on_old_skus_are_slower() {
        // Figure 5's premise.
        let out = quick_sim(24, 9);
        let dur_of = |sku: u16| {
            let d: Vec<f64> = out
                .tasks
                .iter()
                .filter(|t| t.sku.0 == sku)
                .map(|t| t.duration_s)
                .collect();
            assert!(!d.is_empty(), "no sampled tasks on sku {sku}");
            d.iter().sum::<f64>() / d.len() as f64
        };
        assert!(dur_of(0) > dur_of(5) * 1.3);
    }

    #[test]
    fn critical_path_skews_to_slow_machines() {
        let out = quick_sim(24, 13);
        let p_old = out
            .counters
            .critical_path_probability(kea_telemetry::SkuId(0))
            .expect("tasks ran on Gen 1.1");
        let p_new = out
            .counters
            .critical_path_probability(kea_telemetry::SkuId(5))
            .expect("tasks ran on Gen 4.1");
        assert!(
            p_old > p_new,
            "critical-path probability old {p_old} vs new {p_new}"
        );
    }

    #[test]
    fn task_types_spread_uniformly_across_skus() {
        // Figure 6: the scheduler's uniform placement makes the type mix
        // of each SKU resemble the global mix.
        let out = quick_sim(24, 17);
        let global: Vec<f64> = {
            let shares: Vec<[f64; 4]> = (0..6)
                .filter_map(|s| out.counters.type_shares_by_sku(kea_telemetry::SkuId(s)))
                .collect();
            assert_eq!(shares.len(), 6);
            (0..4)
                .map(|i| shares.iter().map(|s| s[i]).sum::<f64>() / shares.len() as f64)
                .collect()
        };
        for s in 0..6u16 {
            let shares = out
                .counters
                .type_shares_by_sku(kea_telemetry::SkuId(s))
                .expect("tasks on every SKU");
            for (share, g) in shares.iter().zip(&global) {
                assert!(
                    (share - g).abs() < 0.08,
                    "sku {s}: share {share} vs global {g}"
                );
            }
        }
    }

    #[test]
    fn power_draw_between_idle_and_peak() {
        let out = quick_sim(6, 19);
        let spec = ClusterSpec::tiny();
        for rec in out.telemetry.iter() {
            let sku = spec.sku(rec.group.sku);
            assert!(
                rec.metrics.power_draw_w >= sku.idle_power_w * 0.99,
                "power below idle"
            );
            assert!(
                rec.metrics.power_draw_w <= sku.peak_power_w * 1.01,
                "power above peak"
            );
        }
    }

    #[test]
    fn telemetry_values_are_sane() {
        let out = quick_sim(6, 23);
        for rec in out.telemetry.iter() {
            let m = &rec.metrics;
            assert!(m.is_finite());
            assert!(m.cpu_utilization >= 0.0 && m.cpu_utilization <= 100.0);
            assert!(m.avg_running_containers >= 0.0);
            assert!(m.tasks_finished >= 0.0);
            assert!(m.queued_containers >= 0.0);
            assert!(m.ssd_used_gb >= 0.0 && m.ram_used_gb >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_panics() {
        run(&SimConfig::baseline(ClusterSpec::tiny(), 0, 1));
    }

    #[test]
    fn emit_window_size_does_not_change_output() {
        // Streaming emission is an implementation detail: hourly windows,
        // daily windows, and one big final flush must produce identical
        // record multisets.
        let cfg = SimConfig::baseline(ClusterSpec::tiny(), 8, 29);
        let sorted = |o: &SimOutput| {
            let mut v: Vec<_> = o.telemetry.iter().cloned().collect();
            v.sort_by_key(|r| (r.machine.0, r.hour));
            v
        };
        let daily = run_with_exec(&cfg, ExecConfig { shards: 1, emit_window_hours: 24 });
        let hourly = run_with_exec(&cfg, ExecConfig { shards: 1, emit_window_hours: 1 });
        let coarse = run_with_exec(&cfg, ExecConfig { shards: 1, emit_window_hours: 0 });
        assert_eq!(sorted(&daily), sorted(&hourly));
        assert_eq!(sorted(&daily), sorted(&coarse));
        assert_eq!(daily.counters.total, hourly.counters.total);
        assert_eq!(daily.jobs.len(), hourly.jobs.len());
    }

    #[test]
    fn federated_output_is_worker_count_invariant() {
        let cfg = SimConfig::baseline(ClusterSpec::tiny(), 6, 31);
        let sorted = |o: &SimOutput| {
            let mut v: Vec<_> = o.telemetry.iter().cloned().collect();
            v.sort_by_key(|r| (r.machine.0, r.hour));
            v
        };
        let two = run_with_exec(&cfg, ExecConfig { shards: 2, emit_window_hours: 24 });
        let four = run_with_exec(&cfg, ExecConfig { shards: 4, emit_window_hours: 24 });
        let all = run_with_exec(&cfg, ExecConfig { shards: 0, emit_window_hours: 24 });
        assert_eq!(sorted(&two), sorted(&four));
        assert_eq!(sorted(&two), sorted(&all));
        assert_eq!(two.counters.total, four.counters.total);
        assert_eq!(two.counters.total, all.counters.total);
        assert_eq!(two.jobs.len(), four.jobs.len());
        // Full grid: every machine-hour present after the merge.
        let spec = ClusterSpec::tiny();
        assert_eq!(two.telemetry.len(), spec.n_machines() * 6);
    }

    #[test]
    fn zero_task_stages_complete_without_hanging_jobs() {
        // A workload slice can round stages down to zero tasks; jobs must
        // still run to completion (the reference engine's historical
        // behavior was to leave such jobs dangling forever).
        let cluster = ClusterSpec::tiny();
        let mut cfg = SimConfig::baseline(cluster, 6, 37);
        for tpl in &mut cfg.workload.templates {
            if tpl.name == "ingest-hourly" {
                // First stage empty, second real: the job must skip ahead.
                if let Some(s) = tpl.stages.first_mut() {
                    s.tasks = 0;
                }
            }
        }
        let out = run(&cfg);
        let ingest = out.job_runtimes("ingest-hourly");
        assert!(!ingest.is_empty(), "empty leading stage must not hang the job");
        for r in &ingest {
            assert!(*r > 0.0);
        }
        // And a job that is *all* empty stages completes instantly
        // without being logged (it ran nothing). Isolate the template so
        // no other in-flight work muddies the end-of-run accounting.
        let mut cfg2 = SimConfig::baseline(ClusterSpec::tiny(), 4, 41);
        cfg2.workload.templates.retain(|t| t.name == "ingest-hourly");
        cfg2.workload.backlog = None;
        for tpl in &mut cfg2.workload.templates {
            for s in &mut tpl.stages {
                s.tasks = 0;
            }
        }
        let out2 = run(&cfg2);
        assert!(out2.job_runtimes("ingest-hourly").is_empty());
        assert_eq!(out2.jobs_in_flight_at_end, 0, "no dangling jobs");
        assert_eq!(out2.counters.total, 0);
    }
}
