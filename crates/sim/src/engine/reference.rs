//! The reference discrete-event engine: a single global `BinaryHeap`
//! event queue driving the whole cluster.
//!
//! A classic event-driven core: job arrivals release stage tasks, a
//! YARN-like scheduler places each task on a uniformly random machine with
//! a free container slot (queueing it as a low-priority container when the
//! probed machines are full — §5.3), and task completions drive stage and
//! job completion. Machine state (running containers, queue length) is
//! integrated piecewise-constantly into per-machine-hour accumulators that
//! flush into a [`kea_telemetry::TelemetryStore`] at the end of the run.
//!
//! Determinism: all randomness flows through one seeded `StdRng`, so a
//! `SimConfig` fully determines the output.
//!
//! This engine is the **semantic oracle** for the fleet-scale engine in
//! the parent module: `engine::run` must reproduce [`run`] bit for bit
//! (same event order, same RNG draw sequence, same floating-point
//! expression order), and the agreement suite in `tests/` enforces it.
//! It stays simple — `ConfigPlan::effective` per lookup, telemetry
//! materialized whole — which is exactly why it does not scale to the
//! 300k-machine week the calendar-queue engine exists for.

// kea-lint: allow-file(index-in-library) — event-driven simulator hot loop; machine/task arena indices are maintained by this module and bounded by construction

use super::{percentile_sorted, EventKind, HourAcc, JobRun, SimConfig, TaskRun, BACKLOG_JOB};
use crate::machine::{self};
use crate::output::{JobRecord, SimOutput, TaskRecord};
use crate::rng::{exponential, gauge_noise_at, lognormal_mean};
use crate::workload::Schedule;
use kea_telemetry::{GroupKey, MachineHourRecord, MetricValues};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Runs a simulation to completion on the reference engine.
///
/// # Panics
/// Panics on nonsensical configs (zero duration, zero-`max_containers`
/// baselines) — these indicate caller bugs, not runtime conditions.
pub fn run(cfg: &SimConfig) -> SimOutput {
    assert!(cfg.duration_hours > 0, "duration must be positive");
    for (sku, mc) in &cfg.plan.base {
        assert!(
            mc.max_running_containers > 0,
            "max_running_containers must be positive for {sku:?}"
        );
    }
    Engine::new(cfg).run()
}

// ---------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------

/// One scheduled event. Time is stored as the IEEE-754 bit pattern of a
/// non-negative `f64`, whose unsigned integer order equals `total_cmp`
/// order — so `#[derive(Ord)]` on `(time_bits, seq, …)` gives the exact
/// earliest-first, FIFO-on-ties order with branch-free integer compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ev {
    time_bits: u64,
    seq: u64,
    kind: EventKind,
}

// ---------------------------------------------------------------------
// Per-machine state
// ---------------------------------------------------------------------

#[derive(Debug)]
struct MachState {
    sku_idx: usize,
    running: u32,
    queue: VecDeque<(u32, f64)>, // (task index, enqueue time)
    last_s: f64,
    hours: Vec<HourAcc>,
}

struct Engine<'a> {
    cfg: &'a SimConfig,
    rng: StdRng,
    now_s: f64,
    end_s: f64,
    seq: u64,
    events: BinaryHeap<Reverse<Ev>>,
    machines: Vec<MachState>,
    tasks: Vec<TaskRun>,
    task_free: Vec<u32>,
    jobs: Vec<JobRun>,
    job_free: Vec<u32>,
    out: SimOutput,
    tasks_created: u64,
    tasks_completed: u64,
    adhoc_seen: u64,
    jobs_active: u64,
    // Machines believed to have free container slots, as a swap-remove
    // index set for O(1) uniform sampling. Entries can be stale after
    // flight-driven max changes; `place_task` re-validates on pick.
    free_set: Vec<u32>,
    free_pos: Vec<u32>, // u32::MAX = not in set
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a SimConfig) -> Self {
        let hours = cfg.duration_hours as usize;
        let machines = cfg
            .cluster
            .machines
            .iter()
            .map(|m| MachState {
                sku_idx: cfg
                    .cluster
                    .skus
                    .iter()
                    .position(|s| s.id == m.sku)
                    // kea-lint: allow(panic-in-library) — construction-time check: cluster machines reference their own catalog
                    .expect("machine SKU in catalog"),
                running: 0,
                queue: VecDeque::new(),
                last_s: 0.0,
                hours: vec![HourAcc::default(); hours],
            })
            .collect();
        let n = cfg.cluster.machines.len();
        Engine {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            now_s: 0.0,
            end_s: cfg.duration_hours as f64 * 3600.0,
            seq: 0,
            events: BinaryHeap::new(),
            machines,
            tasks: Vec::new(),
            task_free: Vec::new(),
            jobs: Vec::new(),
            job_free: Vec::new(),
            out: SimOutput::default(),
            tasks_created: 0,
            tasks_completed: 0,
            adhoc_seen: 0,
            jobs_active: 0,
            free_set: (0..n as u32).collect(),
            free_pos: (0..n as u32).collect(),
        }
    }

    fn free_add(&mut self, m: usize) {
        if self.free_pos[m] == u32::MAX {
            // kea-lint: allow(truncating-as-cast) — fleet size < u32::MAX; u32 indices are the free-list layout choice
            self.free_pos[m] = self.free_set.len() as u32;
            self.free_set.push(m as u32);
        }
    }

    fn free_remove(&mut self, m: usize) {
        let pos = self.free_pos[m];
        if pos == u32::MAX {
            return;
        }
        // pos != MAX implies pos indexes the live set; degrade to a no-op
        // if the invariant is ever broken rather than aborting the sim.
        if pos as usize >= self.free_set.len() {
            return;
        }
        let Some(&last) = self.free_set.last() else {
            return;
        };
        // kea-lint: allow(panic-method-in-library) — pos < free_set.len() checked just above
        self.free_set.swap_remove(pos as usize);
        if last != m as u32 {
            self.free_pos[last as usize] = pos;
        }
        self.free_pos[m] = u32::MAX;
    }

    fn push_event(&mut self, time_s: f64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Ev {
            time_bits: time_s.to_bits(),
            seq: self.seq,
            kind,
        }));
    }

    fn run(mut self) -> SimOutput {
        self.seed_backlog();
        self.schedule_arrivals();
        while let Some(Reverse(ev)) = self.events.pop() {
            let time_s = f64::from_bits(ev.time_bits);
            if time_s > self.end_s {
                break;
            }
            self.now_s = time_s;
            match ev.kind {
                EventKind::JobArrival { template } => self.on_job_arrival(template as usize),
                EventKind::PoissonCandidate { template } => self.on_poisson_candidate(template as usize),
                EventKind::TaskFinish { task } => self.on_task_finish(task),
            }
        }
        self.flush()
    }

    // ------------------------------------------------------------------
    // Backlog (closed-loop opportunistic work)
    // ------------------------------------------------------------------

    fn seed_backlog(&mut self) {
        let Some(backlog) = self.cfg.workload.backlog else {
            return;
        };
        for _ in 0..backlog.concurrent_tasks {
            self.spawn_backlog_task(&backlog);
        }
    }

    fn spawn_backlog_task(&mut self, backlog: &crate::workload::BacklogSpec) {
        let base_cpu_s = lognormal_mean(&mut self.rng, backlog.mean_cpu_s, backlog.sigma);
        let input_gb = lognormal_mean(&mut self.rng, backlog.mean_input_gb, 0.4);
        let sampled = self.cfg.task_log_every > 0
            && self.tasks_created.is_multiple_of(self.cfg.task_log_every as u64);
        let task = TaskRun {
            job: BACKLOG_JOB,
            base_cpu_s,
            input_gb,
            io_heavy: backlog.io_heavy,
            task_type: backlog.task_type,
            machine: u32::MAX,
            queue_wait_s: 0.0,
            duration_s: 0.0,
            cpu_time_s: 0.0,
            log_index: if sampled { u32::MAX - 1 } else { u32::MAX },
        };
        let task_idx = self.alloc_task(task);
        self.tasks_created += 1;
        self.place_task(task_idx);
    }

    fn alloc_task(&mut self, task: TaskRun) -> u32 {
        match self.task_free.pop() {
            Some(i) => {
                self.tasks[i as usize] = task;
                i
            }
            None => {
                self.tasks.push(task);
                (self.tasks.len() - 1) as u32
            }
        }
    }

    // ------------------------------------------------------------------
    // Arrivals
    // ------------------------------------------------------------------

    fn schedule_arrivals(&mut self) {
        let duration_h = self.cfg.duration_hours as f64;
        for (idx, template) in self.cfg.workload.templates.iter().enumerate() {
            match template.schedule {
                Schedule::Recurring {
                    period_hours,
                    offset_hours,
                } => {
                    let mut t = offset_hours;
                    while t < duration_h {
                        self.push_event(t * 3600.0, EventKind::JobArrival { template: idx as u32 });
                        t += period_hours;
                    }
                }
                Schedule::Poisson { rate_per_hour } => {
                    if rate_per_hour > 0.0 {
                        let first = self.next_poisson_gap(rate_per_hour);
                        self.push_event(first, EventKind::PoissonCandidate { template: idx as u32 });
                    }
                }
            }
        }
    }

    fn next_poisson_gap(&mut self, base_rate_per_hour: f64) -> f64 {
        // Thinning: candidates at the max rate, accepted by the seasonal
        // factor at the candidate's time.
        let max_rate = base_rate_per_hour * self.cfg.workload.seasonality.max_factor();
        self.now_s + exponential(&mut self.rng, max_rate / 3600.0)
    }

    fn on_poisson_candidate(&mut self, template: usize) {
        let Schedule::Poisson { rate_per_hour } = self.cfg.workload.templates[template].schedule
        else {
            return; // candidates are only scheduled for Poisson templates
        };
        // Chain the next candidate first.
        let next = self.next_poisson_gap(rate_per_hour);
        self.push_event(next, EventKind::PoissonCandidate { template: template as u32 });
        // Accept-reject against the seasonal envelope.
        let season = &self.cfg.workload.seasonality;
        let accept_p = season.factor(self.now_s / 3600.0) / season.max_factor();
        if self.rng.gen_range(0.0..1.0) < accept_p {
            self.on_job_arrival(template);
        }
    }

    fn on_job_arrival(&mut self, template: usize) {
        let spec = &self.cfg.workload.templates[template];
        let is_adhoc = matches!(spec.schedule, Schedule::Poisson { .. });
        let logged = if is_adhoc {
            self.adhoc_seen += 1;
            self.cfg.adhoc_job_log_every > 0
                && self.adhoc_seen.is_multiple_of(self.cfg.adhoc_job_log_every as u64)
        } else {
            true
        };
        let job = JobRun {
            template,
            arrival_s: self.now_s,
            stage: 0,
            remaining_in_stage: 0,
            total_tasks: 0,
            logged,
            stage_max: (f64::NEG_INFINITY, 0, u32::MAX),
        };
        let job_idx = match self.job_free.pop() {
            Some(i) => {
                self.jobs[i as usize] = job;
                i
            }
            None => {
                self.jobs.push(job);
                (self.jobs.len() - 1) as u32
            }
        };
        self.jobs_active += 1;
        self.release_stage(job_idx);
    }

    // ------------------------------------------------------------------
    // Stages and tasks
    // ------------------------------------------------------------------

    fn release_stage(&mut self, job_idx: u32) {
        loop {
            let (template, stage_idx) = {
                let job = &self.jobs[job_idx as usize];
                (job.template, job.stage)
            };
            let n_stages = self.cfg.workload.templates[template].stages.len();
            let stage = self.cfg.workload.templates[template].stages[stage_idx].clone();
            if stage.tasks == 0 {
                // Federated workload slicing can round a small stage down
                // to zero tasks; an empty stage completes instantly (and
                // contributes no critical path).
                if stage_idx + 1 < n_stages {
                    self.jobs[job_idx as usize].stage = stage_idx + 1;
                    continue;
                }
                self.complete_job(job_idx);
                return;
            }
            {
                let job = &mut self.jobs[job_idx as usize];
                job.remaining_in_stage = stage.tasks;
                job.total_tasks += stage.tasks;
                job.stage_max = (f64::NEG_INFINITY, 0, u32::MAX);
            }
            for _ in 0..stage.tasks {
                let base_cpu_s = lognormal_mean(&mut self.rng, stage.mean_cpu_s, stage.sigma);
                let input_gb = lognormal_mean(&mut self.rng, stage.mean_input_gb, 0.4);
                // Sampling into the task log is decided by creation order, so
                // it is unbiased w.r.t. queueing and placement.
                let sampled = self.cfg.task_log_every > 0
                    && self.tasks_created.is_multiple_of(self.cfg.task_log_every as u64);
                let task = TaskRun {
                    job: job_idx,
                    base_cpu_s,
                    input_gb,
                    io_heavy: stage.io_heavy,
                    task_type: stage.task_type,
                    machine: u32::MAX,
                    queue_wait_s: 0.0,
                    duration_s: 0.0,
                    cpu_time_s: 0.0,
                    log_index: if sampled { u32::MAX - 1 } else { u32::MAX },
                };
                let task_idx = self.alloc_task(task);
                self.tasks_created += 1;
                self.place_task(task_idx);
            }
            return;
        }
    }

    /// Finishes a job: logs it (if sampled and it ran any task at all)
    /// and recycles its slab slot.
    fn complete_job(&mut self, job_idx: u32) {
        let job = self.jobs[job_idx as usize].clone();
        if job.logged && job.total_tasks > 0 {
            let name = self.cfg.workload.templates[job.template].name.clone();
            self.out.jobs.push(JobRecord {
                template: job.template,
                template_name: name,
                arrival_hour: job.arrival_s / 3600.0,
                runtime_s: self.now_s - job.arrival_s,
                tasks: job.total_tasks,
            });
        }
        self.jobs_active -= 1;
        self.job_free.push(job_idx);
    }

    /// The YARN-like placement policy: uniformly random over machines
    /// with a free container slot — the monolithic resource manager knows
    /// global capacity, and §3.2's Level-IV abstraction rests on exactly
    /// this uniformity. When *no* machine has capacity ("all machines in
    /// the cluster reach the maximum number of running containers", §5.3)
    /// the task queues as a low-priority container on a uniformly random
    /// machine.
    fn place_task(&mut self, task_idx: u32) {
        let hour = self.now_s / 3600.0;
        while !self.free_set.is_empty() {
            let pick = self.rng.gen_range(0..self.free_set.len());
            let m = self.free_set[pick] as usize;
            let info = self.cfg.cluster.machines[m];
            let cfg = self.cfg.plan.effective(info.id, info.sku, hour);
            if self.machines[m].running < cfg.max_running_containers {
                self.start_task(m, task_idx, 0.0);
                if self.machines[m].running >= cfg.max_running_containers {
                    self.free_remove(m);
                }
                return;
            }
            // Stale entry (flight lowered the max); evict and retry.
            self.free_remove(m);
        }
        // Cluster fully busy: queue as a low-priority container. Respect
        // per-machine queue caps (§5.3's tuning knob) by re-drawing a few
        // times; if the whole sample is capped out, force-enqueue at the
        // last draw — work is never dropped.
        let n = self.machines.len();
        let hour = self.now_s / 3600.0;
        let mut target = self.rng.gen_range(0..n);
        for _ in 0..10 {
            let info = self.cfg.cluster.machines[target];
            let cfg = self.cfg.plan.effective(info.id, info.sku, hour);
            // kea-lint: allow(truncating-as-cast) — queue length is capped by max_queue_length: u32 well before overflow
            if (self.machines[target].queue.len() as u32) < cfg.max_queue_length {
                break;
            }
            target = self.rng.gen_range(0..n);
        }
        self.advance(target, self.now_s);
        self.machines[target].queue.push_back((task_idx, self.now_s));
    }

    fn start_task(&mut self, m: usize, task_idx: u32, queue_wait_s: f64) {
        self.advance(m, self.now_s);
        // `spec` is a reborrow of the run config, independent of `self`'s
        // other fields — this keeps the borrows below disjoint.
        let spec: &SimConfig = self.cfg;
        let mach = &mut self.machines[m];
        mach.running += 1;
        let running = mach.running;
        let sku = &spec.cluster.skus[mach.sku_idx];
        let info = spec.cluster.machines[m];
        let cfg = spec.plan.effective(info.id, sku.id, self.now_s / 3600.0);
        let sc = crate::catalog::default_scs_static(cfg.sc);
        // Interference reflects the machine state including this task.
        let util = machine::cpu_utilization(sku, running);
        let task = &mut self.tasks[task_idx as usize];
        let st = machine::service_time(sku, sc, &cfg, task.base_cpu_s, task.io_heavy, util);
        task.machine = m as u32;
        task.queue_wait_s = queue_wait_s;
        task.duration_s = st.duration_s;
        task.cpu_time_s = st.cpu_time_s;
        let duration_s = st.duration_s;
        let hour = ((self.now_s / 3600.0) as usize).min(self.cfg.duration_hours as usize - 1);
        let acc = &mut self.machines[m].hours[hour];
        acc.latency_sum_s += duration_s;
        acc.latency_count += 1;
        let finish = self.now_s + duration_s;
        self.push_event(finish, EventKind::TaskFinish { task: task_idx });
    }

    fn on_task_finish(&mut self, task_idx: u32) {
        let task = self.tasks[task_idx as usize];
        let m = task.machine as usize;
        self.advance(m, self.now_s);
        self.machines[m].running -= 1;
        self.tasks_completed += 1;

        // Attribute completion metrics to the hour of completion.
        let hour = ((self.now_s / 3600.0) as usize).min(self.cfg.duration_hours as usize - 1);
        let acc = &mut self.machines[m].hours[hour];
        acc.tasks_finished += 1;
        acc.data_read_gb += task.input_gb;
        acc.exec_time_s += task.duration_s;
        acc.cpu_time_s += task.cpu_time_s;

        // Counters and sampled log.
        let mach_info = self.cfg.cluster.machines[m];
        let cfg = self
            .cfg
            .plan
            .effective(mach_info.id, mach_info.sku, self.now_s / 3600.0);
        self.out
            .counters
            .record(mach_info.sku, mach_info.rack, task.task_type);
        let mut log_index = u32::MAX;
        if task.log_index == u32::MAX - 1 {
            // kea-lint: allow(truncating-as-cast) — task log is sampled; u32 indices are the record-layout choice
            log_index = self.out.tasks.len() as u32;
            let template = if task.job == BACKLOG_JOB {
                usize::MAX
            } else {
                self.jobs[task.job as usize].template
            };
            self.out.tasks.push(TaskRecord {
                template,
                task_type: task.task_type,
                machine: mach_info.id,
                sku: mach_info.sku,
                sc: cfg.sc,
                rack: mach_info.rack,
                end_hour: self.now_s / 3600.0,
                duration_s: task.duration_s,
                queue_wait_s: task.queue_wait_s,
                on_critical_path: false,
            });
        }

        // Backlog tasks skip job bookkeeping and immediately respawn —
        // the closed loop that keeps opportunistic pressure constant.
        if task.job == BACKLOG_JOB {
            self.task_free.push(task_idx);
            // A backlog task can only exist if a backlog spec was set;
            // if not, degrade by not respawning.
            if let Some(backlog) = self.cfg.workload.backlog {
                self.spawn_backlog_task(&backlog);
            }
            self.serve_queue(m);
            return;
        }

        // Job bookkeeping.
        let job_idx = task.job;
        let stage_done = {
            let job = &mut self.jobs[job_idx as usize];
            if self.now_s > job.stage_max.0 {
                job.stage_max = (self.now_s, mach_info.sku.0, log_index);
            }
            job.remaining_in_stage -= 1;
            job.remaining_in_stage == 0
        };
        if stage_done {
            let (max_end, max_sku, max_log) = self.jobs[job_idx as usize].stage_max;
            debug_assert!(max_end.is_finite());
            self.out
                .counters
                .record_critical(kea_telemetry::SkuId(max_sku));
            if max_log != u32::MAX {
                self.out.tasks[max_log as usize].on_critical_path = true;
            }
            let n_stages =
                self.cfg.workload.templates[self.jobs[job_idx as usize].template].stages.len();
            let next_stage = self.jobs[job_idx as usize].stage + 1;
            if next_stage < n_stages {
                self.jobs[job_idx as usize].stage = next_stage;
                self.release_stage(job_idx);
            } else {
                self.complete_job(job_idx);
            }
        }

        // Recycle the task slot, then serve the machine's queue.
        self.task_free.push(task_idx);
        self.serve_queue(m);
    }

    fn serve_queue(&mut self, m: usize) {
        loop {
            let mach_info = self.cfg.cluster.machines[m];
            let cfg = self
                .cfg
                .plan
                .effective(mach_info.id, mach_info.sku, self.now_s / 3600.0);
            if self.machines[m].queue.is_empty()
                || self.machines[m].running >= cfg.max_running_containers
            {
                // Advertise remaining capacity to the global scheduler.
                if self.machines[m].running < cfg.max_running_containers {
                    self.free_add(m);
                } else {
                    self.free_remove(m);
                }
                return;
            }
            self.advance(m, self.now_s);
            // Non-empty checked at the top of the loop.
            let Some((task_idx, enqueued_s)) = self.machines[m].queue.pop_front() else {
                return;
            };
            let wait = self.now_s - enqueued_s;
            // Attribute the wait to the hour the container *enqueued*:
            // that pairs each wait with the queue state that caused it
            // (same reasoning as latency → start-hour attribution).
            let hour =
                ((enqueued_s / 3600.0) as usize).min(self.cfg.duration_hours as usize - 1);
            self.machines[m].hours[hour].queue_waits_s.push(wait);
            self.start_task(m, task_idx, wait);
        }
    }

    // ------------------------------------------------------------------
    // Piecewise-constant integration of machine state into hour buckets
    // ------------------------------------------------------------------

    fn advance(&mut self, m: usize, to_s: f64) {
        let mach_id = self.cfg.cluster.machines[m].id;
        let mach = &mut self.machines[m];
        if to_s <= mach.last_s {
            return;
        }
        let sku = &self.cfg.cluster.skus[mach.sku_idx];
        let running = mach.running;
        let queue_len = mach.queue.len() as f64;
        let util = machine::cpu_utilization(sku, running);
        let mut t = mach.last_s;
        while t < to_s {
            let hour = (t / 3600.0) as usize;
            let hour_end = (hour as f64 + 1.0) * 3600.0;
            let seg_end = hour_end.min(to_s);
            let dt = seg_end - t;
            if hour < mach.hours.len() {
                // Config can change at hour granularity (flights), so the
                // power path re-resolves per segment.
                let cfg = self.cfg.plan.effective(mach_id, sku.id, t / 3600.0);
                let sc = crate::catalog::default_scs_static(cfg.sc);
                let power = machine::power_draw(sku, &cfg, util);
                let res = machine::resource_usage(sku, sc, running);
                let acc = &mut mach.hours[hour];
                acc.container_seconds += running as f64 * dt;
                acc.util_seconds += util * dt;
                acc.power_joules += power * dt;
                acc.cores_seconds += res.cores_used * dt;
                acc.ram_seconds += res.ram_used_gb * dt;
                acc.ssd_seconds += res.ssd_used_gb * dt;
                acc.network_seconds += res.network_used_gbps * dt;
                acc.queue_len_seconds += queue_len * dt;
            }
            t = seg_end;
        }
        mach.last_s = to_s;
    }

    // ------------------------------------------------------------------
    // Final flush into telemetry records
    // ------------------------------------------------------------------

    fn flush(mut self) -> SimOutput {
        let end = self.end_s;
        for m in 0..self.machines.len() {
            self.advance(m, end);
        }
        let hours = self.cfg.duration_hours as usize;
        let mut records = Vec::with_capacity(self.machines.len() * hours);
        for (m, mach) in self.machines.iter_mut().enumerate() {
            let mach_info = self.cfg.cluster.machines[m];
            let in_flight = mach.running as u64 + mach.queue.len() as u64;
            self.out.tasks_in_flight_at_end += in_flight;
            for (hour, acc) in mach.hours.iter_mut().enumerate() {
                let cfg = self
                    .cfg
                    .plan
                    .effective(mach_info.id, mach_info.sku, hour as f64);
                let p99 = if acc.queue_waits_s.is_empty() {
                    0.0
                } else {
                    acc.queue_waits_s.sort_by(f64::total_cmp);
                    percentile_sorted(&acc.queue_waits_s, 99.0)
                };
                // Small measurement noise on resource gauges so the §6
                // regressions see realistic residuals. Keyed by
                // (machine, hour, lane) so any engine — whatever order it
                // emits records in — draws the identical perturbation.
                let noise =
                    |lane: u32| gauge_noise_at(self.cfg.seed, mach_info.id.0, hour as u64, lane);
                let metrics = MetricValues {
                    total_data_read_gb: acc.data_read_gb,
                    tasks_finished: acc.tasks_finished as f64,
                    task_exec_time_s: acc.exec_time_s,
                    cpu_time_s: acc.cpu_time_s,
                    cpu_utilization: acc.util_seconds / 3600.0 * 100.0,
                    avg_running_containers: acc.container_seconds / 3600.0,
                    avg_task_latency_s: if acc.latency_count > 0 {
                        acc.latency_sum_s / acc.latency_count as f64
                    } else {
                        0.0
                    },
                    queued_containers: acc.queue_len_seconds / 3600.0,
                    queue_latency_p99_ms: p99 * 1000.0,
                    power_draw_w: acc.power_joules / 3600.0,
                    ssd_used_gb: acc.ssd_seconds / 3600.0 * noise(0),
                    ram_used_gb: acc.ram_seconds / 3600.0 * noise(1),
                    cores_used: acc.cores_seconds / 3600.0 * noise(2),
                    network_used_gbps: acc.network_seconds / 3600.0 * noise(3),
                };
                records.push(MachineHourRecord {
                    machine: mach_info.id,
                    group: GroupKey::new(mach_info.sku, cfg.sc),
                    hour: hour as u64,
                    metrics,
                });
            }
        }
        // Ingest through the validating path (the same non-finite filter
        // CSV ingest applies), counting rejects instead of smuggling them.
        self.out.telemetry.reserve(records.len());
        let dropped = self.out.telemetry.extend_validated(records);
        self.out.nonfinite_dropped += dropped as u64;
        self.out.jobs_in_flight_at_end = self.jobs_active;
        debug_assert_eq!(
            self.tasks_created,
            self.tasks_completed + self.out.tasks_in_flight_at_end,
            "task conservation"
        );
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    #[test]
    fn reference_smoke() {
        let out = run(&SimConfig::baseline(ClusterSpec::tiny(), 4, 42));
        let spec = ClusterSpec::tiny();
        assert_eq!(out.telemetry.len(), spec.n_machines() * 4);
        assert!(out.counters.total > 0);
        assert_eq!(out.nonfinite_dropped, 0);
        // Determinism.
        let again = run(&SimConfig::baseline(ClusterSpec::tiny(), 4, 42));
        assert_eq!(out.counters.total, again.counters.total);
    }
}
