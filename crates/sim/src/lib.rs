//! A discrete-event, Cosmos-like big-data cluster simulator.
//!
//! The KEA paper's evaluation runs on Microsoft's proprietary Cosmos fleet
//! (300k+ machines). This crate is the substitution mandated by the
//! reproduction: a simulator whose *ground-truth dynamics* encode the same
//! qualitative relationships KEA's models must learn from telemetry, so
//! the full KEA pipeline (Performance Monitor → What-if Engine →
//! Optimizer → Flighting → Deployment) exercises identical code paths.
//!
//! Components:
//!
//! * [`catalog`] — SKU generations (Gen 1.1 … Gen 4.1) and software
//!   configurations (SC1/SC2), with the manual-tuning baseline encoded;
//! * [`cluster`] — machines, racks, sub-clusters;
//! * [`config`] — tunable machine configuration, flighting overrides;
//! * [`workload`] — recurring job templates, stage DAGs, diurnal/weekly
//!   seasonality, TPC-derived benchmark templates;
//! * [`machine`] — the per-machine performance model (utilization,
//!   interference, power, throttling, SSD/RAM usage);
//! * [`engine`] — the fleet-scale event loop (calendar queue, model
//!   tables, windowed telemetry, optional federated sharding) plus the
//!   preserved reference engine it must agree with;
//! * [`calendar`] — the hierarchical calendar event queue;
//! * [`output`] — job/task logs and exact counters;
//! * [`rng`] — seeded distribution samplers.
//!
//! # Example
//!
//! ```
//! use kea_sim::{run, ClusterSpec, SimConfig};
//!
//! let out = run(&SimConfig::baseline(ClusterSpec::tiny(), 4, 42));
//! assert_eq!(out.telemetry.len(), ClusterSpec::tiny().n_machines() * 4);
//! assert!(out.counters.total > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod calendar;
pub mod catalog;
pub mod cluster;
pub mod config;
pub mod engine;
pub mod machine;
pub mod output;
pub mod rng;
pub mod workload;

pub use calendar::CalendarQueue;
pub use catalog::{default_scs, default_skus, ScSpec, SkuSpec, SC1, SC2};
pub use cluster::{ClusterSpec, Machine, RackId, SubClusterId, MACHINES_PER_RACK};
pub use config::{ConfigPatch, ConfigPlan, ExecConfig, Flight, MachineConfig};
pub use engine::{run, run_with_exec, SimConfig};
pub use output::{JobRecord, SimOutput, TaskCounters, TaskRecord};
pub use workload::{JobTemplate, Schedule, Seasonality, StageSpec, TaskType, WorkloadSpec};
