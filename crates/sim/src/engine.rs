//! The discrete-event simulation engine.
//!
//! A classic event-driven core: job arrivals release stage tasks, a
//! YARN-like scheduler places each task on a uniformly random machine with
//! a free container slot (queueing it as a low-priority container when the
//! probed machines are full — §5.3), and task completions drive stage and
//! job completion. Machine state (running containers, queue length) is
//! integrated piecewise-constantly into per-machine-hour accumulators that
//! flush into a [`kea_telemetry::TelemetryStore`] at the end of the run.
//!
//! Determinism: all randomness flows through one seeded `StdRng`, so a
//! `SimConfig` fully determines the output.

// kea-lint: allow-file(index-in-library) — event-driven simulator hot loop; machine/task arena indices are maintained by this module and bounded by construction

use crate::cluster::ClusterSpec;
use crate::config::ConfigPlan;
use crate::machine::{self};
use crate::output::{JobRecord, SimOutput, TaskRecord};
use crate::rng::{exponential, lognormal_mean, normal};
use crate::workload::{Schedule, TaskType, WorkloadSpec};
use kea_telemetry::{GroupKey, MachineHourRecord, MachineId, MetricValues};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, VecDeque};

/// Full specification of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster topology and SKU catalog.
    pub cluster: ClusterSpec,
    /// Workload templates and seasonality.
    pub workload: WorkloadSpec,
    /// Configuration plan (baselines + flights).
    pub plan: ConfigPlan,
    /// Simulated duration in hours.
    pub duration_hours: u64,
    /// RNG seed; equal configs with equal seeds give identical outputs.
    pub seed: u64,
    /// Sample every Nth completed task into the task log (0 disables).
    pub task_log_every: u32,
    /// Log every Nth Poisson-scheduled (ad-hoc) job; recurring jobs are
    /// always logged. 1 logs everything.
    pub adhoc_job_log_every: u32,
}

impl SimConfig {
    /// A ready-to-run baseline: the given cluster under manual-tuning
    /// defaults (SC1, no capping, Feature off) with the default workload
    /// at 75% target occupancy.
    pub fn baseline(cluster: ClusterSpec, duration_hours: u64, seed: u64) -> Self {
        let workload = WorkloadSpec::default_for(&cluster, 0.75);
        let plan = ConfigPlan::baseline(&cluster.skus, crate::catalog::SC1);
        SimConfig {
            cluster,
            workload,
            plan,
            duration_hours,
            seed,
            task_log_every: 10,
            adhoc_job_log_every: 8,
        }
    }
}

/// Runs a simulation to completion.
///
/// # Panics
/// Panics on nonsensical configs (zero duration, zero-`max_containers`
/// baselines) — these indicate caller bugs, not runtime conditions.
pub fn run(cfg: &SimConfig) -> SimOutput {
    assert!(cfg.duration_hours > 0, "duration must be positive");
    for (sku, mc) in &cfg.plan.base {
        assert!(
            mc.max_running_containers > 0,
            "max_running_containers must be positive for {sku:?}"
        );
    }
    Engine::new(cfg).run()
}

// ---------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    JobArrival { template: usize },
    PoissonCandidate { template: usize },
    TaskFinish { task: u32 },
}

#[derive(Debug, Clone, Copy)]
struct Ev {
    time_s: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.time_s == other.time_s && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time_s
            .total_cmp(&self.time_s)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// ---------------------------------------------------------------------
// Per-machine accumulation
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct HourAcc {
    container_seconds: f64,
    util_seconds: f64,
    power_joules: f64,
    cores_seconds: f64,
    ram_seconds: f64,
    ssd_seconds: f64,
    network_seconds: f64,
    queue_len_seconds: f64,
    tasks_finished: u32,
    data_read_gb: f64,
    exec_time_s: f64,
    cpu_time_s: f64,
    // Latency is attributed to the hour a task *starts*, pairing each
    // observation with the utilization that caused it; throughput
    // metrics are attributed to the completion hour.
    latency_sum_s: f64,
    latency_count: u32,
    queue_waits_s: Vec<f64>,
}

#[derive(Debug)]
struct MachState {
    sku_idx: usize,
    running: u32,
    queue: VecDeque<(u32, f64)>, // (task index, enqueue time)
    last_s: f64,
    hours: Vec<HourAcc>,
}

// ---------------------------------------------------------------------
// Task / job slabs (free-listed: completed entries are recycled)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct TaskRun {
    job: u32,
    base_cpu_s: f64,
    input_gb: f64,
    io_heavy: bool,
    task_type: TaskType,
    machine: u32,
    queue_wait_s: f64,
    duration_s: f64,
    cpu_time_s: f64,
    log_index: u32, // u32::MAX = unsampled
}

#[derive(Debug, Clone)]
struct JobRun {
    template: usize,
    arrival_s: f64,
    stage: usize,
    remaining_in_stage: u32,
    total_tasks: u32,
    logged: bool,
    // Slowest task of the current stage so far: (end time, sku, log idx).
    stage_max: (f64, u16, u32),
}

struct Engine<'a> {
    cfg: &'a SimConfig,
    rng: StdRng,
    now_s: f64,
    end_s: f64,
    seq: u64,
    events: BinaryHeap<Ev>,
    machines: Vec<MachState>,
    tasks: Vec<TaskRun>,
    task_free: Vec<u32>,
    jobs: Vec<JobRun>,
    job_free: Vec<u32>,
    out: SimOutput,
    tasks_created: u64,
    tasks_completed: u64,
    adhoc_seen: u64,
    jobs_active: u64,
    // Machines believed to have free container slots, as a swap-remove
    // index set for O(1) uniform sampling. Entries can be stale after
    // flight-driven max changes; `place_task` re-validates on pick.
    free_set: Vec<u32>,
    free_pos: Vec<u32>, // u32::MAX = not in set
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a SimConfig) -> Self {
        let hours = cfg.duration_hours as usize;
        let machines = cfg
            .cluster
            .machines
            .iter()
            .map(|m| MachState {
                sku_idx: cfg
                    .cluster
                    .skus
                    .iter()
                    .position(|s| s.id == m.sku)
                    // kea-lint: allow(panic-in-library) — construction-time check: cluster machines reference their own catalog
                    .expect("machine SKU in catalog"),
                running: 0,
                queue: VecDeque::new(),
                last_s: 0.0,
                hours: vec![HourAcc::default(); hours],
            })
            .collect();
        let n = cfg.cluster.machines.len();
        Engine {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            now_s: 0.0,
            end_s: cfg.duration_hours as f64 * 3600.0,
            seq: 0,
            events: BinaryHeap::new(),
            machines,
            tasks: Vec::new(),
            task_free: Vec::new(),
            jobs: Vec::new(),
            job_free: Vec::new(),
            out: SimOutput::default(),
            tasks_created: 0,
            tasks_completed: 0,
            adhoc_seen: 0,
            jobs_active: 0,
            free_set: (0..n as u32).collect(),
            free_pos: (0..n as u32).collect(),
        }
    }

    fn free_add(&mut self, m: usize) {
        if self.free_pos[m] == u32::MAX {
            // kea-lint: allow(truncating-as-cast) — fleet size < u32::MAX; u32 indices are the free-list layout choice
            self.free_pos[m] = self.free_set.len() as u32;
            self.free_set.push(m as u32);
        }
    }

    fn free_remove(&mut self, m: usize) {
        let pos = self.free_pos[m];
        if pos == u32::MAX {
            return;
        }
        // pos != MAX implies pos indexes the live set; degrade to a no-op
        // if the invariant is ever broken rather than aborting the sim.
        if pos as usize >= self.free_set.len() {
            return;
        }
        let Some(&last) = self.free_set.last() else {
            return;
        };
        // kea-lint: allow(panic-method-in-library) — pos < free_set.len() checked just above
        self.free_set.swap_remove(pos as usize);
        if last != m as u32 {
            self.free_pos[last as usize] = pos;
        }
        self.free_pos[m] = u32::MAX;
    }

    fn push_event(&mut self, time_s: f64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Ev {
            time_s,
            seq: self.seq,
            kind,
        });
    }

    /// Sentinel job id marking closed-loop backlog tasks.
    const BACKLOG_JOB: u32 = u32::MAX;

    fn run(mut self) -> SimOutput {
        self.seed_backlog();
        self.schedule_arrivals();
        while let Some(ev) = self.events.pop() {
            if ev.time_s > self.end_s {
                break;
            }
            self.now_s = ev.time_s;
            match ev.kind {
                EventKind::JobArrival { template } => self.on_job_arrival(template),
                EventKind::PoissonCandidate { template } => self.on_poisson_candidate(template),
                EventKind::TaskFinish { task } => self.on_task_finish(task),
            }
        }
        self.flush()
    }

    // ------------------------------------------------------------------
    // Backlog (closed-loop opportunistic work)
    // ------------------------------------------------------------------

    fn seed_backlog(&mut self) {
        let Some(backlog) = self.cfg.workload.backlog else {
            return;
        };
        for _ in 0..backlog.concurrent_tasks {
            self.spawn_backlog_task(&backlog);
        }
    }

    fn spawn_backlog_task(&mut self, backlog: &crate::workload::BacklogSpec) {
        let base_cpu_s = lognormal_mean(&mut self.rng, backlog.mean_cpu_s, backlog.sigma);
        let input_gb = lognormal_mean(&mut self.rng, backlog.mean_input_gb, 0.4);
        let sampled = self.cfg.task_log_every > 0
            && self.tasks_created.is_multiple_of(self.cfg.task_log_every as u64);
        let task = TaskRun {
            job: Self::BACKLOG_JOB,
            base_cpu_s,
            input_gb,
            io_heavy: backlog.io_heavy,
            task_type: backlog.task_type,
            machine: u32::MAX,
            queue_wait_s: 0.0,
            duration_s: 0.0,
            cpu_time_s: 0.0,
            log_index: if sampled { u32::MAX - 1 } else { u32::MAX },
        };
        let task_idx = self.alloc_task(task);
        self.tasks_created += 1;
        self.place_task(task_idx);
    }

    fn alloc_task(&mut self, task: TaskRun) -> u32 {
        match self.task_free.pop() {
            Some(i) => {
                self.tasks[i as usize] = task;
                i
            }
            None => {
                self.tasks.push(task);
                (self.tasks.len() - 1) as u32
            }
        }
    }

    // ------------------------------------------------------------------
    // Arrivals
    // ------------------------------------------------------------------

    fn schedule_arrivals(&mut self) {
        let duration_h = self.cfg.duration_hours as f64;
        for (idx, template) in self.cfg.workload.templates.iter().enumerate() {
            match template.schedule {
                Schedule::Recurring {
                    period_hours,
                    offset_hours,
                } => {
                    let mut t = offset_hours;
                    while t < duration_h {
                        self.push_event(t * 3600.0, EventKind::JobArrival { template: idx });
                        t += period_hours;
                    }
                }
                Schedule::Poisson { rate_per_hour } => {
                    if rate_per_hour > 0.0 {
                        let first = self.next_poisson_gap(rate_per_hour);
                        self.push_event(first, EventKind::PoissonCandidate { template: idx });
                    }
                }
            }
        }
    }

    fn next_poisson_gap(&mut self, base_rate_per_hour: f64) -> f64 {
        // Thinning: candidates at the max rate, accepted by the seasonal
        // factor at the candidate's time.
        let max_rate = base_rate_per_hour * self.cfg.workload.seasonality.max_factor();
        self.now_s + exponential(&mut self.rng, max_rate / 3600.0)
    }

    fn on_poisson_candidate(&mut self, template: usize) {
        let Schedule::Poisson { rate_per_hour } = self.cfg.workload.templates[template].schedule
        else {
            return; // candidates are only scheduled for Poisson templates
        };
        // Chain the next candidate first.
        let next = self.next_poisson_gap(rate_per_hour);
        self.push_event(next, EventKind::PoissonCandidate { template });
        // Accept-reject against the seasonal envelope.
        let season = &self.cfg.workload.seasonality;
        let accept_p = season.factor(self.now_s / 3600.0) / season.max_factor();
        if self.rng.gen_range(0.0..1.0) < accept_p {
            self.on_job_arrival(template);
        }
    }

    fn on_job_arrival(&mut self, template: usize) {
        let spec = &self.cfg.workload.templates[template];
        let is_adhoc = matches!(spec.schedule, Schedule::Poisson { .. });
        let logged = if is_adhoc {
            self.adhoc_seen += 1;
            self.cfg.adhoc_job_log_every > 0
                && self.adhoc_seen.is_multiple_of(self.cfg.adhoc_job_log_every as u64)
        } else {
            true
        };
        let job = JobRun {
            template,
            arrival_s: self.now_s,
            stage: 0,
            remaining_in_stage: 0,
            total_tasks: 0,
            logged,
            stage_max: (f64::NEG_INFINITY, 0, u32::MAX),
        };
        let job_idx = match self.job_free.pop() {
            Some(i) => {
                self.jobs[i as usize] = job;
                i
            }
            None => {
                self.jobs.push(job);
                (self.jobs.len() - 1) as u32
            }
        };
        self.jobs_active += 1;
        self.release_stage(job_idx);
    }

    // ------------------------------------------------------------------
    // Stages and tasks
    // ------------------------------------------------------------------

    fn release_stage(&mut self, job_idx: u32) {
        let (template, stage_idx) = {
            let job = &self.jobs[job_idx as usize];
            (job.template, job.stage)
        };
        let stage = self.cfg.workload.templates[template].stages[stage_idx].clone();
        {
            let job = &mut self.jobs[job_idx as usize];
            job.remaining_in_stage = stage.tasks;
            job.total_tasks += stage.tasks;
            job.stage_max = (f64::NEG_INFINITY, 0, u32::MAX);
        }
        for _ in 0..stage.tasks {
            let base_cpu_s = lognormal_mean(&mut self.rng, stage.mean_cpu_s, stage.sigma);
            let input_gb = lognormal_mean(&mut self.rng, stage.mean_input_gb, 0.4);
            // Sampling into the task log is decided by creation order, so
            // it is unbiased w.r.t. queueing and placement.
            let sampled = self.cfg.task_log_every > 0
                && self.tasks_created.is_multiple_of(self.cfg.task_log_every as u64);
            let task = TaskRun {
                job: job_idx,
                base_cpu_s,
                input_gb,
                io_heavy: stage.io_heavy,
                task_type: stage.task_type,
                machine: u32::MAX,
                queue_wait_s: 0.0,
                duration_s: 0.0,
                cpu_time_s: 0.0,
                log_index: if sampled { u32::MAX - 1 } else { u32::MAX },
            };
            let task_idx = self.alloc_task(task);
            self.tasks_created += 1;
            self.place_task(task_idx);
        }
    }

    /// The YARN-like placement policy: uniformly random over machines
    /// with a free container slot — the monolithic resource manager knows
    /// global capacity, and §3.2's Level-IV abstraction rests on exactly
    /// this uniformity. When *no* machine has capacity ("all machines in
    /// the cluster reach the maximum number of running containers", §5.3)
    /// the task queues as a low-priority container on a uniformly random
    /// machine.
    fn place_task(&mut self, task_idx: u32) {
        let hour = self.now_s / 3600.0;
        while !self.free_set.is_empty() {
            let pick = self.rng.gen_range(0..self.free_set.len());
            let m = self.free_set[pick] as usize;
            let sku_id = self.cfg.cluster.machines[m].sku;
            let cfg = self
                .cfg
                .plan
                .effective(MachineId(m as u32), sku_id, hour);
            if self.machines[m].running < cfg.max_running_containers {
                self.start_task(m, task_idx, 0.0);
                if self.machines[m].running >= cfg.max_running_containers {
                    self.free_remove(m);
                }
                return;
            }
            // Stale entry (flight lowered the max); evict and retry.
            self.free_remove(m);
        }
        // Cluster fully busy: queue as a low-priority container. Respect
        // per-machine queue caps (§5.3's tuning knob) by re-drawing a few
        // times; if the whole sample is capped out, force-enqueue at the
        // last draw — work is never dropped.
        let n = self.machines.len();
        let hour = self.now_s / 3600.0;
        let mut target = self.rng.gen_range(0..n);
        for _ in 0..10 {
            let info = self.cfg.cluster.machines[target];
            let cfg = self.cfg.plan.effective(info.id, info.sku, hour);
            // kea-lint: allow(truncating-as-cast) — queue length is capped by max_queue_length: u32 well before overflow
            if (self.machines[target].queue.len() as u32) < cfg.max_queue_length {
                break;
            }
            target = self.rng.gen_range(0..n);
        }
        self.advance(target, self.now_s);
        self.machines[target].queue.push_back((task_idx, self.now_s));
    }

    fn start_task(&mut self, m: usize, task_idx: u32, queue_wait_s: f64) {
        self.advance(m, self.now_s);
        // `spec` is a reborrow of the run config, independent of `self`'s
        // other fields — this keeps the borrows below disjoint.
        let spec: &SimConfig = self.cfg;
        let mach = &mut self.machines[m];
        mach.running += 1;
        let running = mach.running;
        let sku = &spec.cluster.skus[mach.sku_idx];
        let cfg = spec
            .plan
            .effective(MachineId(m as u32), sku.id, self.now_s / 3600.0);
        let sc = crate::catalog::default_scs_static(cfg.sc);
        // Interference reflects the machine state including this task.
        let util = machine::cpu_utilization(sku, running);
        let task = &mut self.tasks[task_idx as usize];
        let st = machine::service_time(sku, sc, &cfg, task.base_cpu_s, task.io_heavy, util);
        task.machine = m as u32;
        task.queue_wait_s = queue_wait_s;
        task.duration_s = st.duration_s;
        task.cpu_time_s = st.cpu_time_s;
        let duration_s = st.duration_s;
        let hour = ((self.now_s / 3600.0) as usize).min(self.cfg.duration_hours as usize - 1);
        let acc = &mut self.machines[m].hours[hour];
        acc.latency_sum_s += duration_s;
        acc.latency_count += 1;
        let finish = self.now_s + duration_s;
        self.push_event(finish, EventKind::TaskFinish { task: task_idx });
    }

    fn on_task_finish(&mut self, task_idx: u32) {
        let task = self.tasks[task_idx as usize];
        let m = task.machine as usize;
        self.advance(m, self.now_s);
        self.machines[m].running -= 1;
        self.tasks_completed += 1;

        // Attribute completion metrics to the hour of completion.
        let hour = ((self.now_s / 3600.0) as usize).min(self.cfg.duration_hours as usize - 1);
        let acc = &mut self.machines[m].hours[hour];
        acc.tasks_finished += 1;
        acc.data_read_gb += task.input_gb;
        acc.exec_time_s += task.duration_s;
        acc.cpu_time_s += task.cpu_time_s;

        // Counters and sampled log.
        let mach_info = self.cfg.cluster.machines[m];
        let cfg = self
            .cfg
            .plan
            .effective(mach_info.id, mach_info.sku, self.now_s / 3600.0);
        self.out
            .counters
            .record(mach_info.sku, mach_info.rack, task.task_type);
        let mut log_index = u32::MAX;
        if task.log_index == u32::MAX - 1 {
            // kea-lint: allow(truncating-as-cast) — task log is sampled; u32 indices are the record-layout choice
            log_index = self.out.tasks.len() as u32;
            let template = if task.job == Self::BACKLOG_JOB {
                usize::MAX
            } else {
                self.jobs[task.job as usize].template
            };
            self.out.tasks.push(TaskRecord {
                template,
                task_type: task.task_type,
                machine: mach_info.id,
                sku: mach_info.sku,
                sc: cfg.sc,
                rack: mach_info.rack,
                end_hour: self.now_s / 3600.0,
                duration_s: task.duration_s,
                queue_wait_s: task.queue_wait_s,
                on_critical_path: false,
            });
        }

        // Backlog tasks skip job bookkeeping and immediately respawn —
        // the closed loop that keeps opportunistic pressure constant.
        if task.job == Self::BACKLOG_JOB {
            self.task_free.push(task_idx);
            // A backlog task can only exist if a backlog spec was set;
            // if not, degrade by not respawning.
            if let Some(backlog) = self.cfg.workload.backlog {
                self.spawn_backlog_task(&backlog);
            }
            self.serve_queue(m);
            return;
        }

        // Job bookkeeping.
        let job_idx = task.job;
        let stage_done = {
            let job = &mut self.jobs[job_idx as usize];
            if self.now_s > job.stage_max.0 {
                job.stage_max = (self.now_s, mach_info.sku.0, log_index);
            }
            job.remaining_in_stage -= 1;
            job.remaining_in_stage == 0
        };
        if stage_done {
            let (max_end, max_sku, max_log) = self.jobs[job_idx as usize].stage_max;
            debug_assert!(max_end.is_finite());
            self.out
                .counters
                .record_critical(kea_telemetry::SkuId(max_sku));
            if max_log != u32::MAX {
                self.out.tasks[max_log as usize].on_critical_path = true;
            }
            let n_stages =
                self.cfg.workload.templates[self.jobs[job_idx as usize].template].stages.len();
            let next_stage = self.jobs[job_idx as usize].stage + 1;
            if next_stage < n_stages {
                self.jobs[job_idx as usize].stage = next_stage;
                self.release_stage(job_idx);
            } else {
                let job = self.jobs[job_idx as usize].clone();
                if job.logged {
                    let name = self.cfg.workload.templates[job.template].name.clone();
                    self.out.jobs.push(JobRecord {
                        template: job.template,
                        template_name: name,
                        arrival_hour: job.arrival_s / 3600.0,
                        runtime_s: self.now_s - job.arrival_s,
                        tasks: job.total_tasks,
                    });
                }
                self.jobs_active -= 1;
                self.job_free.push(job_idx);
            }
        }

        // Recycle the task slot, then serve the machine's queue.
        self.task_free.push(task_idx);
        self.serve_queue(m);
    }

    fn serve_queue(&mut self, m: usize) {
        loop {
            let mach_info = self.cfg.cluster.machines[m];
            let cfg = self
                .cfg
                .plan
                .effective(mach_info.id, mach_info.sku, self.now_s / 3600.0);
            if self.machines[m].queue.is_empty()
                || self.machines[m].running >= cfg.max_running_containers
            {
                // Advertise remaining capacity to the global scheduler.
                if self.machines[m].running < cfg.max_running_containers {
                    self.free_add(m);
                } else {
                    self.free_remove(m);
                }
                return;
            }
            self.advance(m, self.now_s);
            // Non-empty checked at the top of the loop.
            let Some((task_idx, enqueued_s)) = self.machines[m].queue.pop_front() else {
                return;
            };
            let wait = self.now_s - enqueued_s;
            // Attribute the wait to the hour the container *enqueued*:
            // that pairs each wait with the queue state that caused it
            // (same reasoning as latency → start-hour attribution).
            let hour =
                ((enqueued_s / 3600.0) as usize).min(self.cfg.duration_hours as usize - 1);
            self.machines[m].hours[hour].queue_waits_s.push(wait);
            self.start_task(m, task_idx, wait);
        }
    }

    // ------------------------------------------------------------------
    // Piecewise-constant integration of machine state into hour buckets
    // ------------------------------------------------------------------

    fn advance(&mut self, m: usize, to_s: f64) {
        let mach = &mut self.machines[m];
        if to_s <= mach.last_s {
            return;
        }
        let sku = &self.cfg.cluster.skus[mach.sku_idx];
        let mach_id = MachineId(m as u32);
        let running = mach.running;
        let queue_len = mach.queue.len() as f64;
        let util = machine::cpu_utilization(sku, running);
        let mut t = mach.last_s;
        while t < to_s {
            let hour = (t / 3600.0) as usize;
            let hour_end = (hour as f64 + 1.0) * 3600.0;
            let seg_end = hour_end.min(to_s);
            let dt = seg_end - t;
            if hour < mach.hours.len() {
                // Config can change at hour granularity (flights), so the
                // power path re-resolves per segment.
                let cfg = self.cfg.plan.effective(mach_id, sku.id, t / 3600.0);
                let sc = crate::catalog::default_scs_static(cfg.sc);
                let power = machine::power_draw(sku, &cfg, util);
                let res = machine::resource_usage(sku, sc, running);
                let acc = &mut mach.hours[hour];
                acc.container_seconds += running as f64 * dt;
                acc.util_seconds += util * dt;
                acc.power_joules += power * dt;
                acc.cores_seconds += res.cores_used * dt;
                acc.ram_seconds += res.ram_used_gb * dt;
                acc.ssd_seconds += res.ssd_used_gb * dt;
                acc.network_seconds += res.network_used_gbps * dt;
                acc.queue_len_seconds += queue_len * dt;
            }
            t = seg_end;
        }
        mach.last_s = to_s;
    }

    // ------------------------------------------------------------------
    // Final flush into telemetry records
    // ------------------------------------------------------------------

    fn flush(mut self) -> SimOutput {
        let end = self.end_s;
        for m in 0..self.machines.len() {
            self.advance(m, end);
        }
        let mut noise_rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5eed_7e1e);
        for (m, mach) in self.machines.iter_mut().enumerate() {
            let mach_info = self.cfg.cluster.machines[m];
            let in_flight = mach.running as u64 + mach.queue.len() as u64;
            self.out.tasks_in_flight_at_end += in_flight;
            for (hour, acc) in mach.hours.iter_mut().enumerate() {
                let cfg = self
                    .cfg
                    .plan
                    .effective(mach_info.id, mach_info.sku, hour as f64);
                let p99 = if acc.queue_waits_s.is_empty() {
                    0.0
                } else {
                    acc.queue_waits_s
                        .sort_by(f64::total_cmp);
                    kea_stats_percentile(&acc.queue_waits_s, 99.0)
                };
                // Small measurement noise on resource gauges so the §6
                // regressions see realistic residuals.
                let gauge_noise = |rng: &mut StdRng| normal(rng, 1.0, 0.015).clamp(0.9, 1.1);
                let metrics = MetricValues {
                    total_data_read_gb: acc.data_read_gb,
                    tasks_finished: acc.tasks_finished as f64,
                    task_exec_time_s: acc.exec_time_s,
                    cpu_time_s: acc.cpu_time_s,
                    cpu_utilization: acc.util_seconds / 3600.0 * 100.0,
                    avg_running_containers: acc.container_seconds / 3600.0,
                    avg_task_latency_s: if acc.latency_count > 0 {
                        acc.latency_sum_s / acc.latency_count as f64
                    } else {
                        0.0
                    },
                    queued_containers: acc.queue_len_seconds / 3600.0,
                    queue_latency_p99_ms: p99 * 1000.0,
                    power_draw_w: acc.power_joules / 3600.0,
                    ssd_used_gb: acc.ssd_seconds / 3600.0 * gauge_noise(&mut noise_rng),
                    ram_used_gb: acc.ram_seconds / 3600.0 * gauge_noise(&mut noise_rng),
                    cores_used: acc.cores_seconds / 3600.0 * gauge_noise(&mut noise_rng),
                    network_used_gbps: acc.network_seconds / 3600.0
                        * gauge_noise(&mut noise_rng),
                };
                self.out.telemetry.push(MachineHourRecord {
                    machine: mach_info.id,
                    group: GroupKey::new(mach_info.sku, cfg.sc),
                    hour: hour as u64,
                    metrics,
                });
            }
        }
        self.out.jobs_in_flight_at_end = self.jobs_active;
        debug_assert_eq!(
            self.tasks_created,
            self.tasks_completed + self.out.tasks_in_flight_at_end,
            "task conservation"
        );
        self.out
    }
}

/// Percentile of a pre-sorted slice (linear interpolation). Local copy to
/// avoid a dev-only dependency cycle with `kea-stats`.
fn kea_stats_percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize; // kea-lint: allow(truncating-as-cast) — p is a finite literal at every call site
    let hi = rank.ceil() as usize; // kea-lint: allow(truncating-as-cast) — same bound as `lo`
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    fn quick_sim(hours: u64, seed: u64) -> SimOutput {
        run(&SimConfig::baseline(ClusterSpec::tiny(), hours, seed))
    }

    #[test]
    fn produces_full_telemetry_grid() {
        let out = quick_sim(6, 1);
        let spec = ClusterSpec::tiny();
        assert_eq!(
            out.telemetry.len(),
            spec.n_machines() * 6,
            "one record per machine per hour"
        );
        assert_eq!(out.telemetry.hour_span(), Some((0, 6)));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = quick_sim(4, 42);
        let b = quick_sim(4, 42);
        assert_eq!(a.telemetry.len(), b.telemetry.len());
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert_eq!(a.counters.total, b.counters.total);
        let pick = |o: &SimOutput| o.telemetry.iter().map(|r| r.metrics.cpu_utilization).sum::<f64>();
        assert_eq!(pick(&a), pick(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick_sim(4, 1);
        let b = quick_sim(4, 2);
        let pick = |o: &SimOutput| o.telemetry.iter().map(|r| r.metrics.cpu_utilization).sum::<f64>();
        assert_ne!(pick(&a), pick(&b));
    }

    #[test]
    fn utilization_in_target_band() {
        // The workload is calibrated for ~75% occupancy; the fleet-wide
        // mean CPU utilization should land in a broad band around the
        // paper's >60% (warm-up drags the first hours down).
        let out = quick_sim(24, 7);
        let utils: Vec<f64> = out
            .telemetry
            .by_hours(4, 24)
            .map(|r| r.metrics.cpu_utilization)
            .collect();
        let mean = utils.iter().sum::<f64>() / utils.len() as f64;
        assert!(
            (35.0..95.0).contains(&mean),
            "fleet mean utilization {mean}%"
        );
    }

    #[test]
    fn jobs_complete_and_have_positive_runtimes() {
        let out = quick_sim(24, 3);
        assert!(!out.jobs.is_empty());
        for job in &out.jobs {
            assert!(job.runtime_s > 0.0);
            assert!(job.tasks > 0);
            assert!(job.arrival_hour >= 0.0);
        }
        // Recurring templates produce their scheduled counts (hourly
        // ingest: ~23 completed instances in 24h).
        let ingest = out.job_runtimes("ingest-hourly");
        assert!(ingest.len() >= 15, "got {}", ingest.len());
    }

    #[test]
    fn task_conservation() {
        let out = quick_sim(8, 11);
        // counters.total counts completed tasks; in-flight are the rest.
        assert!(out.counters.total > 0);
        assert!(out.tasks_in_flight_at_end < out.counters.total / 2);
    }

    #[test]
    fn older_skus_run_hotter() {
        // Figure 2's right panel: the manual baseline pushes old SKUs
        // to higher utilization.
        let out = quick_sim(24, 5);
        let spec = ClusterSpec::tiny();
        let util_of = |sku: u16| {
            let recs: Vec<f64> = out
                .telemetry
                .iter()
                .filter(|r| r.group.sku.0 == sku && r.hour >= 4)
                .map(|r| r.metrics.cpu_utilization)
                .collect();
            recs.iter().sum::<f64>() / recs.len() as f64
        };
        let oldest = util_of(0);
        let newest = util_of(spec.skus.len() as u16 - 1);
        assert!(
            oldest > newest + 5.0,
            "Gen1.1 {oldest}% vs Gen4.1 {newest}%"
        );
    }

    #[test]
    fn tasks_on_old_skus_are_slower() {
        // Figure 5's premise.
        let out = quick_sim(24, 9);
        let dur_of = |sku: u16| {
            let d: Vec<f64> = out
                .tasks
                .iter()
                .filter(|t| t.sku.0 == sku)
                .map(|t| t.duration_s)
                .collect();
            assert!(!d.is_empty(), "no sampled tasks on sku {sku}");
            d.iter().sum::<f64>() / d.len() as f64
        };
        assert!(dur_of(0) > dur_of(5) * 1.3);
    }

    #[test]
    fn critical_path_skews_to_slow_machines() {
        let out = quick_sim(24, 13);
        let p_old = out
            .counters
            .critical_path_probability(kea_telemetry::SkuId(0))
            .expect("tasks ran on Gen 1.1");
        let p_new = out
            .counters
            .critical_path_probability(kea_telemetry::SkuId(5))
            .expect("tasks ran on Gen 4.1");
        assert!(
            p_old > p_new,
            "critical-path probability old {p_old} vs new {p_new}"
        );
    }

    #[test]
    fn task_types_spread_uniformly_across_skus() {
        // Figure 6: the scheduler's uniform placement makes the type mix
        // of each SKU resemble the global mix.
        let out = quick_sim(24, 17);
        let global: Vec<f64> = {
            let shares: Vec<[f64; 4]> = (0..6)
                .filter_map(|s| out.counters.type_shares_by_sku(kea_telemetry::SkuId(s)))
                .collect();
            assert_eq!(shares.len(), 6);
            (0..4)
                .map(|i| shares.iter().map(|s| s[i]).sum::<f64>() / shares.len() as f64)
                .collect()
        };
        for s in 0..6u16 {
            let shares = out
                .counters
                .type_shares_by_sku(kea_telemetry::SkuId(s))
                .expect("tasks on every SKU");
            for (share, g) in shares.iter().zip(&global) {
                assert!(
                    (share - g).abs() < 0.08,
                    "sku {s}: share {share} vs global {g}"
                );
            }
        }
    }

    #[test]
    fn power_draw_between_idle_and_peak() {
        let out = quick_sim(6, 19);
        let spec = ClusterSpec::tiny();
        for rec in out.telemetry.iter() {
            let sku = spec.sku(rec.group.sku);
            assert!(
                rec.metrics.power_draw_w >= sku.idle_power_w * 0.99,
                "power below idle"
            );
            assert!(
                rec.metrics.power_draw_w <= sku.peak_power_w * 1.01,
                "power above peak"
            );
        }
    }

    #[test]
    fn telemetry_values_are_sane() {
        let out = quick_sim(6, 23);
        for rec in out.telemetry.iter() {
            let m = &rec.metrics;
            assert!(m.is_finite());
            assert!(m.cpu_utilization >= 0.0 && m.cpu_utilization <= 100.0);
            assert!(m.avg_running_containers >= 0.0);
            assert!(m.tasks_finished >= 0.0);
            assert!(m.queued_containers >= 0.0);
            assert!(m.ssd_used_gb >= 0.0 && m.ram_used_gb >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_panics() {
        run(&SimConfig::baseline(ClusterSpec::tiny(), 0, 1));
    }
}
