//! Cluster topology: machines, racks, sub-clusters.
//!
//! Topology matters to KEA's Experiment Module: the "ideal setting" picks
//! every other machine *within a rack* (§7), pilot flights target
//! sub-clusters (§5.2.2), and Figure 6 checks task-type uniformity across
//! racks. The builder lays machines of each SKU contiguously, then deals
//! them into racks of 40 and sub-clusters of roughly a third of the fleet,
//! so racks are SKU-homogeneous — as in real datacenters, where racks are
//! purchased and installed as units.

use crate::catalog::SkuSpec;
use kea_telemetry::{MachineId, SkuId};

/// Identifier of a rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RackId(pub u32);

/// Identifier of a sub-cluster (the unit of the third/fourth pilot
/// flights in §5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubClusterId(pub u32);

/// Machines per rack in the default topology.
pub const MACHINES_PER_RACK: u32 = 20;

/// One physical machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Machine {
    /// Unique id within the cluster.
    pub id: MachineId,
    /// Hardware generation.
    pub sku: SkuId,
    /// Rack the machine is mounted in.
    pub rack: RackId,
    /// Sub-cluster membership.
    pub subcluster: SubClusterId,
}

/// A fully laid-out cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// SKU catalog in use.
    pub skus: Vec<SkuSpec>,
    /// All machines, id-ordered.
    pub machines: Vec<Machine>,
    /// Number of sub-clusters.
    pub n_subclusters: u32,
}

impl ClusterSpec {
    /// Builds a cluster from a SKU catalog: machines of each SKU are laid
    /// out contiguously, racked in units of [`MACHINES_PER_RACK`], and
    /// dealt into `n_subclusters` contiguous sub-clusters.
    ///
    /// # Panics
    /// `n_subclusters` must be ≥ 1 and the catalog non-empty.
    pub fn build(skus: Vec<SkuSpec>, n_subclusters: u32) -> Self {
        assert!(!skus.is_empty(), "catalog must be non-empty");
        assert!(n_subclusters >= 1, "need at least one sub-cluster");
        let total: u32 = skus.iter().map(|s| s.machine_count).sum();
        let mut machines = Vec::with_capacity(total as usize);
        let mut next_id = 0u32;
        let mut rack = 0u32;
        for sku in &skus {
            // Racks are purchase units: a new hardware generation starts
            // a fresh rack, so racks are SKU-homogeneous (the property
            // the ideal experiment setting of §7 relies on).
            let mut in_rack = 0u32;
            for _ in 0..sku.machine_count {
                machines.push(Machine {
                    id: MachineId(next_id),
                    sku: sku.id,
                    rack: RackId(rack),
                    // Sub-clusters interleave across the fleet so each is
                    // a representative hardware sample — the property the
                    // §5.2.2 sub-cluster pilots rely on.
                    subcluster: SubClusterId(next_id % n_subclusters),
                });
                next_id += 1;
                in_rack += 1;
                if in_rack == MACHINES_PER_RACK {
                    rack += 1;
                    in_rack = 0;
                }
            }
            if in_rack > 0 {
                rack += 1;
            }
        }
        ClusterSpec {
            skus,
            machines,
            n_subclusters,
        }
    }

    /// The default headline cluster (~1,500 machines at scale 1).
    pub fn default_cluster() -> Self {
        Self::build(crate::catalog::default_skus(1), 3)
    }

    /// A mid-size cluster for statistically powered experiments
    /// (scale 4 ⇒ ~375 machines).
    pub fn medium() -> Self {
        Self::build(crate::catalog::default_skus(4), 3)
    }

    /// A miniature cluster for fast tests (scale 10 ⇒ ~150 machines).
    pub fn small() -> Self {
        Self::build(crate::catalog::default_skus(10), 3)
    }

    /// A tiny cluster for unit tests (scale 50 ⇒ ~30 machines).
    pub fn tiny() -> Self {
        Self::build(crate::catalog::default_skus(50), 3)
    }

    /// Total machine count.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Looks up a SKU spec by id.
    ///
    /// # Panics
    /// The id must come from this cluster's catalog.
    pub fn sku(&self, id: SkuId) -> &SkuSpec {
        self.skus
            .iter()
            .find(|s| s.id == id)
            // kea-lint: allow(panic-in-library) — documented `# Panics` contract on this lookup API
            .expect("SkuId from this cluster's catalog")
    }

    /// Looks up a machine by id.
    ///
    /// # Panics
    /// The id must be in range.
    pub fn machine(&self, id: MachineId) -> &Machine {
        // kea-lint: allow(index-in-library) — documented `# Panics` contract on this lookup API
        &self.machines[id.0 as usize]
    }

    /// Machines of one SKU.
    pub fn machines_of_sku(&self, sku: SkuId) -> impl Iterator<Item = &Machine> {
        self.machines.iter().filter(move |m| m.sku == sku)
    }

    /// Machines of one rack.
    pub fn machines_of_rack(&self, rack: RackId) -> impl Iterator<Item = &Machine> {
        self.machines.iter().filter(move |m| m.rack == rack)
    }

    /// Machines of one sub-cluster.
    pub fn machines_of_subcluster(&self, sub: SubClusterId) -> impl Iterator<Item = &Machine> {
        self.machines.iter().filter(move |m| m.subcluster == sub)
    }

    /// Number of racks.
    pub fn n_racks(&self) -> u32 {
        self.machines.last().map_or(0, |m| m.rack.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::default_skus;

    #[test]
    fn build_assigns_all_machines() {
        let spec = ClusterSpec::default_cluster();
        let expected: u32 = spec.skus.iter().map(|s| s.machine_count).sum();
        assert_eq!(spec.n_machines(), expected as usize);
        // Ids are dense and ordered.
        for (i, m) in spec.machines.iter().enumerate() {
            assert_eq!(m.id, MachineId(i as u32));
        }
    }

    #[test]
    fn racks_are_sku_homogeneous() {
        // Each generation starts a fresh rack, so racks never mix SKUs.
        let spec = ClusterSpec::default_cluster();
        for rack in 0..spec.n_racks() {
            let skus: std::collections::BTreeSet<_> = spec
                .machines_of_rack(RackId(rack))
                .map(|m| m.sku)
                .collect();
            assert_eq!(skus.len(), 1, "rack {rack} spans {} SKUs", skus.len());
        }
        // And every rack holds at most the rack capacity.
        for rack in 0..spec.n_racks() {
            assert!(spec.machines_of_rack(RackId(rack)).count() <= MACHINES_PER_RACK as usize);
        }
    }

    #[test]
    fn subclusters_partition_the_fleet_representatively() {
        let spec = ClusterSpec::default_cluster();
        let total: usize = (0..spec.n_subclusters)
            .map(|s| spec.machines_of_subcluster(SubClusterId(s)).count())
            .sum();
        assert_eq!(total, spec.n_machines());
        // Roughly equal thirds.
        for s in 0..spec.n_subclusters {
            let n = spec.machines_of_subcluster(SubClusterId(s)).count();
            assert!(n >= spec.n_machines() / 4, "subcluster {s} has {n}");
        }
        // Representative: every sub-cluster carries every SKU.
        for s in 0..spec.n_subclusters {
            let skus: std::collections::BTreeSet<_> = spec
                .machines_of_subcluster(SubClusterId(s))
                .map(|m| m.sku)
                .collect();
            assert_eq!(skus.len(), spec.skus.len(), "subcluster {s} not representative");
        }
    }

    #[test]
    fn sku_lookup_and_filters_agree() {
        let spec = ClusterSpec::small();
        for sku in &spec.skus {
            let count = spec.machines_of_sku(sku.id).count();
            assert_eq!(count, sku.machine_count as usize);
        }
    }

    #[test]
    fn presets_scale_down() {
        assert!(ClusterSpec::tiny().n_machines() < ClusterSpec::small().n_machines());
        assert!(ClusterSpec::small().n_machines() < ClusterSpec::default_cluster().n_machines());
        // Tiny still carries every SKU (needed for per-group models).
        assert_eq!(ClusterSpec::tiny().skus.len(), 6);
    }

    #[test]
    fn machine_accessor_round_trips() {
        let spec = ClusterSpec::tiny();
        let m = spec.machine(MachineId(3));
        assert_eq!(m.id, MachineId(3));
        let sku = spec.sku(m.sku);
        assert!(default_skus(1).iter().any(|s| s.name == sku.name));
    }

    #[test]
    #[should_panic(expected = "sub-cluster")]
    fn zero_subclusters_panics() {
        ClusterSpec::build(default_skus(50), 0);
    }
}
