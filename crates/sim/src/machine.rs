//! The machine performance model.
//!
//! Pure functions mapping (SKU, SC, config, load) to instantaneous machine
//! behaviour. These encode the ground-truth "system fundamentals" that the
//! paper's §5.1 argues are invariant under configuration changes — the
//! relationships KEA's models must rediscover from telemetry:
//!
//! * CPU utilization rises ~linearly with running containers (Figure 9);
//! * task service time grows convexly with utilization (interference);
//! * power follows utilization between idle and peak, clipped by any cap,
//!   and a cap below current demand throttles the clock (§7.2);
//! * the "Feature" improves instructions/joule, trading a small power
//!   reduction and speedup (§7.2);
//! * SC1 penalizes I/O-heavy tasks via HDD temp-store contention (§7.1);
//! * SSD/RAM usage is affine in cores used (Figure 13).

use crate::catalog::{ScSpec, SkuSpec};
use crate::config::MachineConfig;

/// Baseline CPU fraction consumed by the OS and storage agents on an
/// otherwise idle machine.
pub const IDLE_UTIL_FRACTION: f64 = 0.03;

/// Quadratic interference coefficient: service time multiplier is
/// `1 + GAMMA · util²`.
pub const INTERFERENCE_GAMMA: f64 = 0.6;

/// Power-vs-utilization exponent (slightly super-linear).
pub const POWER_EXPONENT: f64 = 1.1;

/// Exponent of the throttle penalty when demand exceeds the power cap.
pub const THROTTLE_EXPONENT: f64 = 0.9;

/// Power-demand multiplier when the Feature is enabled.
pub const FEATURE_POWER_FACTOR: f64 = 0.93;

/// Service-time multiplier when the Feature is enabled.
pub const FEATURE_SPEED_FACTOR: f64 = 0.95;

/// Baseline RAM occupied by the OS and daemons, GB.
pub const BASE_RAM_GB: f64 = 8.0;

/// Instantaneous CPU utilization fraction (0–1) of a machine running
/// `containers` containers.
pub fn cpu_utilization(sku: &SkuSpec, containers: u32) -> f64 {
    (IDLE_UTIL_FRACTION + containers as f64 * sku.cpu_per_container()).min(1.0)
}

/// Instantaneous electrical power demand in watts, *before* capping,
/// given a utilization fraction.
pub fn power_demand(sku: &SkuSpec, util: f64, feature_on: bool) -> f64 {
    let dynamic = (sku.peak_power_w - sku.idle_power_w) * util.powf(POWER_EXPONENT);
    let demand = sku.idle_power_w + dynamic;
    if feature_on {
        demand * FEATURE_POWER_FACTOR
    } else {
        demand
    }
}

/// The configured power cap in watts, or `None` when capping is disabled.
pub fn power_cap_w(sku: &SkuSpec, config: &MachineConfig) -> Option<f64> {
    if config.power_cap_fraction > 0.0 {
        Some(sku.provisioned_power_w * (1.0 - config.power_cap_fraction))
    } else {
        None
    }
}

/// Power actually drawn (demand clipped at the cap) in watts.
pub fn power_draw(sku: &SkuSpec, config: &MachineConfig, util: f64) -> f64 {
    let demand = power_demand(sku, util, config.feature_on);
    match power_cap_w(sku, config) {
        Some(cap) => demand.min(cap),
        None => demand,
    }
}

/// Clock-throttle multiplier on service time when the cap binds:
/// `(demand / cap)^θ ≥ 1`, else 1.
pub fn throttle_multiplier(sku: &SkuSpec, config: &MachineConfig, util: f64) -> f64 {
    let demand = power_demand(sku, util, config.feature_on);
    match power_cap_w(sku, config) {
        Some(cap) if demand > cap => (demand / cap).powf(THROTTLE_EXPONENT),
        _ => 1.0,
    }
}

/// Components of a task's service time on a given machine state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceTime {
    /// Wall-clock duration in seconds.
    pub duration_s: f64,
    /// CPU seconds consumed (wall time on core, so throttling and Feature
    /// affect it too).
    pub cpu_time_s: f64,
}

/// Combines pre-resolved service-time factors into a [`ServiceTime`].
///
/// This is the single place the multiplication order is written down:
/// [`service_time`] resolves the factors from the machine environment and
/// delegates here, and the fleet-scale engine calls this directly with
/// factors looked up from its precomputed per-configuration tables. Both
/// paths therefore evaluate the exact same floating-point expression and
/// agree bit for bit.
pub fn service_time_parts(
    base_cpu_s: f64,
    speed: f64,
    throttle: f64,
    feature: f64,
    interference: f64,
    sc_mult: f64,
) -> ServiceTime {
    // CPU time: intrinsic work, scaled by hardware generation, the clock
    // (throttle), and the microarchitectural Feature.
    let cpu_time_s = base_cpu_s * speed * throttle * feature;
    // Wall time additionally suffers co-runner interference and the SC's
    // I/O path for temp-store-heavy tasks.
    let duration_s = cpu_time_s * interference * sc_mult;
    ServiceTime {
        duration_s,
        cpu_time_s,
    }
}

/// Computes a task's service time from its intrinsic work and the machine
/// environment at start.
///
/// `base_cpu_s` is the task's CPU-seconds of work on the reference SKU at
/// nominal clock; `io_heavy` marks tasks dominated by local temp-store
/// traffic (SC-sensitive); `util` is the machine's utilization fraction
/// when the task starts.
pub fn service_time(
    sku: &SkuSpec,
    sc: &ScSpec,
    config: &MachineConfig,
    base_cpu_s: f64,
    io_heavy: bool,
    util: f64,
) -> ServiceTime {
    debug_assert!(base_cpu_s > 0.0);
    let speed = sku.speed_factor;
    let feature = if config.feature_on {
        FEATURE_SPEED_FACTOR
    } else {
        1.0
    };
    let throttle = throttle_multiplier(sku, config, util);
    let interference = 1.0 + INTERFERENCE_GAMMA * util * util;
    let sc_mult = if io_heavy { sc.io_heavy_multiplier } else { 1.0 };
    service_time_parts(base_cpu_s, speed, throttle, feature, interference, sc_mult)
}

/// Instantaneous resource usage of a machine running `containers`
/// containers under software configuration `sc`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUsage {
    /// CPU cores in use.
    pub cores_used: f64,
    /// RAM in use, GB.
    pub ram_used_gb: f64,
    /// SSD capacity in use, GB.
    pub ssd_used_gb: f64,
    /// Network bandwidth in use, Gbit/s.
    pub network_used_gbps: f64,
}

/// Computes instantaneous resource usage (the ground truth behind the
/// affine SSD/RAM-vs-cores models of §6.1).
pub fn resource_usage(sku: &SkuSpec, sc: &ScSpec, containers: u32) -> ResourceUsage {
    let c = containers as f64;
    let cores_used = cpu_utilization(sku, containers) * sku.cores as f64;
    let ram_used_gb = (BASE_RAM_GB + sku.ram_per_container() * c).min(sku.ram_gb);
    let ssd_used_gb =
        (sc.ssd_base_gb + sku.ssd_per_container() * sc.ssd_share * c).min(sku.ssd_gb);
    // Background replication/heartbeat traffic plus per-container streams.
    let network_used_gbps =
        (0.2 + sku.network_per_container() * c).min(sku.nic_gbps);
    ResourceUsage {
        cores_used,
        ram_used_gb,
        ssd_used_gb,
        network_used_gbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{default_scs, default_skus, SC1};

    fn sku(i: usize) -> SkuSpec {
        default_skus(1)[i].clone()
    }

    fn base_config() -> MachineConfig {
        MachineConfig {
            max_running_containers: 12,
            power_cap_fraction: 0.0,
            feature_on: false,
            sc: SC1,
            max_queue_length: u32::MAX,
        }
    }

    #[test]
    fn utilization_linear_then_saturates() {
        let s = sku(0); // 12 slots
        assert!((cpu_utilization(&s, 0) - IDLE_UTIL_FRACTION).abs() < 1e-12);
        let one = cpu_utilization(&s, 1) - cpu_utilization(&s, 0);
        let six = cpu_utilization(&s, 6) - cpu_utilization(&s, 5);
        assert!((one - six).abs() < 1e-12, "linear region");
        assert_eq!(cpu_utilization(&s, 100), 1.0, "saturates at 100%");
    }

    #[test]
    fn newer_skus_reach_lower_util_per_container() {
        let old = sku(0);
        let new = sku(5);
        assert!(cpu_utilization(&old, 10) > cpu_utilization(&new, 10));
    }

    #[test]
    fn power_monotone_in_util_between_idle_and_peak() {
        let s = sku(3);
        let p0 = power_demand(&s, 0.0, false);
        let p50 = power_demand(&s, 0.5, false);
        let p100 = power_demand(&s, 1.0, false);
        assert!((p0 - s.idle_power_w).abs() < 1e-9);
        assert!((p100 - s.peak_power_w).abs() < 1e-9);
        assert!(p0 < p50 && p50 < p100);
    }

    #[test]
    fn feature_reduces_power() {
        let s = sku(4);
        assert!(power_demand(&s, 0.8, true) < power_demand(&s, 0.8, false));
    }

    #[test]
    fn light_caps_do_not_throttle() {
        // Provisioned power has ~12% headroom, so a 10% cap sits just
        // above peak and never binds — the paper's core power-capping
        // finding (the original provision was "conservatively high").
        let s = sku(5);
        let cfg = MachineConfig {
            power_cap_fraction: 0.10,
            ..base_config()
        };
        assert_eq!(throttle_multiplier(&s, &cfg, 1.0), 1.0);
        // Power draw equals demand.
        assert!((power_draw(&s, &cfg, 1.0) - s.peak_power_w).abs() < 1e-9);
    }

    #[test]
    fn deep_caps_throttle_at_high_util() {
        let s = sku(5);
        let cfg = MachineConfig {
            power_cap_fraction: 0.30,
            ..base_config()
        };
        let t_high = throttle_multiplier(&s, &cfg, 1.0);
        assert!(t_high > 1.0, "30% cap must bind at full util: {t_high}");
        // But not at low utilization.
        assert_eq!(throttle_multiplier(&s, &cfg, 0.2), 1.0);
        // Drawn power is clipped to the cap.
        let cap = power_cap_w(&s, &cfg).unwrap();
        assert!((power_draw(&s, &cfg, 1.0) - cap).abs() < 1e-9);
    }

    #[test]
    fn feature_softens_deep_caps() {
        // With the Feature on, demand is lower, so the same cap throttles
        // less — the Figure 15 interaction.
        let s = sku(5);
        let capped = MachineConfig {
            power_cap_fraction: 0.30,
            ..base_config()
        };
        let capped_feature = MachineConfig {
            feature_on: true,
            ..capped
        };
        assert!(
            throttle_multiplier(&s, &capped_feature, 1.0)
                < throttle_multiplier(&s, &capped, 1.0)
        );
    }

    #[test]
    fn service_time_structure() {
        let scs = default_scs();
        let (sc1, sc2) = (&scs[0], &scs[1]);
        let s = sku(4); // reference speed 1.0
        let cfg = base_config();
        let st = service_time(&s, sc1, &cfg, 100.0, false, 0.0);
        assert!((st.cpu_time_s - 100.0).abs() < 1e-9);
        assert!((st.duration_s - 100.0).abs() < 1e-9);
        // Interference stretches wall time, not CPU time.
        let busy = service_time(&s, sc1, &cfg, 100.0, false, 0.8);
        assert!((busy.cpu_time_s - 100.0).abs() < 1e-9);
        assert!(busy.duration_s > 130.0);
        // Old hardware is slower in both.
        let old = service_time(&sku(0), sc1, &cfg, 100.0, false, 0.0);
        assert!((old.cpu_time_s - 160.0).abs() < 1e-9);
        // SC matters only for io-heavy tasks.
        let io_sc1 = service_time(&s, sc1, &cfg, 100.0, true, 0.5);
        let io_sc2 = service_time(&s, sc2, &cfg, 100.0, true, 0.5);
        let cpu_sc1 = service_time(&s, sc1, &cfg, 100.0, false, 0.5);
        let cpu_sc2 = service_time(&s, sc2, &cfg, 100.0, false, 0.5);
        assert!(io_sc2.duration_s < io_sc1.duration_s);
        assert!((cpu_sc1.duration_s - cpu_sc2.duration_s).abs() < 1e-9);
    }

    #[test]
    fn feature_speeds_up_tasks() {
        let scs = default_scs();
        let s = sku(4);
        let off = base_config();
        let on = MachineConfig {
            feature_on: true,
            ..off
        };
        let st_off = service_time(&s, &scs[0], &off, 100.0, false, 0.5);
        let st_on = service_time(&s, &scs[0], &on, 100.0, false, 0.5);
        assert!((st_on.cpu_time_s / st_off.cpu_time_s - FEATURE_SPEED_FACTOR).abs() < 1e-9);
        assert!(st_on.duration_s < st_off.duration_s);
    }

    #[test]
    fn resource_usage_affine_in_containers() {
        let scs = default_scs();
        let s = sku(3);
        let r0 = resource_usage(&s, &scs[1], 0);
        let r5 = resource_usage(&s, &scs[1], 5);
        let r10 = resource_usage(&s, &scs[1], 10);
        // Affine: equal increments.
        assert!(
            ((r10.ram_used_gb - r5.ram_used_gb) - (r5.ram_used_gb - r0.ram_used_gb)).abs()
                < 1e-9
        );
        assert!(
            ((r10.ssd_used_gb - r5.ssd_used_gb) - (r5.ssd_used_gb - r0.ssd_used_gb)).abs()
                < 1e-9
        );
        assert!(r0.ram_used_gb >= BASE_RAM_GB);
        // Clamped at installed capacity.
        let huge = resource_usage(&s, &scs[1], 10_000);
        assert!(huge.ram_used_gb <= s.ram_gb);
        assert!(huge.ssd_used_gb <= s.ssd_gb);
        assert!(huge.network_used_gbps <= s.nic_gbps);
        // Network is affine in containers too (the §6.2 extension).
        assert!(
            ((r10.network_used_gbps - r5.network_used_gbps)
                - (r5.network_used_gbps - r0.network_used_gbps))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn sc1_places_less_on_ssd() {
        let scs = default_scs();
        let s = sku(3);
        let sc1_use = resource_usage(&s, &scs[0], 10);
        let sc2_use = resource_usage(&s, &scs[1], 10);
        assert!(sc1_use.ssd_used_gb < sc2_use.ssd_used_gb);
        // RAM is SC-independent.
        assert_eq!(sc1_use.ram_used_gb, sc2_use.ram_used_gb);
    }
}
