//! Workload model: job templates, stages, arrival processes.
//!
//! Cosmos workloads are dominated by *recurring* SCOPE jobs — "a job
//! template represents a recurring job" (§3.2, footnote 1) — whose past
//! runtimes induce implicit SLOs. We model:
//!
//! * **Job templates** with a linear DAG of stages (stage `i+1` starts when
//!   stage `i` finishes — the shape that produces critical paths);
//! * **Recurring schedules** (hourly/daily instances) for SLO-carrying
//!   production jobs and for the three TPC-derived benchmark jobs of
//!   Figure 11;
//! * A **Poisson background** of ad-hoc jobs whose rate follows diurnal
//!   and weekly seasonality (the shape of Figure 1), calibrated so the
//!   cluster reaches the paper's >60% average CPU utilization.

use crate::cluster::ClusterSpec;

/// Coarse task classification, used for the Figure 6 uniformity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskType {
    /// Input scan / extraction stages.
    Extract,
    /// CPU-bound processing stages.
    Process,
    /// Aggregation / reduce stages.
    Aggregate,
    /// Repartition / shuffle stages (temp-store heavy).
    Partition,
}

impl TaskType {
    /// All task types in reporting order.
    pub const ALL: [TaskType; 4] = [
        TaskType::Extract,
        TaskType::Process,
        TaskType::Aggregate,
        TaskType::Partition,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TaskType::Extract => "Extract",
            TaskType::Process => "Process",
            TaskType::Aggregate => "Aggregate",
            TaskType::Partition => "Partition",
        }
    }
}

/// One stage of a job template.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Number of parallel tasks in the stage.
    pub tasks: u32,
    /// Mean task work in CPU-seconds on the reference SKU.
    pub mean_cpu_s: f64,
    /// Lognormal shape of task work (0 = deterministic).
    pub sigma: f64,
    /// Mean input bytes per task, GB.
    pub mean_input_gb: f64,
    /// Whether tasks hammer the local temp store (SC-sensitive).
    pub io_heavy: bool,
    /// Task classification.
    pub task_type: TaskType,
}

/// When instances of a template are submitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Fixed-period recurrence: one instance every `period_hours`,
    /// starting at `offset_hours`.
    Recurring {
        /// Hours between instances.
        period_hours: f64,
        /// First submission time in hours.
        offset_hours: f64,
    },
    /// Poisson arrivals with the given *base* rate (instances/hour),
    /// modulated by the workload's seasonality.
    Poisson {
        /// Base arrival rate before seasonal modulation.
        rate_per_hour: f64,
    },
}

/// A recurring job template.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTemplate {
    /// Template name (job-template identity for implicit SLOs).
    pub name: String,
    /// Stages, executed sequentially; tasks within a stage are parallel.
    pub stages: Vec<StageSpec>,
    /// Submission schedule.
    pub schedule: Schedule,
}

impl JobTemplate {
    /// Total tasks per instance.
    pub fn total_tasks(&self) -> u32 {
        self.stages.iter().map(|s| s.tasks).sum()
    }

    /// Expected CPU-seconds of one instance on the reference SKU.
    pub fn expected_cpu_s(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.tasks as f64 * s.mean_cpu_s)
            .sum()
    }
}

/// Seasonality of the ad-hoc load: Figure 1's diurnal wave plus a weekday
/// / weekend split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Seasonality {
    /// Relative amplitude of the diurnal sine (0 = flat).
    pub diurnal_amplitude: f64,
    /// Hour of day with peak load.
    pub peak_hour: f64,
    /// Multiplier applied on Saturday/Sunday.
    pub weekend_factor: f64,
}

impl Default for Seasonality {
    fn default() -> Self {
        Seasonality {
            diurnal_amplitude: 0.30,
            peak_hour: 14.0,
            weekend_factor: 0.85,
        }
    }
}

impl Seasonality {
    /// Load multiplier at simulation time `hour` (hour 0 = Monday 00:00).
    pub fn factor(&self, hour: f64) -> f64 {
        let hod = hour.rem_euclid(24.0);
        let diurnal = 1.0
            + self.diurnal_amplitude
                * (2.0 * std::f64::consts::PI * (hod - self.peak_hour) / 24.0).cos();
        // kea-lint: allow(truncating-as-cast) — simulated hours are small finite values; NaN saturates and still yields a valid weekday index
        let day = ((hour / 24.0).floor() as i64).rem_euclid(7);
        let weekly = if day >= 5 { self.weekend_factor } else { 1.0 };
        diurnal * weekly
    }

    /// Upper bound of [`Seasonality::factor`] (for Poisson thinning).
    pub fn max_factor(&self) -> f64 {
        1.0 + self.diurnal_amplitude
    }
}

/// A standing pool of opportunistic (low-priority batch) work.
///
/// Production clusters at Cosmos-like utilization are never demand-bound:
/// a backlog of opportunistic jobs soaks up whatever capacity the
/// SLO-carrying workload leaves free. We model it closed-loop — a fixed
/// number of tasks permanently in flight, each completion immediately
/// spawning a replacement — which is what makes cluster throughput
/// *elastic in capacity*: KEA's container re-balancing (§5.2.2) increases
/// Total Data Read because the backlog converts freed slots into work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BacklogSpec {
    /// Number of opportunistic tasks permanently in flight.
    pub concurrent_tasks: u32,
    /// Mean task work in CPU-seconds on the reference SKU.
    pub mean_cpu_s: f64,
    /// Lognormal shape of task work.
    pub sigma: f64,
    /// Mean input bytes per task, GB.
    pub mean_input_gb: f64,
    /// Whether backlog tasks hammer the temp store.
    pub io_heavy: bool,
    /// Task classification.
    pub task_type: TaskType,
}

/// The full workload specification for a run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Job templates (recurring and Poisson).
    pub templates: Vec<JobTemplate>,
    /// Seasonal modulation of Poisson templates.
    pub seasonality: Seasonality,
    /// Optional opportunistic backlog (closed-loop).
    pub backlog: Option<BacklogSpec>,
}

impl WorkloadSpec {
    /// Builds the default Cosmos-like workload, calibrated so the cluster
    /// runs near `target_occupancy` (fraction of configured container
    /// slots busy; 0.75 reproduces the paper's >60% CPU utilization).
    ///
    /// The mix: ~80% of load from ad-hoc Poisson jobs, the rest from
    /// recurring production pipelines and the three benchmark templates
    /// of Figure 11.
    ///
    /// # Panics
    /// `target_occupancy` must be in (0, 1].
    pub fn default_for(cluster: &ClusterSpec, target_occupancy: f64) -> Self {
        assert!(
            target_occupancy > 0.0 && target_occupancy <= 2.0,
            "target_occupancy must be in (0, 2]: it is demand pressure, \
             and values above ~1 saturate the cluster"
        );
        // Capacity under the manual-tuning baseline.
        let total_slots: f64 = cluster
            .skus
            .iter()
            .map(|s| s.default_max_containers as f64 * s.machine_count as f64)
            .sum();
        // Average task-duration multiplier over the fleet: speed × typical
        // interference (~1.25 at 65% util).
        let avg_speed: f64 = cluster
            .skus
            .iter()
            .map(|s| s.speed_factor * s.machine_count as f64)
            .sum::<f64>()
            / cluster.n_machines() as f64;
        let duration_multiplier = avg_speed * 1.25;

        let adhoc_stage = StageSpec {
            tasks: 20,
            mean_cpu_s: 240.0,
            sigma: 0.6,
            mean_input_gb: 0.6,
            io_heavy: false,
            task_type: TaskType::Process,
        };
        let adhoc_shuffle = StageSpec {
            tasks: 8,
            mean_cpu_s: 180.0,
            sigma: 0.5,
            mean_input_gb: 0.4,
            io_heavy: true,
            task_type: TaskType::Partition,
        };
        // Concurrency demand of one ad-hoc job ≈ Σ tasks·E[duration]/3600
        // slot-hours per hour of arrivals.
        let adhoc_slot_seconds = (adhoc_stage.tasks as f64 * adhoc_stage.mean_cpu_s
            + adhoc_shuffle.tasks as f64 * adhoc_shuffle.mean_cpu_s)
            * duration_multiplier;
        // Load mix: ~25% of the target occupancy from the opportunistic
        // backlog (which makes throughput capacity-elastic at saturated
        // peaks), ~62% from diurnal ad-hoc Poisson jobs (whose troughs
        // give every SKU the operating-point spread of Figures 8–9), the
        // remainder from recurring pipelines.
        let backlog = BacklogSpec {
            concurrent_tasks: (target_occupancy * 0.25 * total_slots).round().max(4.0) as u32,
            mean_cpu_s: 300.0,
            sigma: 0.5,
            mean_input_gb: 0.7,
            io_heavy: false,
            task_type: TaskType::Process,
        };
        let target_busy_slot_seconds_per_hour = target_occupancy * 0.62 * total_slots * 3600.0;
        let adhoc_rate = target_busy_slot_seconds_per_hour / adhoc_slot_seconds;

        let mut templates = vec![JobTemplate {
            name: "adhoc".to_string(),
            stages: vec![adhoc_stage, adhoc_shuffle],
            schedule: Schedule::Poisson {
                rate_per_hour: adhoc_rate,
            },
        }];

        // Recurring production pipelines, sized relative to the cluster.
        let scale = (total_slots / 1000.0).max(0.2);
        let sized = |n: f64| (n * scale).round().max(2.0) as u32;
        templates.push(JobTemplate {
            name: "ingest-hourly".to_string(),
            stages: vec![
                StageSpec {
                    tasks: sized(40.0),
                    mean_cpu_s: 150.0,
                    sigma: 0.5,
                    mean_input_gb: 1.0,
                    io_heavy: true,
                    task_type: TaskType::Extract,
                },
                StageSpec {
                    tasks: sized(10.0),
                    mean_cpu_s: 200.0,
                    sigma: 0.4,
                    mean_input_gb: 0.5,
                    io_heavy: false,
                    task_type: TaskType::Aggregate,
                },
            ],
            schedule: Schedule::Recurring {
                period_hours: 1.0,
                offset_hours: 0.25,
            },
        });
        templates.push(JobTemplate {
            name: "rollup-daily".to_string(),
            stages: vec![
                StageSpec {
                    tasks: sized(120.0),
                    mean_cpu_s: 300.0,
                    sigma: 0.6,
                    mean_input_gb: 1.5,
                    io_heavy: false,
                    task_type: TaskType::Extract,
                },
                StageSpec {
                    tasks: sized(60.0),
                    mean_cpu_s: 240.0,
                    sigma: 0.5,
                    mean_input_gb: 0.8,
                    io_heavy: true,
                    task_type: TaskType::Partition,
                },
                StageSpec {
                    tasks: sized(12.0),
                    mean_cpu_s: 300.0,
                    sigma: 0.4,
                    mean_input_gb: 0.5,
                    io_heavy: false,
                    task_type: TaskType::Aggregate,
                },
            ],
            schedule: Schedule::Recurring {
                period_hours: 24.0,
                offset_hours: 2.0,
            },
        });
        // Benchmark jobs (Figure 11): three TPC-derived templates, daily.
        for (i, (name, tasks, cpu)) in [
            ("bench-tpch-q1", 24.0, 200.0),
            ("bench-tpcds-q64", 40.0, 260.0),
            ("bench-tpch-q18", 32.0, 320.0),
        ]
        .iter()
        .enumerate()
        {
            templates.push(JobTemplate {
                name: name.to_string(),
                stages: vec![
                    StageSpec {
                        tasks: sized(*tasks),
                        mean_cpu_s: *cpu,
                        sigma: 0.5,
                        mean_input_gb: 1.0,
                        io_heavy: i % 2 == 0,
                        task_type: TaskType::Extract,
                    },
                    StageSpec {
                        tasks: sized(tasks / 4.0),
                        mean_cpu_s: *cpu * 0.8,
                        sigma: 0.4,
                        mean_input_gb: 0.4,
                        io_heavy: false,
                        task_type: TaskType::Aggregate,
                    },
                ],
                schedule: Schedule::Recurring {
                    // Twice daily: enough instances for before/after
                    // runtime distributions even in short windows.
                    period_hours: 12.0,
                    offset_hours: 5.0 + i as f64 * 2.0,
                },
            });
        }
        WorkloadSpec {
            templates,
            seasonality: Seasonality::default(),
            backlog: Some(backlog),
        }
    }

    /// The same workload with the opportunistic backlog removed — a
    /// purely open (demand-driven) variant used by ablation benches.
    pub fn without_backlog(mut self) -> Self {
        self.backlog = None;
        self
    }

    /// The slice of this workload owned by one scheduling domain of the
    /// federated engine: a domain holding `machines_in_part` of
    /// `total_machines` machines, with `machines_before` machines in the
    /// domains ahead of it.
    ///
    /// Work divides so the union over domains reproduces the whole spec
    /// exactly, with no double counting and no remainder:
    ///
    /// * **Recurring stages and the backlog** split task counts by the
    ///   machine-weighted Bresenham rule
    ///   `floor((before+own)·T/total) − floor(before·T/total)` — the
    ///   telescoping sum over domains is exactly `T`. A slice may round a
    ///   small stage to zero tasks; the engine skips empty stages.
    /// * **Poisson templates** keep their full per-job stage structure
    ///   (an ad-hoc job runs wholly inside one domain, as a real
    ///   scheduler would place it) and scale the arrival *rate* by the
    ///   domain's machine fraction — splitting a Poisson process is
    ///   thinning, so the superposition matches the global process in
    ///   distribution.
    pub fn sliced(
        &self,
        machines_before: u64,
        machines_in_part: u64,
        total_machines: u64,
    ) -> Self {
        let total = total_machines.max(1);
        let share = |t: u32| -> u32 {
            let t = t as u64;
            let hi = (machines_before + machines_in_part).min(total) * t / total;
            let lo = machines_before.min(total) * t / total;
            (hi - lo) as u32
        };
        let fraction = machines_in_part as f64 / total as f64;
        let templates = self
            .templates
            .iter()
            .map(|tpl| {
                let mut tpl = tpl.clone();
                match &mut tpl.schedule {
                    Schedule::Recurring { .. } => {
                        for stage in &mut tpl.stages {
                            stage.tasks = share(stage.tasks);
                        }
                    }
                    Schedule::Poisson { rate_per_hour } => {
                        *rate_per_hour *= fraction;
                    }
                }
                tpl
            })
            .collect();
        let backlog = self.backlog.map(|mut b| {
            b.concurrent_tasks = share(b.concurrent_tasks);
            b
        });
        WorkloadSpec {
            templates,
            seasonality: self.seasonality,
            backlog,
        }
    }

    /// A coarsened variant preserving offered *load* while dividing the
    /// *event count* by `factor`: task counts (and Poisson rates) shrink
    /// by `factor`, mean per-task work grows by `factor`. Utilization,
    /// power, and resource telemetry stay calibrated while a fleet-week
    /// simulates with `factor`× fewer events — how the 300k-machine bench
    /// stays tractable. `factor = 1` (or 0) is the identity.
    pub fn scaled_tasks(&self, factor: u32) -> Self {
        let f = factor.max(1);
        if f == 1 {
            return self.clone();
        }
        let templates = self
            .templates
            .iter()
            .map(|tpl| {
                let mut tpl = tpl.clone();
                match &mut tpl.schedule {
                    Schedule::Recurring { .. } => {
                        for stage in &mut tpl.stages {
                            stage.tasks = stage.tasks.div_ceil(f);
                            stage.mean_cpu_s *= f as f64;
                        }
                    }
                    Schedule::Poisson { rate_per_hour } => {
                        *rate_per_hour /= f as f64;
                        for stage in &mut tpl.stages {
                            stage.mean_cpu_s *= f as f64;
                        }
                    }
                }
                tpl
            })
            .collect();
        let backlog = self.backlog.map(|mut b| {
            b.concurrent_tasks = (b.concurrent_tasks / f).max(1);
            b.mean_cpu_s *= f as f64;
            b
        });
        WorkloadSpec {
            templates,
            seasonality: self.seasonality,
            backlog,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    #[test]
    fn seasonality_peaks_at_peak_hour() {
        let s = Seasonality::default();
        let peak = s.factor(s.peak_hour);
        let trough = s.factor(s.peak_hour + 12.0);
        assert!(peak > trough);
        assert!((peak - (1.0 + s.diurnal_amplitude)).abs() < 1e-9);
        assert!(peak <= s.max_factor() + 1e-12);
    }

    #[test]
    fn seasonality_weekend_dip() {
        let s = Seasonality::default();
        // Hour 0 is Monday 00:00; Saturday starts at hour 120.
        let monday = s.factor(10.0);
        let saturday = s.factor(120.0 + 10.0);
        assert!((saturday / monday - s.weekend_factor).abs() < 1e-9);
    }

    #[test]
    fn seasonality_is_periodic_weekly() {
        let s = Seasonality::default();
        for h in [3.0, 50.0, 100.0] {
            assert!((s.factor(h) - s.factor(h + 168.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn default_workload_has_all_template_kinds() {
        let spec = WorkloadSpec::default_for(&ClusterSpec::tiny(), 0.75);
        assert!(spec.templates.iter().any(|t| matches!(
            t.schedule,
            Schedule::Poisson { .. }
        )));
        let recurring = spec
            .templates
            .iter()
            .filter(|t| matches!(t.schedule, Schedule::Recurring { .. }))
            .count();
        assert!(recurring >= 5, "production + 3 benchmark templates");
        assert_eq!(
            spec.templates
                .iter()
                .filter(|t| t.name.starts_with("bench-"))
                .count(),
            3
        );
    }

    #[test]
    fn calibration_scales_with_cluster_size() {
        let tiny = WorkloadSpec::default_for(&ClusterSpec::tiny(), 0.75);
        let small = WorkloadSpec::default_for(&ClusterSpec::small(), 0.75);
        let rate = |w: &WorkloadSpec| match w.templates[0].schedule {
            Schedule::Poisson { rate_per_hour } => rate_per_hour,
            _ => unreachable!("adhoc template is Poisson"),
        };
        assert!(rate(&small) > 2.0 * rate(&tiny));
    }

    #[test]
    fn calibration_scales_with_target() {
        let lo = WorkloadSpec::default_for(&ClusterSpec::tiny(), 0.4);
        let hi = WorkloadSpec::default_for(&ClusterSpec::tiny(), 0.8);
        let rate = |w: &WorkloadSpec| match w.templates[0].schedule {
            Schedule::Poisson { rate_per_hour } => rate_per_hour,
            _ => unreachable!("adhoc template is Poisson"),
        };
        assert!((rate(&hi) / rate(&lo) - 2.0).abs() < 0.01);
    }

    #[test]
    fn template_accessors() {
        let spec = WorkloadSpec::default_for(&ClusterSpec::tiny(), 0.75);
        for t in &spec.templates {
            assert!(t.total_tasks() > 0);
            assert!(t.expected_cpu_s() > 0.0);
            assert!(!t.stages.is_empty());
        }
    }

    #[test]
    fn task_types_cover_reporting_set() {
        let spec = WorkloadSpec::default_for(&ClusterSpec::tiny(), 0.75);
        let types: std::collections::BTreeSet<TaskType> = spec
            .templates
            .iter()
            .flat_map(|t| t.stages.iter().map(|s| s.task_type))
            .collect();
        assert!(types.len() >= 3, "workload should mix task types");
        for t in TaskType::ALL {
            assert!(!t.name().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "target_occupancy")]
    fn bad_target_panics() {
        WorkloadSpec::default_for(&ClusterSpec::tiny(), 0.0);
    }

    #[test]
    fn slices_partition_work_exactly() {
        let spec = WorkloadSpec::default_for(&ClusterSpec::small(), 0.75);
        // A skewed 3-way split of 100 machines: 90 / 7 / 3.
        let parts = [(0u64, 90u64), (90, 7), (97, 3)];
        let slices: Vec<WorkloadSpec> =
            parts.iter().map(|&(b, n)| spec.sliced(b, n, 100)).collect();
        // Recurring task counts telescope back to the original exactly.
        for (ti, tpl) in spec.templates.iter().enumerate() {
            if matches!(tpl.schedule, Schedule::Poisson { .. }) {
                // Poisson keeps stage structure, splits the rate.
                let rate = |w: &WorkloadSpec| match w.templates[ti].schedule {
                    Schedule::Poisson { rate_per_hour } => rate_per_hour,
                    _ => unreachable!("poisson template"),
                };
                let sum: f64 = slices.iter().map(rate).sum();
                assert!((sum - rate(&spec)).abs() < 1e-9 * rate(&spec));
                for s in &slices {
                    assert_eq!(
                        s.templates[ti].stages.iter().map(|s| s.tasks).collect::<Vec<_>>(),
                        tpl.stages.iter().map(|s| s.tasks).collect::<Vec<_>>()
                    );
                }
                continue;
            }
            for (si, stage) in tpl.stages.iter().enumerate() {
                let sum: u32 = slices.iter().map(|s| s.templates[ti].stages[si].tasks).sum();
                assert_eq!(sum, stage.tasks, "template {ti} stage {si}");
            }
        }
        let backlog_sum: u32 = slices
            .iter()
            .map(|s| s.backlog.map(|b| b.concurrent_tasks).unwrap_or(0))
            .sum();
        assert_eq!(backlog_sum, spec.backlog.unwrap().concurrent_tasks);
    }

    #[test]
    fn tiny_slice_of_small_stage_can_be_empty() {
        let spec = WorkloadSpec::default_for(&ClusterSpec::tiny(), 0.75);
        // 1 machine of 1000: most recurring stages round to zero tasks.
        let slice = spec.sliced(0, 1, 1000);
        let zero_stages = slice
            .templates
            .iter()
            .filter(|t| matches!(t.schedule, Schedule::Recurring { .. }))
            .flat_map(|t| t.stages.iter())
            .filter(|s| s.tasks == 0)
            .count();
        assert!(zero_stages > 0, "engine must tolerate empty stages");
    }

    #[test]
    fn scaled_tasks_preserves_offered_load() {
        let spec = WorkloadSpec::default_for(&ClusterSpec::small(), 0.75);
        let coarse = spec.scaled_tasks(8);
        for (a, b) in spec.templates.iter().zip(&coarse.templates) {
            match (a.schedule, b.schedule) {
                (
                    Schedule::Poisson { rate_per_hour: ra },
                    Schedule::Poisson { rate_per_hour: rb },
                ) => {
                    // Rate drops 8×, per-job work grows 8×: load constant.
                    assert!((ra / rb - 8.0).abs() < 1e-9);
                    assert!((b.expected_cpu_s() / a.expected_cpu_s() - 8.0).abs() < 1e-9);
                }
                _ => {
                    // Recurring: total CPU-seconds per instance within
                    // ceil-rounding of the original.
                    assert!(b.total_tasks() <= a.total_tasks());
                    assert!(b.expected_cpu_s() >= a.expected_cpu_s() - 1e-9);
                }
            }
        }
        let (a, b) = (spec.backlog.unwrap(), coarse.backlog.unwrap());
        assert_eq!(b.concurrent_tasks, a.concurrent_tasks / 8);
        assert!((b.mean_cpu_s / a.mean_cpu_s - 8.0).abs() < 1e-9);
        // Identity at factor 1 and 0.
        assert_eq!(spec.scaled_tasks(1), spec);
        assert_eq!(spec.scaled_tasks(0), spec);
    }
}
