//! Simulation outputs: telemetry plus job/task logs and counters.
//!
//! The Performance Monitor consumes the [`kea_telemetry::TelemetryStore`];
//! the conceptualization analyses of Figures 5 and 6 need task-level
//! ground truth (durations, critical-path membership, type-by-rack/SKU
//! counts); the implicit-SLO validation and Figure 11 need per-job
//! runtimes. Task logs are sampled (1-in-N) to bound memory — exact
//! counters cover the distributional questions.

use crate::cluster::RackId;
use crate::workload::TaskType;
use kea_telemetry::{MachineId, ScId, SkuId, TelemetryStore};
use std::collections::BTreeMap;

/// One completed job instance.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Index of the template in the workload spec.
    pub template: usize,
    /// Template name.
    pub template_name: String,
    /// Submission time, hours since simulation start.
    pub arrival_hour: f64,
    /// End-to-end runtime in seconds (arrival → last stage completion).
    pub runtime_s: f64,
    /// Total tasks executed.
    pub tasks: u32,
}

/// One sampled completed task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRecord {
    /// Template index of the owning job; `usize::MAX` for closed-loop
    /// backlog tasks, which belong to no job.
    pub template: usize,
    /// Task classification.
    pub task_type: TaskType,
    /// Machine that ran the task.
    pub machine: MachineId,
    /// Machine's SKU.
    pub sku: SkuId,
    /// Software configuration active at task start.
    pub sc: ScId,
    /// Machine's rack.
    pub rack: RackId,
    /// Completion time, hours.
    pub end_hour: f64,
    /// Wall-clock duration, seconds.
    pub duration_s: f64,
    /// Time spent queued before starting, seconds.
    pub queue_wait_s: f64,
    /// Whether the task was the slowest of its stage (on the job's
    /// critical path).
    pub on_critical_path: bool,
}

/// Exact counters over *all* completed tasks (not sampled).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskCounters {
    /// Completed tasks per SKU.
    pub by_sku: BTreeMap<SkuId, u64>,
    /// Critical-path (stage-slowest) tasks per SKU.
    pub critical_by_sku: BTreeMap<SkuId, u64>,
    /// Completed tasks per (rack, type) — Figure 6 left.
    pub by_rack_type: BTreeMap<(RackId, TaskType), u64>,
    /// Completed tasks per (SKU, type) — Figure 6 right.
    pub by_sku_type: BTreeMap<(SkuId, TaskType), u64>,
    /// Total completed tasks.
    pub total: u64,
}

impl TaskCounters {
    /// Records one completed task.
    pub fn record(&mut self, sku: SkuId, rack: RackId, task_type: TaskType) {
        *self.by_sku.entry(sku).or_insert(0) += 1;
        *self.by_rack_type.entry((rack, task_type)).or_insert(0) += 1;
        *self.by_sku_type.entry((sku, task_type)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Marks one task as critical-path.
    pub fn record_critical(&mut self, sku: SkuId) {
        *self.critical_by_sku.entry(sku).or_insert(0) += 1;
    }

    /// Probability that a task landing on `sku` ends up on the critical
    /// path (Figure 5's key quantity). `None` if no tasks ran there.
    pub fn critical_path_probability(&self, sku: SkuId) -> Option<f64> {
        let total = *self.by_sku.get(&sku)?;
        if total == 0 {
            return None;
        }
        let critical = self.critical_by_sku.get(&sku).copied().unwrap_or(0);
        Some(critical as f64 / total as f64)
    }

    /// Task-type shares for one rack (Figure 6 left), in
    /// [`TaskType::ALL`] order. `None` if the rack ran nothing.
    pub fn type_shares_by_rack(&self, rack: RackId) -> Option<[f64; 4]> {
        let counts: Vec<u64> = TaskType::ALL
            .iter()
            .map(|t| self.by_rack_type.get(&(rack, *t)).copied().unwrap_or(0))
            .collect();
        shares(&counts)
    }

    /// Task-type shares for one SKU (Figure 6 right).
    pub fn type_shares_by_sku(&self, sku: SkuId) -> Option<[f64; 4]> {
        let counts: Vec<u64> = TaskType::ALL
            .iter()
            .map(|t| self.by_sku_type.get(&(sku, *t)).copied().unwrap_or(0))
            .collect();
        shares(&counts)
    }

    /// Folds another counter set into this one (key-wise sums). Racks and
    /// SKUs may span scheduling domains, so colliding keys add.
    pub fn absorb(&mut self, other: TaskCounters) {
        for (k, v) in other.by_sku {
            *self.by_sku.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.critical_by_sku {
            *self.critical_by_sku.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.by_rack_type {
            *self.by_rack_type.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.by_sku_type {
            *self.by_sku_type.entry(k).or_insert(0) += v;
        }
        self.total += other.total;
    }
}

fn shares(counts: &[u64]) -> Option<[f64; 4]> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let mut out = [0.0; 4];
    for (o, c) in out.iter_mut().zip(counts) {
        *o = *c as f64 / total as f64;
    }
    Some(out)
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, Default)]
pub struct SimOutput {
    /// Machine-hour telemetry (the Performance Monitor's input).
    pub telemetry: TelemetryStore,
    /// Completed jobs.
    pub jobs: Vec<JobRecord>,
    /// Sampled completed tasks (every Nth).
    pub tasks: Vec<TaskRecord>,
    /// Exact task counters.
    pub counters: TaskCounters,
    /// Tasks still running or queued when the simulation ended.
    pub tasks_in_flight_at_end: u64,
    /// Jobs not yet finished when the simulation ended.
    pub jobs_in_flight_at_end: u64,
    /// Telemetry records rejected at ingest because a metric was
    /// non-finite (the same validation CSV ingest applies). Zero in any
    /// healthy run; non-zero flags a degenerate workload calibration.
    pub nonfinite_dropped: u64,
}

impl SimOutput {
    /// Completed-job runtimes for one template name.
    pub fn job_runtimes(&self, template_name: &str) -> Vec<f64> {
        self.jobs
            .iter()
            .filter(|j| j.template_name == template_name)
            .map(|j| j.runtime_s)
            .collect()
    }

    /// Folds one scheduling domain's output into this one. The federated
    /// engine calls this in domain order, so job/task logs concatenate
    /// deterministically; telemetry merges through the store's validating
    /// path and counters add key-wise.
    pub fn absorb(&mut self, other: SimOutput) {
        self.telemetry.merge(other.telemetry);
        self.jobs.extend(other.jobs);
        self.tasks.extend(other.tasks);
        self.counters.absorb(other.counters);
        self.tasks_in_flight_at_end += other.tasks_in_flight_at_end;
        self.jobs_in_flight_at_end += other.jobs_in_flight_at_end;
        self.nonfinite_dropped += other.nonfinite_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_normalize() {
        let mut c = TaskCounters::default();
        let sku = SkuId(0);
        let rack = RackId(0);
        for _ in 0..8 {
            c.record(sku, rack, TaskType::Extract);
        }
        for _ in 0..2 {
            c.record(sku, rack, TaskType::Partition);
        }
        c.record_critical(sku);
        assert_eq!(c.total, 10);
        assert_eq!(c.critical_path_probability(sku), Some(0.1));
        let shares = c.type_shares_by_rack(rack).unwrap();
        assert!((shares[0] - 0.8).abs() < 1e-12); // Extract
        assert!((shares[3] - 0.2).abs() < 1e-12); // Partition
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let by_sku = c.type_shares_by_sku(sku).unwrap();
        assert_eq!(shares, by_sku);
    }

    #[test]
    fn missing_keys_give_none() {
        let c = TaskCounters::default();
        assert_eq!(c.critical_path_probability(SkuId(3)), None);
        assert_eq!(c.type_shares_by_rack(RackId(9)), None);
        assert_eq!(c.type_shares_by_sku(SkuId(9)), None);
    }

    #[test]
    fn job_runtimes_filter_by_template() {
        let mut out = SimOutput::default();
        out.jobs.push(JobRecord {
            template: 0,
            template_name: "a".to_string(),
            arrival_hour: 0.0,
            runtime_s: 100.0,
            tasks: 5,
        });
        out.jobs.push(JobRecord {
            template: 1,
            template_name: "b".to_string(),
            arrival_hour: 1.0,
            runtime_s: 200.0,
            tasks: 5,
        });
        assert_eq!(out.job_runtimes("a"), vec![100.0]);
        assert_eq!(out.job_runtimes("b"), vec![200.0]);
        assert!(out.job_runtimes("c").is_empty());
    }
}
