//! A hierarchical calendar (bucket) event queue keyed on simulated time.
//!
//! The simulation's event population clusters tightly around "now":
//! Poisson candidate chains arrive seconds apart and task finishes land
//! minutes out, while only a thin tail (recurring job arrivals, long-tail
//! lognormal tasks) sits hours ahead. A global `BinaryHeap` pays
//! O(log n) on the *whole* queue for every operation; at fleet scale the
//! queue holds hundreds of thousands of events and every push/pop walks a
//! ~20-deep heap. This queue is the classic two-level calendar:
//!
//! * a **ring of fine slots** (default 8192 slots × 1 s) covering the
//!   near future — pushes into the ring are O(1) appends;
//! * a **current-slot heap** holding only the events of the slot being
//!   drained — push/pop cost is O(log b) in the *slot occupancy* `b`,
//!   which stays small because a slot is one second wide;
//! * an **overflow heap** for events beyond the ring horizon, migrated
//!   lazily as the calendar advances past their slot.
//!
//! The geometry is **self-adapting**: the ring grows when the queued
//! population exceeds a couple of events per slot, and on every rebuild
//! the slot width is re-estimated from the data as a multiple of the
//! mean gap between the soonest queued events (Brown's rule) — so
//! clustered populations (hundreds of thousands of task finishes within
//! an hour) keep near-O(1) operations instead of degenerating into one
//! big current-slot heap. Rebuilds are amortized (geometric growth on
//! the push side, an operation-count guard on the pop side) and only
//! move entries between containers; they never touch the `(bits, seq)`
//! keys.
//!
//! Events pop in exactly `(time, push order)` order — the same total
//! order as a `BinaryHeap` over `(f64::to_bits(time), seq)` — which is
//! what lets the rewritten engine agree bit-for-bit with
//! `engine::reference`. Time keys are compared as integer bit patterns
//! (`f64::to_bits` is order-preserving for non-negative finite floats),
//! so no `f64` comparison sits on the pop path.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Default number of fine slots in the ring.
const DEFAULT_SLOTS: usize = 8192;

/// Default slot width in simulated seconds.
const DEFAULT_WIDTH_S: f64 = 1.0;

/// Ring growth cap: 2²⁰ slots ≈ 24 MB of bucket headers. Beyond this the
/// queue stops adapting and accepts deeper slots.
const MAX_SLOTS: usize = 1 << 20;

/// Grow the ring once the queued population averages more than this many
/// events per slot.
const GROW_LEN_PER_SLOT: usize = 2;

/// Re-estimate the width once a drained slot holds this many events —
/// the population clusters much tighter than the current width. A
/// converged width targets ~3 events per slot, so 32 is far outside
/// Poisson fluctuation and only genuine clustering re-triggers.
const DENSE_SLOT: usize = 32;

/// Head-sample size for width estimation (Brown's rule: width tracks the
/// observed gap between the soonest events, where draining happens).
const WIDTH_SAMPLE: usize = 64;

/// Width floor: a microsecond of simulated time.
const MIN_WIDTH_S: f64 = 1e-6;

/// One queued event: an integer time key, a push-order tiebreak, and the
/// caller's payload. Ordering ignores the payload.
#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    bits: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.bits == other.bits && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bits.cmp(&other.bits).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The calendar queue. `T` is the event payload type.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// Ring of fine slots; slot `s` lives at index `s % slots.len()`.
    slots: Vec<Vec<Entry<T>>>,
    /// Events of the slot currently being drained (absolute slot
    /// `cur_slot`), plus any late arrivals for already-passed slots.
    cur: BinaryHeap<Reverse<Entry<T>>>,
    /// Events past the ring horizon, ordered; migrated lazily.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    /// Absolute index of the slot being drained.
    cur_slot: u64,
    /// Events currently stored in ring slots (not `cur`, not overflow).
    ring_len: usize,
    /// Total queued events.
    len: usize,
    /// Monotone push counter: the FIFO tiebreak among equal times.
    seq: u64,
    /// Slot width in seconds.
    width_s: f64,
    /// Operations since the last rebuild; amortizes adaptation so a
    /// rebuild's O(n) cost is paid at most once per n queue operations.
    ops: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// A queue with the default geometry (8192 slots × 1 s — a ~2.3 h
    /// near-future window).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_WIDTH_S, DEFAULT_SLOTS)
    }

    /// A queue with an explicit slot width (seconds) and slot count.
    /// Nonsensical geometry (non-finite or non-positive width, zero
    /// slots) falls back to the defaults.
    pub fn with_geometry(width_s: f64, n_slots: usize) -> Self {
        let (width_s, n_slots) = if width_s.is_finite() && width_s > 0.0 && n_slots > 0 {
            (width_s, n_slots)
        } else {
            (DEFAULT_WIDTH_S, DEFAULT_SLOTS)
        };
        let mut slots = Vec::new();
        slots.resize_with(n_slots, Vec::new);
        CalendarQueue {
            slots,
            cur: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            cur_slot: 0,
            ring_len: 0,
            len: 0,
            seq: 0,
            width_s,
            ops: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Absolute slot index of a time key, saturating for non-finite or
    /// enormous times (which then sort to the very end, as their bit
    /// patterns already do).
    fn slot_of(&self, bits: u64) -> u64 {
        let t = f64::from_bits(bits);
        if t.is_finite() && t >= 0.0 {
            (t / self.width_s) as u64
        } else {
            u64::MAX
        }
    }

    /// Queues `payload` at simulated time `time_s`. Events at equal
    /// times pop in push order.
    pub fn push(&mut self, time_s: f64, payload: T) {
        self.seq += 1;
        let entry = Entry {
            bits: time_s.to_bits(),
            seq: self.seq,
            payload,
        };
        self.len += 1;
        self.ops += 1;
        self.insert(entry);
        // Adapt: grow the ring when the population outruns it, picking
        // the width that matches the observed head density. Growth is
        // geometric, so these rebuilds total O(n) over any run.
        if self.len > GROW_LEN_PER_SLOT * self.slots.len() && self.slots.len() < MAX_SLOTS {
            let n = (self.slots.len().saturating_mul(4)).min(MAX_SLOTS);
            self.rebuild_sampled(n);
        }
    }

    /// Routes one entry to the current-slot heap, the ring, or overflow.
    /// Pure storage placement: `len`/`seq` are managed by the callers.
    fn insert(&mut self, entry: Entry<T>) {
        let slot = self.slot_of(entry.bits);
        if slot <= self.cur_slot {
            self.cur.push(Reverse(entry));
        } else if slot < self.cur_slot.saturating_add(self.slots.len() as u64) {
            let idx = (slot % self.slots.len() as u64) as usize;
            if let Some(bucket) = self.slots.get_mut(idx) {
                bucket.push(entry);
                self.ring_len += 1;
            } else {
                // Unreachable by construction (idx < slots.len()); keep
                // the event rather than lose it.
                self.cur.push(Reverse(entry));
            }
        } else {
            self.overflow.push(Reverse(entry));
        }
    }

    /// Re-distributes every queued event into a ring of `n_slots` slots
    /// whose width is estimated from the data: three times the mean gap
    /// between the `WIDTH_SAMPLE` soonest events (Brown's rule), so the
    /// slots ahead of the drain point hold a few events each regardless
    /// of how tightly the population clusters. Pop order is untouched:
    /// it is fully determined by the `(bits, seq)` keys, which
    /// rebuilding never changes. `cur_slot` is re-anchored at the
    /// earliest pending event, so nothing due lands beyond it.
    fn rebuild_sampled(&mut self, n_slots: usize) {
        let mut all: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for bucket in &mut self.slots {
            all.append(bucket);
        }
        all.extend(self.cur.drain().map(|Reverse(e)| e));
        all.extend(self.overflow.drain().map(|Reverse(e)| e));

        let mut width_s = self.width_s;
        let k = WIDTH_SAMPLE.min(all.len().saturating_sub(1));
        if k >= 2 {
            // `bits` orders like time for non-negative finite floats, so
            // selecting the k-th smallest key brackets the head window.
            let mut keys: Vec<u64> = all.iter().map(|e| e.bits).collect();
            let (head, kth, _) = keys.select_nth_unstable(k);
            let lo = f64::from_bits(head.iter().copied().min().unwrap_or(*kth));
            let hi = f64::from_bits(*kth);
            if lo.is_finite() && hi.is_finite() && hi > lo {
                width_s = (3.0 * (hi - lo) / k as f64).max(MIN_WIDTH_S);
            }
        }

        self.slots.clear();
        self.slots.resize_with(n_slots, Vec::new);
        self.width_s = width_s;
        self.ring_len = 0;
        self.ops = 0;
        let min_bits = all.iter().map(|e| e.bits).min();
        self.cur_slot = min_bits.map_or(0, |b| self.slot_of(b));
        for e in all {
            self.insert(e);
        }
    }

    /// Moves every overflow event due at or before `cur_slot` into the
    /// current-slot heap.
    fn migrate_overflow(&mut self) {
        while let Some(Reverse(top)) = self.overflow.peek() {
            if self.slot_of(top.bits) > self.cur_slot {
                break;
            }
            if let Some(Reverse(e)) = self.overflow.pop() {
                self.cur.push(Reverse(e));
            }
        }
    }

    /// Removes and returns the earliest event as `(time_s, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.ops += 1;
        loop {
            if let Some(Reverse(e)) = self.cur.pop() {
                self.len -= 1;
                return Some((f64::from_bits(e.bits), e.payload));
            }
            if self.ring_len == 0 {
                // Ring dry: jump straight to the next overflow slot.
                let Reverse(top) = self.overflow.peek()?;
                self.cur_slot = self.slot_of(top.bits);
                self.migrate_overflow();
                continue;
            }
            // Advance one slot: drain its bucket into the heap, then
            // pick up any overflow events that have come due.
            self.cur_slot = self.cur_slot.saturating_add(1);
            let idx = (self.cur_slot % self.slots.len() as u64) as usize;
            let mut drained = 0;
            if let Some(bucket) = self.slots.get_mut(idx) {
                drained = bucket.len();
                self.ring_len -= drained;
                for e in bucket.drain(..) {
                    self.cur.push(Reverse(e));
                }
            }
            self.migrate_overflow();
            // Adapt: a dense slot means event times cluster well below
            // the slot width. Re-estimate the width from the data — but
            // only after enough operations to amortize the O(n) rebuild,
            // so a persistently dense population cannot thrash it.
            if drained >= DENSE_SLOT && self.ops > self.len && self.width_s > MIN_WIDTH_S {
                let n = self.slots.len();
                self.rebuild_sampled(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Model check: any push/pop interleaving matches a plain
    /// `BinaryHeap` over `(bits, seq)`.
    fn check_against_heap(times: &[f64]) {
        let mut cal = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        for (i, &t) in times.iter().enumerate() {
            cal.push(t, i);
            heap.push(Reverse((t.to_bits(), i as u64 + 1)));
        }
        assert_eq!(cal.len(), times.len());
        let mut last = f64::NEG_INFINITY;
        while let Some(Reverse((bits, seq))) = heap.pop() {
            let (t, payload) = cal.pop().expect("calendar has as many events");
            assert_eq!(t.to_bits(), bits);
            assert_eq!(payload as u64 + 1, seq);
            assert!(t >= last);
            last = t;
        }
        assert!(cal.pop().is_none());
        assert!(cal.is_empty());
    }

    #[test]
    fn matches_heap_on_clustered_times() {
        // The simulation's shape: most events within seconds of each
        // other, a few far out.
        let mut times = Vec::new();
        let mut x = 1u64;
        for i in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let near = (x >> 40) as f64 / 65536.0 * 120.0; // 0..120 s
            times.push(near + (i % 7) as f64 * 0.25);
        }
        times.push(86_400.0); // a day out — overflow
        times.push(86_400.0); // equal-time FIFO pair
        times.push(600_000.0);
        check_against_heap(&times);
    }

    #[test]
    fn matches_heap_on_uniform_wide_range() {
        let mut times = Vec::new();
        let mut x = 9u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            times.push((x >> 20) as f64 / 1e6); // 0 .. ~1.7e7 s
        }
        check_against_heap(&times);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut cal = CalendarQueue::new();
        cal.push(10.0, 'a');
        cal.push(5.0, 'b');
        assert_eq!(cal.pop(), Some((5.0, 'b')));
        // Push while mid-drain, including into the current slot.
        cal.push(5.2, 'c');
        cal.push(100_000.0, 'd'); // overflow
        cal.push(7.0, 'e');
        assert_eq!(cal.pop(), Some((5.2, 'c')));
        assert_eq!(cal.pop(), Some((7.0, 'e')));
        assert_eq!(cal.pop(), Some((10.0, 'a')));
        // Jump across the dry ring to the overflow event.
        assert_eq!(cal.pop(), Some((100_000.0, 'd')));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn equal_times_pop_in_push_order() {
        let mut cal = CalendarQueue::new();
        for i in 0..50 {
            cal.push(42.0, i);
        }
        for i in 0..50 {
            assert_eq!(cal.pop(), Some((42.0, i)));
        }
    }

    #[test]
    fn overflow_migrates_while_ring_stays_busy() {
        // An overflow event must not be overtaken by a later ring event
        // once the calendar advances into its slot.
        let mut cal = CalendarQueue::with_geometry(1.0, 16);
        cal.push(20.0, 'o'); // beyond the 16-slot horizon → overflow
        for i in 0..30 {
            cal.push(i as f64, (b'0' + (i % 10) as u8) as char);
        }
        let mut popped = Vec::new();
        while let Some((t, p)) = cal.pop() {
            popped.push((t, p));
        }
        let times: Vec<f64> = popped.iter().map(|(t, _)| *t).collect();
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(times, sorted, "pop order must be time order");
        assert_eq!(popped.iter().filter(|(_, p)| *p == 'o').count(), 1);
    }

    #[test]
    fn degenerate_geometry_falls_back() {
        let mut cal = CalendarQueue::with_geometry(f64::NAN, 0);
        cal.push(1.0, ());
        assert_eq!(cal.pop(), Some((1.0, ())));
    }

    #[test]
    fn non_finite_times_sort_last() {
        let mut cal = CalendarQueue::new();
        cal.push(f64::INFINITY, 'i');
        cal.push(3.0, 'a');
        assert_eq!(cal.pop(), Some((3.0, 'a')));
        assert_eq!(cal.pop(), Some((f64::INFINITY, 'i')));
    }
}
