//! Distribution samplers on top of `rand`'s uniform generator, plus the
//! counter-based streams the sharded engine relies on.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the
//! simulator carries its own normal (Box–Muller), lognormal, and
//! exponential samplers. All take `&mut impl Rng`, keeping every draw
//! attributable to the run's seed.

use rand::{Rng, RngCore};

/// SplitMix64's odd increment (the golden-ratio constant).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output finalizer: a strong 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-based random stream: output `i` is a pure function of
/// `(seed, stream, i)`, with no sequential state beyond the counter.
///
/// This is what makes the sharded engine's results independent of shard
/// count and worker schedule: each scheduling domain owns the stream
/// keyed by its lowest machine id, so the same domain draws the same
/// sequence whether it runs alone, under `engine::reference`, or
/// interleaved with seven sibling shards. The generator is SplitMix64
/// with the stream folded into the starting state — one multiply and
/// three xor-shift rounds per draw, no branches.
#[derive(Debug, Clone)]
pub struct CounterRng {
    key: u64,
    ctr: u64,
}

impl CounterRng {
    /// Builds the stream `stream` of the family keyed by `seed`.
    ///
    /// Distinct `(seed, stream)` pairs give statistically independent
    /// sequences; equal pairs give identical sequences.
    pub fn new(seed: u64, stream: u64) -> Self {
        // Decorrelate the two halves of the key so that nearby seeds and
        // nearby stream ids land in unrelated parts of the state space.
        let key = mix64(seed ^ GOLDEN_GAMMA).wrapping_add(mix64(stream.wrapping_mul(GOLDEN_GAMMA)));
        CounterRng { key, ctr: 0 }
    }

    /// Number of 64-bit words drawn so far (diagnostic).
    pub fn draws(&self) -> u64 {
        self.ctr
    }
}

impl RngCore for CounterRng {
    fn next_u64(&mut self) -> u64 {
        self.ctr = self.ctr.wrapping_add(1);
        mix64(self.key.wrapping_add(self.ctr.wrapping_mul(GOLDEN_GAMMA)))
    }
}

/// The ±1.5% measurement noise applied to resource gauges at telemetry
/// emission, keyed by `(machine, hour, lane)` rather than drawn from a
/// sequential stream — so the value is independent of emission order and
/// identical whether records flush machine-major at the end of a run
/// (the reference engine) or stream out per simulated day per shard.
pub fn gauge_noise_at(seed: u64, machine: u32, hour: u64, lane: u32) -> f64 {
    let stream = ((machine as u64) << 32) | (hour << 2) | lane as u64;
    let mut rng = CounterRng::new(seed ^ 0x5eed_7e1e, stream);
    normal(&mut rng, 1.0, 0.015).clamp(0.9, 1.1)
}

/// Standard normal draw via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open interval away from zero.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal draw with the given mean and standard deviation.
///
/// # Panics
/// Debug-asserts `sd >= 0`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd >= 0.0, "sd must be non-negative");
    mean + sd * standard_normal(rng)
}

/// Lognormal draw parameterized by the *mean of the resulting
/// distribution* and the shape `sigma` (the sd of the underlying normal).
/// This parameterization is what workload specs want: "tasks average 300
/// CPU-seconds with sigma 0.5".
///
/// # Panics
/// Debug-asserts `mean > 0` and `sigma >= 0`.
pub fn lognormal_mean<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    debug_assert!(mean > 0.0, "lognormal mean must be positive");
    debug_assert!(sigma >= 0.0, "sigma must be non-negative");
    // If X ~ LogNormal(mu, sigma), E[X] = exp(mu + sigma²/2); solve for mu.
    let mu = mean.ln() - sigma * sigma / 2.0;
    (mu + sigma * standard_normal(rng)).exp()
}

/// Exponential draw with the given rate (events per unit time).
///
/// # Panics
/// Debug-asserts `rate > 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample<F: FnMut(&mut StdRng) -> f64>(n: usize, mut f: F) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(123);
        (0..n).map(|_| f(&mut rng)).collect()
    }

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn standard_normal_moments() {
        let s = sample(200_000, standard_normal);
        let m = mean(&s);
        let var = s.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / s.len() as f64;
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let s = sample(100_000, |r| normal(r, 50.0, 5.0));
        assert!((mean(&s) - 50.0).abs() < 0.1);
        let sd = (s.iter().map(|x| (x - 50.0) * (x - 50.0)).sum::<f64>() / s.len() as f64).sqrt();
        assert!((sd - 5.0).abs() < 0.1);
    }

    #[test]
    fn lognormal_mean_parameterization_is_exact() {
        let s = sample(300_000, |r| lognormal_mean(r, 300.0, 0.5));
        // Mean must match the requested mean, not exp(mu).
        assert!((mean(&s) - 300.0).abs() < 3.0, "mean {}", mean(&s));
        assert!(s.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn lognormal_zero_sigma_is_deterministic() {
        let s = sample(100, |r| lognormal_mean(r, 42.0, 0.0));
        for v in s {
            assert!((v - 42.0).abs() < 1e-9);
        }
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let s = sample(200_000, |r| exponential(r, 0.25));
        assert!((mean(&s) - 4.0).abs() < 0.05, "mean {}", mean(&s));
        assert!(s.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = sample(10, standard_normal);
        let b = sample(10, standard_normal);
        assert_eq!(a, b);
    }

    #[test]
    fn counter_rng_is_deterministic_per_stream() {
        let mut a = CounterRng::new(7, 3);
        let mut b = CounterRng::new(7, 3);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_eq!(a.draws(), 32);
    }

    #[test]
    fn counter_rng_streams_are_distinct() {
        let mut a = CounterRng::new(7, 0);
        let mut b = CounterRng::new(7, 1);
        let mut c = CounterRng::new(8, 0);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_ne!(xs, ys);
        assert_ne!(xs, zs);
        assert_ne!(ys, zs);
    }

    #[test]
    fn counter_rng_uniform_moments() {
        let mut rng = CounterRng::new(42, 9);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen_range(0.0..1.0);
            sum += u;
            sum_sq += u * u;
        }
        let m = sum / n as f64;
        let var = sum_sq / n as f64 - m * m;
        assert!((m - 0.5).abs() < 0.005, "mean {m}");
        assert!((var - 1.0 / 12.0).abs() < 0.002, "var {var}");
    }

    #[test]
    fn counter_rng_normal_sampler_moments() {
        // The Box–Muller samplers must stay well-behaved on the counter
        // stream, not just on StdRng.
        let mut rng = CounterRng::new(5, 0);
        let s: Vec<f64> = (0..100_000).map(|_| standard_normal(&mut rng)).collect();
        let m = mean(&s);
        let var = s.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / s.len() as f64;
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gauge_noise_is_keyed_not_sequential() {
        let a = gauge_noise_at(11, 3, 7, 2);
        let b = gauge_noise_at(11, 3, 7, 2);
        assert_eq!(a, b, "same key, same noise");
        assert_ne!(gauge_noise_at(11, 3, 7, 1), a);
        assert_ne!(gauge_noise_at(11, 4, 7, 2), a);
        assert_ne!(gauge_noise_at(12, 3, 7, 2), a);
        assert!((0.9..=1.1).contains(&a));
    }
}
