//! Distribution samplers on top of `rand`'s uniform generator.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the
//! simulator carries its own normal (Box–Muller), lognormal, and
//! exponential samplers. All take `&mut impl Rng`, keeping every draw
//! attributable to the run's seed.

use rand::Rng;

/// Standard normal draw via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open interval away from zero.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal draw with the given mean and standard deviation.
///
/// # Panics
/// Debug-asserts `sd >= 0`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd >= 0.0, "sd must be non-negative");
    mean + sd * standard_normal(rng)
}

/// Lognormal draw parameterized by the *mean of the resulting
/// distribution* and the shape `sigma` (the sd of the underlying normal).
/// This parameterization is what workload specs want: "tasks average 300
/// CPU-seconds with sigma 0.5".
///
/// # Panics
/// Debug-asserts `mean > 0` and `sigma >= 0`.
pub fn lognormal_mean<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    debug_assert!(mean > 0.0, "lognormal mean must be positive");
    debug_assert!(sigma >= 0.0, "sigma must be non-negative");
    // If X ~ LogNormal(mu, sigma), E[X] = exp(mu + sigma²/2); solve for mu.
    let mu = mean.ln() - sigma * sigma / 2.0;
    (mu + sigma * standard_normal(rng)).exp()
}

/// Exponential draw with the given rate (events per unit time).
///
/// # Panics
/// Debug-asserts `rate > 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample<F: FnMut(&mut StdRng) -> f64>(n: usize, mut f: F) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(123);
        (0..n).map(|_| f(&mut rng)).collect()
    }

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn standard_normal_moments() {
        let s = sample(200_000, standard_normal);
        let m = mean(&s);
        let var = s.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / s.len() as f64;
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let s = sample(100_000, |r| normal(r, 50.0, 5.0));
        assert!((mean(&s) - 50.0).abs() < 0.1);
        let sd = (s.iter().map(|x| (x - 50.0) * (x - 50.0)).sum::<f64>() / s.len() as f64).sqrt();
        assert!((sd - 5.0).abs() < 0.1);
    }

    #[test]
    fn lognormal_mean_parameterization_is_exact() {
        let s = sample(300_000, |r| lognormal_mean(r, 300.0, 0.5));
        // Mean must match the requested mean, not exp(mu).
        assert!((mean(&s) - 300.0).abs() < 3.0, "mean {}", mean(&s));
        assert!(s.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn lognormal_zero_sigma_is_deterministic() {
        let s = sample(100, |r| lognormal_mean(r, 42.0, 0.0));
        for v in s {
            assert!((v - 42.0).abs() < 1e-9);
        }
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let s = sample(200_000, |r| exponential(r, 0.25));
        assert!((mean(&s) - 4.0).abs() < 0.05, "mean {}", mean(&s));
        assert!(s.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = sample(10, standard_normal);
        let b = sample(10, standard_normal);
        assert_eq!(a, b);
    }
}
