//! Hardware (SKU) and software-configuration (SC) catalog.
//!
//! The paper's clusters mix 6–9 hardware generations ("after a decade of
//! operation, Cosmos involves more than 20 hardware generations … Each
//! cluster consists of 6 to 9 SKUs", §2) and two software configurations
//! (SC1: local temp store on HDD, SC2: on SSD, §7.1). The default catalog
//! models six generations named after the paper's figures
//! (Gen 1.1 … Gen 4.1, Figures 2, 9, 10) with capabilities that encode the
//! qualitative facts KEA must rediscover from telemetry:
//!
//! * older SKUs are slower (`speed_factor` > 1) and have fewer slots;
//! * the manual-tuning baseline pushes old SKUs close to their physical
//!   slot count while new SKUs are conservatively capped (the right-hand
//!   side of Figure 2: "older-generation machines … are substantially more
//!   utilized");
//! * provisioned power carries ~12% headroom above physical peak draw, the
//!   "conservatively high power consumption limit" §4.2 calls out: light
//!   caps are free, deep caps bite only at high utilization.

use kea_telemetry::{ScId, SkuId};

/// A hardware generation (stock keeping unit).
#[derive(Debug, Clone, PartialEq)]
pub struct SkuSpec {
    /// Identifier used in telemetry group keys.
    pub id: SkuId,
    /// Display name, e.g. "Gen 1.1".
    pub name: String,
    /// Physical CPU cores.
    pub cores: u32,
    /// Installed RAM in GB.
    pub ram_gb: f64,
    /// Installed SSD capacity in GB.
    pub ssd_gb: f64,
    /// NIC line rate in Gbit/s.
    pub nic_gbps: f64,
    /// Task-duration multiplier relative to the reference generation
    /// (1.0); older machines are slower, so > 1.
    pub speed_factor: f64,
    /// Physical container slots (hard capacity).
    pub slots: u32,
    /// The manual-tuning baseline for `max_num_running_containers` — what
    /// years of expert tuning arrived at before KEA.
    pub default_max_containers: u32,
    /// Power draw at idle, watts.
    pub idle_power_w: f64,
    /// Power draw at full utilization, watts.
    pub peak_power_w: f64,
    /// Provisioned (budgeted) power per machine, watts. Deliberately
    /// conservative: ~12% above physical peak draw.
    pub provisioned_power_w: f64,
    /// Machines of this SKU in the default cluster spec.
    pub machine_count: u32,
    /// Year the generation entered the fleet (drives Figure 2 ordering).
    pub intro_year: u16,
}

impl SkuSpec {
    /// Effective CPU fraction consumed per running container. Containers
    /// are not perfectly CPU-bound; 0.88 of a slot's share is typical.
    pub fn cpu_per_container(&self) -> f64 {
        0.88 / self.slots as f64
    }

    /// RAM working set per container, GB.
    pub fn ram_per_container(&self) -> f64 {
        self.ram_gb * 0.75 / self.slots as f64
    }

    /// SSD working set per container, GB (before SC adjustments).
    pub fn ssd_per_container(&self) -> f64 {
        self.ssd_gb * 0.5 / self.slots as f64
    }

    /// Network bandwidth per container, Gbit/s. Big-data tasks stream
    /// their inputs; ~60% of the NIC is consumable by containers before
    /// storage/replication traffic takes the rest.
    pub fn network_per_container(&self) -> f64 {
        self.nic_gbps * 0.6 / self.slots as f64
    }
}

/// A software configuration: how logical drives map to physical media.
#[derive(Debug, Clone, PartialEq)]
pub struct ScSpec {
    /// Identifier used in telemetry group keys.
    pub id: ScId,
    /// Display name ("SC1" / "SC2").
    pub name: String,
    /// Duration multiplier applied to I/O-heavy tasks. SC1 keeps the local
    /// temp store on HDD and suffers write contention (> 1); SC2 moves it
    /// to SSD (< 1). §7.1.
    pub io_heavy_multiplier: f64,
    /// Baseline SSD occupancy in GB (SC2's temp store lives on SSD).
    pub ssd_base_gb: f64,
    /// Fraction of the per-container SSD working set actually placed on
    /// SSD (SC1 spills part to HDD).
    pub ssd_share: f64,
}

/// SC identifier constants matching the paper's naming.
pub const SC1: ScId = ScId(1);
/// See [`SC1`].
pub const SC2: ScId = ScId(2);

/// Builds the two software configurations of §7.1.
pub fn default_scs() -> Vec<ScSpec> {
    vec![
        ScSpec {
            id: SC1,
            name: "SC1".to_string(),
            io_heavy_multiplier: 1.15,
            ssd_base_gb: 20.0,
            ssd_share: 0.35,
        },
        ScSpec {
            id: SC2,
            name: "SC2".to_string(),
            io_heavy_multiplier: 0.96,
            ssd_base_gb: 120.0,
            ssd_share: 1.0,
        },
    ]
}

/// Looks up one of the two paper SCs by id, backed by a process-wide
/// cache (the hot path of the simulation engine resolves an SC at every
/// task start).
///
/// # Panics
/// The id must be [`SC1`] or [`SC2`].
pub fn default_scs_static(id: ScId) -> &'static ScSpec {
    use std::sync::OnceLock;
    static SCS: OnceLock<Vec<ScSpec>> = OnceLock::new();
    SCS.get_or_init(default_scs)
        .iter()
        .find(|s| s.id == id)
        // kea-lint: allow(panic-in-library) — documented `# Panics` contract; ScId is a two-variant enum
        .expect("ScId must be SC1 or SC2")
}

/// Builds the default six-generation catalog. `scale` divides machine
/// counts so tests can run miniature clusters (scale = 1 is the headline
/// ~1,500-machine cluster, a 1:30 scale model of the paper's 45k-machine
/// cluster).
pub fn default_skus(scale: u32) -> Vec<SkuSpec> {
    assert!(scale >= 1, "scale must be at least 1");
    let scaled = |n: u32| (n / scale).max(2);
    vec![
        SkuSpec {
            id: SkuId(0),
            name: "Gen 1.1".to_string(),
            cores: 16,
            ram_gb: 64.0,
            ssd_gb: 240.0,
            nic_gbps: 10.0,
            speed_factor: 1.60,
            slots: 12,
            default_max_containers: 12,
            idle_power_w: 100.0,
            peak_power_w: 300.0,
            provisioned_power_w: 336.0,
            machine_count: scaled(300),
            intro_year: 2012,
        },
        SkuSpec {
            id: SkuId(1),
            name: "Gen 2.1".to_string(),
            cores: 24,
            ram_gb: 96.0,
            ssd_gb: 480.0,
            nic_gbps: 10.0,
            speed_factor: 1.35,
            slots: 16,
            default_max_containers: 15,
            idle_power_w: 110.0,
            peak_power_w: 350.0,
            provisioned_power_w: 392.0,
            machine_count: scaled(250),
            intro_year: 2014,
        },
        SkuSpec {
            id: SkuId(2),
            name: "Gen 2.2".to_string(),
            cores: 24,
            ram_gb: 128.0,
            ssd_gb: 960.0,
            nic_gbps: 10.0,
            speed_factor: 1.25,
            slots: 18,
            default_max_containers: 16,
            idle_power_w: 110.0,
            peak_power_w: 360.0,
            provisioned_power_w: 403.0,
            machine_count: scaled(200),
            intro_year: 2015,
        },
        SkuSpec {
            id: SkuId(3),
            name: "Gen 3.1".to_string(),
            cores: 32,
            ram_gb: 128.0,
            ssd_gb: 960.0,
            nic_gbps: 25.0,
            speed_factor: 1.10,
            slots: 20,
            default_max_containers: 17,
            idle_power_w: 120.0,
            peak_power_w: 400.0,
            provisioned_power_w: 448.0,
            machine_count: scaled(350),
            intro_year: 2017,
        },
        SkuSpec {
            id: SkuId(4),
            name: "Gen 3.2".to_string(),
            cores: 40,
            ram_gb: 192.0,
            ssd_gb: 1920.0,
            nic_gbps: 25.0,
            speed_factor: 1.00,
            slots: 24,
            default_max_containers: 19,
            idle_power_w: 130.0,
            peak_power_w: 450.0,
            provisioned_power_w: 504.0,
            machine_count: scaled(250),
            intro_year: 2018,
        },
        SkuSpec {
            id: SkuId(5),
            name: "Gen 4.1".to_string(),
            cores: 64,
            ram_gb: 256.0,
            ssd_gb: 3840.0,
            nic_gbps: 40.0,
            speed_factor: 0.80,
            slots: 32,
            default_max_containers: 22,
            idle_power_w: 150.0,
            peak_power_w: 550.0,
            provisioned_power_w: 616.0,
            machine_count: scaled(150),
            intro_year: 2020,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalog_has_six_generations() {
        let skus = default_skus(1);
        assert_eq!(skus.len(), 6);
        // Unique ids and names.
        let mut ids: Vec<u16> = skus.iter().map(|s| s.id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn older_generations_are_slower_and_smaller() {
        let skus = default_skus(1);
        for pair in skus.windows(2) {
            assert!(pair[0].intro_year < pair[1].intro_year);
            assert!(pair[0].speed_factor > pair[1].speed_factor);
            assert!(pair[0].cores <= pair[1].cores);
        }
    }

    #[test]
    fn manual_baseline_pushes_old_skus_harder() {
        // The Figure 2 premise: tuned fraction (max/slots) decreases with
        // generation age.
        let skus = default_skus(1);
        let fractions: Vec<f64> = skus
            .iter()
            .map(|s| s.default_max_containers as f64 / s.slots as f64)
            .collect();
        for pair in fractions.windows(2) {
            assert!(
                pair[0] >= pair[1],
                "newer SKUs must be relatively less pushed: {fractions:?}"
            );
        }
        assert_eq!(fractions[0], 1.0); // oldest maxed out
        assert!(fractions[5] < 0.75); // newest conservative
    }

    #[test]
    fn provisioned_power_has_headroom() {
        for sku in default_skus(1) {
            let headroom = sku.provisioned_power_w / sku.peak_power_w;
            assert!(
                (1.05..1.25).contains(&headroom),
                "{}: headroom {headroom}",
                sku.name
            );
            assert!(sku.idle_power_w < sku.peak_power_w);
            assert!(sku.default_max_containers <= sku.slots);
        }
    }

    #[test]
    fn scaling_shrinks_counts_with_floor() {
        let full = default_skus(1);
        let tiny = default_skus(100);
        for (f, t) in full.iter().zip(&tiny) {
            assert!(t.machine_count >= 2);
            assert!(t.machine_count <= f.machine_count);
        }
    }

    #[test]
    fn per_container_footprints_positive() {
        for sku in default_skus(1) {
            assert!(sku.cpu_per_container() > 0.0 && sku.cpu_per_container() < 0.1);
            assert!(sku.ram_per_container() > 0.0);
            assert!(sku.ssd_per_container() > 0.0);
            assert!(sku.network_per_container() > 0.0);
            assert!(sku.nic_gbps >= 10.0);
        }
    }

    #[test]
    fn scs_match_section_7_1() {
        let scs = default_scs();
        assert_eq!(scs.len(), 2);
        let sc1 = &scs[0];
        let sc2 = &scs[1];
        assert_eq!(sc1.id, SC1);
        assert_eq!(sc2.id, SC2);
        // SC1 (temp on HDD) penalizes I/O-heavy tasks; SC2 helps them.
        assert!(sc1.io_heavy_multiplier > 1.0);
        assert!(sc2.io_heavy_multiplier < 1.0);
        // SC2 spends SSD on the temp store.
        assert!(sc2.ssd_base_gb > sc1.ssd_base_gb);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        default_skus(0);
    }
}
