//! Property-based tests for the simulator's pure model functions.

use kea_sim::catalog::{default_scs, default_skus};
use kea_sim::config::MachineConfig;
use kea_sim::machine::{
    cpu_utilization, power_draw, resource_usage, service_time, throttle_multiplier,
};
use kea_sim::workload::Seasonality;
use kea_sim::SC1;
use proptest::prelude::*;

proptest! {
    #[test]
    fn utilization_is_monotone_and_bounded(sku_idx in 0usize..6, c1 in 0u32..200, c2 in 0u32..200) {
        let sku = &default_skus(1)[sku_idx];
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let u_lo = cpu_utilization(sku, lo);
        let u_hi = cpu_utilization(sku, hi);
        prop_assert!(u_lo <= u_hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&u_lo) && (0.0..=1.0).contains(&u_hi));
    }

    #[test]
    fn power_respects_cap_and_bounds(
        sku_idx in 0usize..6,
        util in 0.0..1.0f64,
        cap in 0.0..0.5f64,
        feature in any::<bool>(),
    ) {
        let sku = &default_skus(1)[sku_idx];
        let cfg = MachineConfig {
            max_running_containers: 10,
            power_cap_fraction: cap,
            feature_on: feature,
            sc: SC1,
            max_queue_length: u32::MAX,
        };
        let p = power_draw(sku, &cfg, util);
        prop_assert!(p <= sku.peak_power_w + 1e-9, "above physical peak");
        prop_assert!(p >= sku.idle_power_w * 0.9, "below plausible idle");
        if cap > 0.0 {
            prop_assert!(p <= sku.provisioned_power_w * (1.0 - cap) + 1e-9, "cap violated");
        }
        // Throttle only ever slows down.
        prop_assert!(throttle_multiplier(sku, &cfg, util) >= 1.0);
    }

    #[test]
    fn service_time_is_monotone_in_work_and_interference(
        sku_idx in 0usize..6,
        base in 1.0..2000.0f64,
        util in 0.0..1.0f64,
        io_heavy in any::<bool>(),
    ) {
        let sku = &default_skus(1)[sku_idx];
        let scs = default_scs();
        let cfg = MachineConfig {
            max_running_containers: 10,
            power_cap_fraction: 0.0,
            feature_on: false,
            sc: SC1,
            max_queue_length: u32::MAX,
        };
        let st = service_time(sku, &scs[0], &cfg, base, io_heavy, util);
        prop_assert!(st.duration_s >= st.cpu_time_s * 0.9, "wall time below CPU time");
        prop_assert!(st.duration_s.is_finite() && st.duration_s > 0.0);
        // More work → longer; more interference → longer.
        let st_more = service_time(sku, &scs[0], &cfg, base * 2.0, io_heavy, util);
        prop_assert!(st_more.duration_s > st.duration_s);
        let st_busy = service_time(sku, &scs[0], &cfg, base, io_heavy, (util + 0.3).min(1.0));
        prop_assert!(st_busy.duration_s >= st.duration_s - 1e-9);
    }

    #[test]
    fn resources_stay_within_installed_capacity(sku_idx in 0usize..6, c in 0u32..500, sc_idx in 0usize..2) {
        let sku = &default_skus(1)[sku_idx];
        let scs = default_scs();
        let r = resource_usage(sku, &scs[sc_idx], c);
        prop_assert!(r.ram_used_gb <= sku.ram_gb + 1e-9);
        prop_assert!(r.ssd_used_gb <= sku.ssd_gb + 1e-9);
        prop_assert!(r.cores_used <= sku.cores as f64 + 1e-9);
        prop_assert!(r.network_used_gbps <= sku.nic_gbps + 1e-9);
        prop_assert!(
            r.ram_used_gb >= 0.0
                && r.ssd_used_gb >= 0.0
                && r.cores_used >= 0.0
                && r.network_used_gbps >= 0.0
        );
    }

    #[test]
    fn seasonality_is_positive_and_bounded(hour in 0.0..2000.0f64) {
        let s = Seasonality::default();
        let f = s.factor(hour);
        prop_assert!(f > 0.0);
        prop_assert!(f <= s.max_factor() + 1e-12);
    }
}
