//! Engine integration tests: flight interactions, queue caps, and
//! conservation laws the event loop must uphold.

use kea_sim::{
    run, ClusterSpec, ConfigPatch, ConfigPlan, Flight, SimConfig, WorkloadSpec, SC1,
};
use kea_telemetry::MachineId;
use std::collections::BTreeSet;

fn saturated_config(hours: u64, seed: u64) -> SimConfig {
    let cluster = ClusterSpec::tiny();
    SimConfig {
        cluster: cluster.clone(),
        workload: WorkloadSpec::default_for(&cluster, 1.1),
        plan: ConfigPlan::baseline(&cluster.skus, SC1),
        duration_hours: hours,
        seed,
        task_log_every: 0,
        adhoc_job_log_every: 0,
    }
}

#[test]
fn lowering_max_mid_flight_sheds_load() {
    // A flight that halves max_running_containers on a machine subset
    // must visibly reduce their running containers during the window —
    // including draining below a stale free-set entry.
    let mut cfg = saturated_config(24, 41);
    let targets: BTreeSet<MachineId> = cfg
        .cluster
        .machines_of_sku(kea_telemetry::SkuId(3))
        .take(4)
        .map(|m| m.id)
        .collect();
    cfg.plan.add_flight(Flight {
        label: "halve".into(),
        machines: targets.clone(),
        start_hour: 12,
        end_hour: 24,
        patch: ConfigPatch {
            max_running_containers: Some(8), // baseline is 17
            ..Default::default()
        },
    });
    let out = run(&cfg);
    let mean_running = |lo: u64, hi: u64| {
        let vals: Vec<f64> = out
            .telemetry
            .by_machines_and_hours(&targets, lo, hi)
            .map(|r| r.metrics.avg_running_containers)
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let before = mean_running(4, 12);
    let during = mean_running(14, 24);
    assert!(
        during < before * 0.75,
        "flight must shed load: {before:.1} → {during:.1}"
    );
    assert!(during <= 8.5, "capped level respected: {during:.1}");
}

#[test]
fn raising_max_mid_flight_absorbs_load() {
    let mut cfg = saturated_config(24, 43);
    let targets: BTreeSet<MachineId> = cfg
        .cluster
        .machines_of_sku(kea_telemetry::SkuId(5))
        .map(|m| m.id)
        .collect();
    cfg.plan.add_flight(Flight {
        label: "raise".into(),
        machines: targets.clone(),
        start_hour: 12,
        end_hour: 24,
        patch: ConfigPatch {
            max_running_containers: Some(30), // baseline is 22
            ..Default::default()
        },
    });
    let out = run(&cfg);
    let mean_running = |lo: u64, hi: u64| {
        let vals: Vec<f64> = out
            .telemetry
            .by_machines_and_hours(&targets, lo, hi)
            .map(|r| r.metrics.avg_running_containers)
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    // Under saturation the raised machines must pick up extra containers.
    let before = mean_running(4, 12);
    let during = mean_running(14, 24);
    assert!(
        during > before + 2.0,
        "raised caps absorb queued work: {before:.1} → {during:.1}"
    );
}

#[test]
fn queue_caps_do_not_lose_work() {
    // With aggressive queue caps everywhere, total completed work over a
    // fixed window must stay close to the uncapped run: caps redirect
    // queued tasks, they never drop them.
    let base = run(&saturated_config(24, 47));
    let mut capped_cfg = saturated_config(24, 47);
    for sku in capped_cfg.cluster.skus.clone() {
        capped_cfg
            .plan
            .base
            .get_mut(&sku.id)
            .expect("sku in plan")
            .max_queue_length = 2;
    }
    let capped = run(&capped_cfg);
    let total = |o: &kea_sim::SimOutput| o.counters.total as f64;
    let ratio = total(&capped) / total(&base);
    assert!(
        (0.95..=1.05).contains(&ratio),
        "work conservation under queue caps: ratio {ratio}"
    );
    // And the caps visibly shorten the worst queues.
    let max_queue = |o: &kea_sim::SimOutput| {
        o.telemetry
            .iter()
            .map(|r| r.metrics.queued_containers)
            .fold(0.0f64, f64::max)
    };
    assert!(max_queue(&capped) < max_queue(&base));
}

#[test]
fn sc_flight_relabels_telemetry_groups() {
    let mut cfg = saturated_config(12, 53);
    let targets: BTreeSet<MachineId> = cfg
        .cluster
        .machines_of_sku(kea_telemetry::SkuId(0))
        .take(3)
        .map(|m| m.id)
        .collect();
    cfg.plan.add_flight(Flight {
        label: "sc2".into(),
        machines: targets.clone(),
        start_hour: 6,
        end_hour: 12,
        patch: ConfigPatch {
            sc: Some(kea_sim::SC2),
            ..Default::default()
        },
    });
    let out = run(&cfg);
    for rec in out.telemetry.iter().filter(|r| targets.contains(&r.machine)) {
        let expected = if rec.hour >= 6 { kea_sim::SC2 } else { SC1 };
        assert_eq!(
            rec.group.sc, expected,
            "hour {} must be labelled {:?}",
            rec.hour, expected
        );
    }
}

#[test]
fn degenerate_calibration_cannot_smuggle_nonfinite_telemetry() {
    // A poisoned workload calibration (infinite mean input size) makes
    // every affected task report `inf` data read, which poisons the
    // machine-hour records of the hours those tasks complete in. The
    // engine must stream telemetry through the same non-finite validation
    // CSV ingest applies — dropping and *counting* poisoned records in
    // every build profile — so downstream aggregates never see a NaN.
    // Before the engine flushed through the validated path, these records
    // landed in the store untouched in release builds (debug-only assert).
    let mut cfg = SimConfig::baseline(kea_sim::ClusterSpec::tiny(), 6, 61);
    for tpl in &mut cfg.workload.templates {
        if tpl.name == "ingest-hourly" {
            if let Some(s) = tpl.stages.first_mut() {
                s.mean_input_gb = f64::INFINITY;
            }
        }
    }
    let out = run(&cfg);
    assert!(
        out.nonfinite_dropped > 0,
        "poisoned records must be counted, not silently absent"
    );
    let machines = cfg.cluster.n_machines() as u64;
    let expected_grid = machines * cfg.duration_hours;
    assert_eq!(
        out.telemetry.len() as u64 + out.nonfinite_dropped,
        expected_grid,
        "every machine-hour is either stored or counted as dropped"
    );
    for rec in out.telemetry.iter() {
        assert!(rec.metrics.is_finite(), "non-finite record smuggled into the store");
    }
    // The reference engine flushes through the same validated path and
    // must account identically.
    let oracle = kea_sim::engine::reference::run(&cfg);
    assert_eq!(oracle.nonfinite_dropped, out.nonfinite_dropped);
    assert_eq!(oracle.telemetry.len(), out.telemetry.len());
}
