//! Agreement suite: the fleet-scale engine vs. the reference engine.
//!
//! Two contracts, enforced exactly (no tolerances):
//!
//! 1. **Single-shard bit-equality.** `kea_sim::run` (one global scheduling
//!    domain) must reproduce `engine::reference::run` bit for bit — every
//!    telemetry metric, job record, sampled task, and counter. The fleet
//!    engine's calendar queue, model tables, and windowed emission are
//!    pure reorganizations; any drift is a bug.
//! 2. **Shard-count invariance.** Federated execution (`shards != 1`)
//!    must give identical output for every worker count — 2, 4, 8, or
//!    one-per-domain — including on pathologically skewed topologies.
//!    The federation itself is a *different scheduling model* than the
//!    global domain (per-sub-cluster placement scope), so shards=1 and
//!    shards=2 legitimately differ; determinism within the federated
//!    family is what's guaranteed.

use kea_sim::cluster::SubClusterId;
use kea_sim::engine::reference;
use kea_sim::{
    run, run_with_exec, ClusterSpec, ConfigPatch, ExecConfig, Flight, SimConfig, SimOutput, SC2,
};
use kea_telemetry::MachineId;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Telemetry as a canonically ordered record list. The fleet engine
/// streams records window-by-window while the reference emits them
/// machine-by-machine, so store iteration order differs; the record
/// *multisets* must not.
fn canonical_telemetry(out: &SimOutput) -> Vec<kea_telemetry::MachineHourRecord> {
    let mut v: Vec<_> = out.telemetry.iter().cloned().collect();
    v.sort_by_key(|r| (r.machine.0, r.hour));
    v
}

/// Asserts full bitwise equality of two outputs (telemetry order
/// canonicalized, everything else compared directly).
fn assert_identical(a: &SimOutput, b: &SimOutput) {
    let ta = canonical_telemetry(a);
    let tb = canonical_telemetry(b);
    assert_eq!(ta.len(), tb.len(), "telemetry record counts differ");
    for (ra, rb) in ta.iter().zip(&tb) {
        assert_eq!(ra.machine, rb.machine);
        assert_eq!(ra.hour, rb.hour);
        assert_eq!(ra.group, rb.group);
        assert_eq!(
            ra.metrics, rb.metrics,
            "metrics differ at machine {:?} hour {}",
            ra.machine, ra.hour
        );
    }
    assert_eq!(a.jobs, b.jobs, "job logs differ");
    assert_eq!(a.tasks, b.tasks, "task logs differ");
    assert_eq!(a.counters, b.counters, "counters differ");
    assert_eq!(a.tasks_in_flight_at_end, b.tasks_in_flight_at_end);
    assert_eq!(a.jobs_in_flight_at_end, b.jobs_in_flight_at_end);
    assert_eq!(a.nonfinite_dropped, b.nonfinite_dropped);
}

#[test]
fn single_shard_matches_reference_bit_for_bit() {
    for (hours, seed) in [(6u64, 42u64), (24, 7), (13, 1001)] {
        let cfg = SimConfig::baseline(ClusterSpec::tiny(), hours, seed);
        let fleet = run(&cfg);
        let oracle = reference::run(&cfg);
        assert_identical(&fleet, &oracle);
    }
}

#[test]
fn single_shard_matches_reference_under_flights() {
    // Flights exercise the per-hour configuration tables (the part of the
    // model-table precomputation most likely to drift from the on-demand
    // `ConfigPlan::effective` path).
    let mut cfg = SimConfig::baseline(ClusterSpec::tiny(), 24, 91);
    let targets: BTreeSet<MachineId> = cfg
        .cluster
        .machines
        .iter()
        .filter(|m| m.id.0 % 3 == 0)
        .map(|m| m.id)
        .collect();
    cfg.plan.add_flight(Flight {
        label: "agreement-flight".into(),
        machines: targets,
        start_hour: 6,
        end_hour: 18,
        patch: ConfigPatch {
            max_running_containers: Some(6),
            power_cap_fraction: Some(0.25),
            feature_on: Some(true),
            sc: Some(SC2),
            max_queue_length: Some(4),
        },
    });
    let fleet = run(&cfg);
    let oracle = reference::run(&cfg);
    assert_identical(&fleet, &oracle);
}

#[test]
fn single_shard_matches_reference_with_every_emit_window() {
    // The emission cadence is an execution knob, not a semantic one.
    let cfg = SimConfig::baseline(ClusterSpec::tiny(), 9, 3);
    let oracle = reference::run(&cfg);
    for window in [1u64, 2, 5, 24, 1_000] {
        let fleet = run_with_exec(
            &cfg,
            ExecConfig {
                shards: 1,
                emit_window_hours: window,
            },
        );
        assert_identical(&fleet, &oracle);
    }
}

#[test]
fn federated_output_is_shard_count_invariant() {
    let cfg = SimConfig::baseline(ClusterSpec::small(), 12, 17);
    let outs: Vec<SimOutput> = [2usize, 4, 8, 0]
        .iter()
        .map(|&shards| {
            run_with_exec(
                &cfg,
                ExecConfig {
                    shards,
                    emit_window_hours: 24,
                },
            )
        })
        .collect();
    for other in &outs[1..] {
        assert_identical(&outs[0], other);
    }
    // Sanity: the federation covered the whole fleet.
    assert_eq!(
        outs[0].telemetry.len(),
        cfg.cluster.n_machines() * cfg.duration_hours as usize
    );
    assert!(outs[0].counters.total > 0);
}

#[test]
fn federated_execution_is_deterministic_across_runs() {
    let cfg = SimConfig::baseline(ClusterSpec::tiny(), 8, 23);
    let exec = ExecConfig {
        shards: 3,
        emit_window_hours: 6,
    };
    assert_identical(&run_with_exec(&cfg, exec), &run_with_exec(&cfg, exec));
}

/// A deliberately pathological topology: 90% of the fleet in one
/// sub-cluster, the remainder dealt across three slivers. Worker load is
/// maximally unbalanced, so any schedule-dependence (a worker finishing
/// early and racing for the next domain) would surface here.
fn skewed_cluster() -> ClusterSpec {
    let mut spec = ClusterSpec::build(kea_sim::default_skus(50), 4);
    let n = spec.machines.len();
    let cutoff = n * 9 / 10;
    for (i, m) in spec.machines.iter_mut().enumerate() {
        m.subcluster = if i < cutoff {
            SubClusterId(0)
        } else {
            SubClusterId(1 + ((i - cutoff) % 3) as u32)
        };
    }
    spec
}

#[test]
fn federated_invariance_survives_pathological_skew() {
    let cfg = SimConfig::baseline(skewed_cluster(), 10, 29);
    let outs: Vec<SimOutput> = [2usize, 4, 8, 0]
        .iter()
        .map(|&shards| {
            run_with_exec(
                &cfg,
                ExecConfig {
                    shards,
                    emit_window_hours: 24,
                },
            )
        })
        .collect();
    for other in &outs[1..] {
        assert_identical(&outs[0], other);
    }
    assert_eq!(
        outs[0].telemetry.len(),
        cfg.cluster.n_machines() * cfg.duration_hours as usize
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized single-shard agreement: any (seed, duration) must agree
    /// with the oracle exactly.
    #[test]
    fn prop_single_shard_agreement(seed in 0u64..1_000_000, hours in 2u64..16) {
        let cfg = SimConfig::baseline(ClusterSpec::tiny(), hours, seed);
        let fleet = run(&cfg);
        let oracle = reference::run(&cfg);
        let ta = canonical_telemetry(&fleet);
        let tb = canonical_telemetry(&oracle);
        prop_assert_eq!(ta, tb);
        prop_assert_eq!(fleet.jobs, oracle.jobs);
        prop_assert_eq!(fleet.tasks, oracle.tasks);
        prop_assert_eq!(fleet.counters, oracle.counters);
    }

    /// Randomized shard-count invariance on the fixed seed family.
    #[test]
    fn prop_shard_count_invariance(seed in 0u64..1_000_000, hours in 2u64..10) {
        let cfg = SimConfig::baseline(ClusterSpec::tiny(), hours, seed);
        let exec = |shards| ExecConfig { shards, emit_window_hours: 24 };
        let two = run_with_exec(&cfg, exec(2));
        let four = run_with_exec(&cfg, exec(4));
        let all = run_with_exec(&cfg, exec(0));
        prop_assert_eq!(canonical_telemetry(&two), canonical_telemetry(&four));
        prop_assert_eq!(canonical_telemetry(&two), canonical_telemetry(&all));
        prop_assert_eq!(&two.counters, &four.counters);
        prop_assert_eq!(&two.counters, &all.counters);
        prop_assert_eq!(&two.jobs, &four.jobs);
    }
}
