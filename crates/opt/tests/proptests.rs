//! Property-based tests for the optimizers: the simplex must always
//! return *feasible* and *optimal-or-better-than-sampled* solutions, and
//! the bounded-variable solver must agree with `simplex::reference`
//! (status and objective) on randomized LPs of every flavour.

use kea_opt::{simplex, GridSearch, LpProblem, OptError, Relation};
use proptest::prelude::*;

/// Splitmix-style generator over an exactly-representable grid
/// (multiples of 0.25) so both solvers see bit-identical inputs and
/// rounding differences stay far below the agreement tolerance.
fn grid_rng(seed: u64) -> impl FnMut(f64, f64) -> f64 {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    move |lo: f64, hi: f64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 33) as f64 / u32::MAX as f64;
        let steps = ((hi - lo) / 0.25).round();
        lo + 0.25 * (u * steps).round()
    }
}

/// Builds a random LP mixing Le/Ge/Eq rows, negative rhs, and random
/// finite/infinite bounds. Feasible, infeasible, and unbounded instances
/// all occur (the 500-seed sweep covers all three statuses).
fn random_mixed_lp(n: usize, seed: u64) -> LpProblem {
    let mut next = grid_rng(seed);
    let c: Vec<f64> = (0..n).map(|_| next(-3.0, 3.0)).collect();
    let mut lp = LpProblem::maximize(c);
    let n_cons = 1 + (seed % 3) as usize;
    for k in 0..n_cons {
        let a: Vec<f64> = (0..n).map(|_| next(-3.0, 3.0)).collect();
        let rel = match (seed / 3 + k as u64) % 3 {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        let b = next(-10.0, 10.0);
        lp = lp.constraint(a, rel, b).unwrap();
    }
    for i in 0..n {
        let lo = next(-5.0, 0.0);
        let hi = if next(0.0, 1.0) < 0.75 {
            Some(lo + next(0.0, 8.0))
        } else {
            None
        };
        lp = lp.bounds(i, lo, hi).unwrap();
    }
    lp
}

proptest! {
    #[test]
    fn simplex_solutions_are_feasible(
        n in 2usize..6,
        seed in 0u64..500,
    ) {
        // Random LP: maximize c·x, constraints a·x ≤ b with a ≥ 0 and
        // b > 0 (x = 0 always feasible), plus box bounds.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / u32::MAX as f64
        };
        let c: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
        let n_cons = 2 + (seed % 3) as usize;
        let mut lp = LpProblem::maximize(c.clone());
        let mut constraints = Vec::new();
        for _ in 0..n_cons {
            let a: Vec<f64> = (0..n).map(|_| next() * 5.0).collect();
            let b = 1.0 + next() * 20.0;
            constraints.push((a.clone(), b));
            lp = lp.constraint(a, Relation::Le, b).unwrap();
        }
        let mut uppers = Vec::new();
        for i in 0..n {
            let hi = 0.5 + next() * 10.0;
            uppers.push(hi);
            lp = lp.bounds(i, 0.0, Some(hi)).unwrap();
        }
        let sol = lp.solve().unwrap();
        // Feasibility.
        for (i, &x) in sol.x.iter().enumerate() {
            prop_assert!(x >= -1e-7 && x <= uppers[i] + 1e-7, "bounds violated");
        }
        for (a, b) in &constraints {
            let lhs: f64 = a.iter().zip(&sol.x).map(|(ai, xi)| ai * xi).sum();
            prop_assert!(lhs <= b + 1e-6, "constraint violated: {} > {}", lhs, b);
        }
        // Optimality vs sampled feasible points: scale random box points
        // into the feasible region and compare objectives.
        for _ in 0..20 {
            let mut candidate: Vec<f64> = (0..n).map(|i| next() * uppers[i]).collect();
            // Shrink until feasible.
            let mut worst = 1.0f64;
            for (a, b) in &constraints {
                let lhs: f64 = a.iter().zip(&candidate).map(|(ai, xi)| ai * xi).sum();
                if lhs > *b {
                    worst = worst.max(lhs / b);
                }
            }
            for x in &mut candidate {
                *x /= worst;
            }
            let cand_obj: f64 = c.iter().zip(&candidate).map(|(ci, xi)| ci * xi).sum();
            prop_assert!(
                sol.objective >= cand_obj - 1e-6,
                "sampled point beats 'optimal': {} > {}", cand_obj, sol.objective
            );
        }
    }

    #[test]
    fn bounded_solver_agrees_with_reference(
        n in 1usize..6,
        seed in 0u64..500,
    ) {
        let lp = random_mixed_lp(n, seed);
        let bounded = lp.solve();
        let refsol = simplex::reference::solve(&lp);
        match (&bounded, &refsol) {
            (Ok(b), Ok(r)) => {
                let tol = 1e-9 * (1.0 + b.objective.abs().max(r.objective.abs()));
                prop_assert!(
                    (b.objective - r.objective).abs() <= tol,
                    "objectives disagree: bounded {} vs reference {} (n={}, seed={})",
                    b.objective, r.objective, n, seed
                );
                // The bounded solver's basis must reproduce the same
                // optimum when handed back as a warm start.
                let (warm, basis) = lp.solve_warm(None).unwrap();
                let (rewarm, _) = lp.solve_warm(Some(&basis)).unwrap();
                prop_assert!((warm.objective - rewarm.objective).abs() <= tol);
            }
            (Err(OptError::Infeasible), Err(OptError::Infeasible))
            | (Err(OptError::Unbounded), Err(OptError::Unbounded)) => {}
            _ => prop_assert!(
                false,
                "status disagrees: bounded {:?} vs reference {:?} (n={}, seed={})",
                bounded, refsol, n, seed
            ),
        }
    }

    #[test]
    fn grid_minimum_is_global_over_the_grid(
        a in -3.0..3.0f64,
        b in -3.0..3.0f64,
    ) {
        let g = GridSearch::new()
            .linspace_axis(-5.0, 5.0, 21).unwrap()
            .linspace_axis(-5.0, 5.0, 21).unwrap();
        let f = |c: &[f64]| (c[0] - a).powi(2) + (c[1] - b).powi(2) + (c[0] * c[1]).sin();
        let best = g.minimize(f).unwrap();
        for pt in g.evaluate_all(f).unwrap() {
            prop_assert!(best.value <= pt.value + 1e-12);
        }
    }
}
