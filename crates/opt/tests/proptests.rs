//! Property-based tests for the optimizers: the simplex must always
//! return *feasible* and *optimal-or-better-than-sampled* solutions.

use kea_opt::{GridSearch, LpProblem, Relation};
use proptest::prelude::*;

proptest! {
    #[test]
    fn simplex_solutions_are_feasible(
        n in 2usize..6,
        seed in 0u64..500,
    ) {
        // Random LP: maximize c·x, constraints a·x ≤ b with a ≥ 0 and
        // b > 0 (x = 0 always feasible), plus box bounds.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / u32::MAX as f64
        };
        let c: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
        let n_cons = 2 + (seed % 3) as usize;
        let mut lp = LpProblem::maximize(c.clone());
        let mut constraints = Vec::new();
        for _ in 0..n_cons {
            let a: Vec<f64> = (0..n).map(|_| next() * 5.0).collect();
            let b = 1.0 + next() * 20.0;
            constraints.push((a.clone(), b));
            lp = lp.constraint(a, Relation::Le, b).unwrap();
        }
        let mut uppers = Vec::new();
        for i in 0..n {
            let hi = 0.5 + next() * 10.0;
            uppers.push(hi);
            lp = lp.bounds(i, 0.0, Some(hi)).unwrap();
        }
        let sol = lp.solve().unwrap();
        // Feasibility.
        for (i, &x) in sol.x.iter().enumerate() {
            prop_assert!(x >= -1e-7 && x <= uppers[i] + 1e-7, "bounds violated");
        }
        for (a, b) in &constraints {
            let lhs: f64 = a.iter().zip(&sol.x).map(|(ai, xi)| ai * xi).sum();
            prop_assert!(lhs <= b + 1e-6, "constraint violated: {} > {}", lhs, b);
        }
        // Optimality vs sampled feasible points: scale random box points
        // into the feasible region and compare objectives.
        for _ in 0..20 {
            let mut candidate: Vec<f64> = (0..n).map(|i| next() * uppers[i]).collect();
            // Shrink until feasible.
            let mut worst = 1.0f64;
            for (a, b) in &constraints {
                let lhs: f64 = a.iter().zip(&candidate).map(|(ai, xi)| ai * xi).sum();
                if lhs > *b {
                    worst = worst.max(lhs / b);
                }
            }
            for x in &mut candidate {
                *x /= worst;
            }
            let cand_obj: f64 = c.iter().zip(&candidate).map(|(ci, xi)| ci * xi).sum();
            prop_assert!(
                sol.objective >= cand_obj - 1e-6,
                "sampled point beats 'optimal': {} > {}", cand_obj, sol.objective
            );
        }
    }

    #[test]
    fn grid_minimum_is_global_over_the_grid(
        a in -3.0..3.0f64,
        b in -3.0..3.0f64,
    ) {
        let g = GridSearch::new()
            .linspace_axis(-5.0, 5.0, 21).unwrap()
            .linspace_axis(-5.0, 5.0, 21).unwrap();
        let f = |c: &[f64]| (c[0] - a).powi(2) + (c[1] - b).powi(2) + (c[0] * c[1]).sin();
        let best = g.minimize(f).unwrap();
        for pt in g.evaluate_all(f).unwrap() {
            prop_assert!(best.value <= pt.value + 1e-12);
        }
    }
}
