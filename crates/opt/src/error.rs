//! Error type for optimization routines.

use std::fmt;

/// Errors raised by the optimizers.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The LP has no feasible point (phase-1 artificials stayed positive).
    Infeasible,
    /// The LP objective is unbounded in the optimization direction.
    Unbounded,
    /// A problem was constructed with inconsistent dimensions.
    DimensionMismatch {
        /// Expected number of variables.
        expected: usize,
        /// Number supplied.
        actual: usize,
    },
    /// A parameter was out of its domain (message names it).
    InvalidParameter(&'static str),
    /// Input contained NaN or infinity.
    NonFiniteInput,
    /// The search space was empty (no candidates / empty grid axis).
    EmptySearchSpace,
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Infeasible => write!(f, "linear program is infeasible"),
            OptError::Unbounded => write!(f, "linear program is unbounded"),
            OptError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            OptError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            OptError::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
            OptError::EmptySearchSpace => write!(f, "search space is empty"),
        }
    }
}

impl std::error::Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(OptError::Infeasible.to_string().contains("infeasible"));
        assert!(OptError::Unbounded.to_string().contains("unbounded"));
        assert!(OptError::DimensionMismatch {
            expected: 3,
            actual: 2
        }
        .to_string()
        .contains("expected 3"));
    }
}
